//! Hand-compiled plans for XMark Q1–Q20.
//!
//! Pathfinder compiles each XMark query into a relational plan over the
//! pre/size/level table; these functions are those plans written
//! directly against the engine API — staircase-join axis steps
//! (`mbxq-axes`), XPath paths where the query is a pure path, and
//! hash/sort joins for the value-join queries. Both storage schemas run
//! the *same* function (everything is generic over [`TreeView`]), which
//! is exactly the `ro` vs `up` comparison of Figure 9.
//!
//! Every query returns a [`QueryResult`] with a row count and an
//! order-sensitive FNV checksum of its output values, so the benchmark
//! harness can assert that both schemas computed identical answers.

use mbxq_axes::{children, step, step_lifted, Axis, ContextSeq, NodeTest};
use mbxq_storage::TreeView;
use mbxq_xml::QName;
use mbxq_xpath::{EvalOptions, XPath};
use std::collections::HashMap;

/// Number of XMark queries.
pub const QUERY_COUNT: usize = 20;

/// A query's observable outcome (for cross-schema verification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryResult {
    /// Result cardinality.
    pub rows: usize,
    /// Order-sensitive checksum of the serialized result values.
    pub checksum: u64,
}

/// Errors from query execution.
#[derive(Debug)]
pub enum QueryError {
    /// Embedded XPath failed.
    Path(mbxq_xpath::XPathError),
    /// Query number out of range.
    UnknownQuery(usize),
}

impl core::fmt::Display for QueryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueryError::Path(e) => write!(f, "{e}"),
            QueryError::UnknownQuery(q) => write!(f, "unknown XMark query Q{q}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<mbxq_xpath::XPathError> for QueryError {
    fn from(e: mbxq_xpath::XPathError) -> Self {
        QueryError::Path(e)
    }
}

/// Runs XMark query `q` (1-based) against `view`.
pub fn run_query<V: TreeView>(view: &V, q: usize) -> Result<QueryResult, QueryError> {
    run_query_opts(view, q, &EvalOptions::default())
}

/// [`run_query`] with evaluation options threaded through every XPath
/// selection the plan issues — how the workload harness runs the Q1–Q20
/// corpus against a store's morsel-execution pool or with forced
/// strategy arms.
pub fn run_query_opts<V: TreeView>(
    view: &V,
    q: usize,
    opts: &EvalOptions<'_>,
) -> Result<QueryResult, QueryError> {
    match q {
        1 => q1(view, opts),
        2 => q2(view, opts),
        3 => q3(view, opts),
        4 => q4(view, opts),
        5 => q5(view, opts),
        6 => q6(view, opts),
        7 => q7(view, opts),
        8 => q8(view, opts),
        9 => q9(view, opts),
        10 => q10(view, opts),
        11 => q11(view, opts),
        12 => q12(view, opts),
        13 => q13(view, opts),
        14 => q14(view, opts),
        15 => q15(view, opts),
        16 => q16(view, opts),
        17 => q17(view, opts),
        18 => q18(view, opts),
        19 => q19(view, opts),
        20 => q20(view, opts),
        other => Err(QueryError::UnknownQuery(other)),
    }
}

// ---------------------------------------------------------------------
// Checksum and small helpers
// ---------------------------------------------------------------------

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn feed(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator to keep the checksum order/field sensitive.
        self.0 ^= 0x1f;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn sel<V: TreeView>(view: &V, opts: &EvalOptions<'_>, path: &str) -> Result<Vec<u64>, QueryError> {
    Ok(XPath::parse(path)?.select_from_root_opts(view, opts)?)
}

fn child_named<V: TreeView>(view: &V, pre: u64, name: &str) -> Option<u64> {
    let want = QName::local(name);
    children(view, pre).find(|&c| {
        view.name_id(c)
            .and_then(|q| view.pool().qname(q))
            .is_some_and(|q| *q == want)
    })
}

fn children_named<V: TreeView>(view: &V, pre: u64, name: &str) -> Vec<u64> {
    let want = QName::local(name);
    children(view, pre)
        .filter(|&c| {
            view.name_id(c)
                .and_then(|q| view.pool().qname(q))
                .is_some_and(|q| *q == want)
        })
        .collect()
}

fn attr<V: TreeView>(view: &V, pre: u64, name: &str) -> Option<String> {
    view.attribute_value(pre, &QName::local(name))
}

fn num<V: TreeView>(view: &V, pre: u64) -> f64 {
    view.string_value(pre).trim().parse().unwrap_or(f64::NAN)
}

fn result_from(rows: usize, fnv: Fnv) -> QueryResult {
    QueryResult {
        rows,
        checksum: fnv.0,
    }
}

// ---------------------------------------------------------------------
// The queries
// ---------------------------------------------------------------------

/// Q1: the name of the person with id `person0` (exact-match lookup).
fn q1<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let hits = sel(view, opts, "/site/people/person[@id=\"person0\"]/name")?;
    let mut f = Fnv::new();
    for &h in &hits {
        f.feed(&view.string_value(h));
    }
    Ok(result_from(hits.len(), f))
}

/// Q2: the increase of the first bid of every open auction. The
/// `for $a in //open_auction return $a/bidder[1]` loop runs as one
/// loop-lifted child step over all auctions at once.
fn q2<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let auctions = sel(view, opts, "/site/open_auctions/open_auction")?;
    let bidders = step_lifted(
        view,
        &ContextSeq::lift(&auctions),
        Axis::Child,
        &NodeTest::Name(QName::local("bidder")),
    );
    let mut f = Fnv::new();
    let mut rows = 0;
    for iter in bidders.iter_ids() {
        if let Some(&first) = bidders.pres_of_iter(iter).first() {
            if let Some(inc) = child_named(view, first, "increase") {
                f.feed(&view.string_value(inc));
                rows += 1;
            }
        }
    }
    Ok(result_from(rows, f))
}

/// Q3: auctions whose current highest bid is at least twice the first
/// bid; returns (first increase, last increase).
fn q3<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let auctions = sel(view, opts, "/site/open_auctions/open_auction")?;
    let per_auction = step_lifted(
        view,
        &ContextSeq::lift(&auctions),
        Axis::Child,
        &NodeTest::Name(QName::local("bidder")),
    );
    let mut f = Fnv::new();
    let mut rows = 0;
    for iter in per_auction.iter_ids() {
        let bidders = per_auction.pres_of_iter(iter);
        if bidders.len() < 2 {
            continue;
        }
        let first_inc = child_named(view, bidders[0], "increase").map(|p| num(view, p));
        let last_inc =
            child_named(view, bidders[bidders.len() - 1], "increase").map(|p| num(view, p));
        if let (Some(x), Some(y)) = (first_inc, last_inc) {
            if x * 2.0 <= y {
                f.feed(&format!("{x:.2}|{y:.2}"));
                rows += 1;
            }
        }
    }
    Ok(result_from(rows, f))
}

/// Q4: auctions where a bid by `person1` precedes a bid by `person2` in
/// document order (order-sensitive query); returns the initial price.
fn q4<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let auctions = sel(view, opts, "/site/open_auctions/open_auction")?;
    let mut f = Fnv::new();
    let mut rows = 0;
    for &a in &auctions {
        let mut saw_first = false;
        let mut qualifies = false;
        for b in children_named(view, a, "bidder") {
            if let Some(pref) = child_named(view, b, "personref") {
                match attr(view, pref, "person").as_deref() {
                    Some("person1") => saw_first = true,
                    Some("person2") if saw_first => {
                        qualifies = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
        if qualifies {
            if let Some(init) = child_named(view, a, "initial") {
                f.feed(&view.string_value(init));
                rows += 1;
            }
        }
    }
    Ok(result_from(rows, f))
}

/// Q5: how many closed auctions sold above 40.
fn q5<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let prices = sel(view, opts, "/site/closed_auctions/closed_auction/price")?;
    let count = prices.iter().filter(|&&p| num(view, p) >= 40.0).count();
    let mut f = Fnv::new();
    f.feed(&count.to_string());
    Ok(result_from(count.max(1), f))
}

/// Q6: number of items per region — one loop-lifted descendant staircase
/// join for all regions, then a per-iteration count.
fn q6<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let regions = sel(view, opts, "/site/regions/*")?;
    let item = NodeTest::Name(QName::local("item"));
    let items = step_lifted(view, &ContextSeq::lift(&regions), Axis::Descendant, &item);
    let mut f = Fnv::new();
    for iter in 0..regions.len() as u32 {
        f.feed(&items.pres_of_iter(iter).len().to_string());
    }
    Ok(result_from(regions.len(), f))
}

/// Q7: how many pieces of prose (descriptions, annotations, email
/// addresses) the database holds.
fn q7<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let d = sel(view, opts, "//description")?.len();
    let a = sel(view, opts, "//annotation")?.len();
    let e = sel(view, opts, "//emailaddress")?.len();
    let mut f = Fnv::new();
    f.feed(&(d + a + e).to_string());
    Ok(result_from(d + a + e, f))
}

/// Builds `person id → name pre` for the join queries.
fn person_index<V: TreeView>(
    view: &V,
    opts: &EvalOptions<'_>,
) -> Result<Vec<(String, u64)>, QueryError> {
    let persons = sel(view, opts, "/site/people/person")?;
    let mut out = Vec::with_capacity(persons.len());
    for &p in &persons {
        if let Some(id) = attr(view, p, "id") {
            out.push((id, p));
        }
    }
    Ok(out)
}

/// Q8: for every person, the number of items they bought (hash join
/// person ↔ closed_auction buyer).
fn q8<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let buyers = sel(view, opts, "/site/closed_auctions/closed_auction/buyer")?;
    let mut bought: HashMap<String, usize> = HashMap::new();
    for &b in &buyers {
        if let Some(id) = attr(view, b, "person") {
            *bought.entry(id).or_default() += 1;
        }
    }
    let persons = person_index(view, opts)?;
    let mut f = Fnv::new();
    for (id, p) in &persons {
        let n = bought.get(id).copied().unwrap_or(0);
        let name = child_named(view, *p, "name")
            .map(|x| view.string_value(x))
            .unwrap_or_default();
        f.feed(&format!("{name}|{n}"));
    }
    Ok(result_from(persons.len(), f))
}

/// Q9: like Q8 but joining through to *European* items — person ↔
/// closed_auction ↔ item (two hash joins).
fn q9<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    // European item id → name.
    let eu_items = sel(view, opts, "/site/regions/europe/item")?;
    let mut eu: HashMap<String, String> = HashMap::new();
    for &i in &eu_items {
        if let (Some(id), Some(name)) = (attr(view, i, "id"), child_named(view, i, "name")) {
            eu.insert(id, view.string_value(name));
        }
    }
    // buyer person id → european item names bought.
    let closed = sel(view, opts, "/site/closed_auctions/closed_auction")?;
    let mut bought: HashMap<String, Vec<String>> = HashMap::new();
    for &c in &closed {
        let buyer = child_named(view, c, "buyer").and_then(|b| attr(view, b, "person"));
        let item = child_named(view, c, "itemref").and_then(|i| attr(view, i, "item"));
        if let (Some(buyer), Some(item)) = (buyer, item) {
            if let Some(name) = eu.get(&item) {
                bought.entry(buyer).or_default().push(name.clone());
            }
        }
    }
    let persons = person_index(view, opts)?;
    let mut f = Fnv::new();
    let mut rows = 0;
    for (id, p) in &persons {
        let name = child_named(view, *p, "name")
            .map(|x| view.string_value(x))
            .unwrap_or_default();
        if let Some(items) = bought.get(id) {
            for item in items {
                f.feed(&format!("{name}|{item}"));
                rows += 1;
            }
        } else {
            f.feed(&name);
        }
    }
    Ok(result_from(rows.max(persons.len()), f))
}

/// Q10: group people by their interest categories and materialize their
/// profile data (the expensive restructuring query).
fn q10<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let persons = sel(view, opts, "/site/people/person")?;
    let mut groups: HashMap<String, Vec<String>> = HashMap::new();
    for &p in &persons {
        let Some(profile) = child_named(view, p, "profile") else {
            continue;
        };
        let income = attr(view, profile, "income").unwrap_or_default();
        let name = child_named(view, p, "name")
            .map(|x| view.string_value(x))
            .unwrap_or_default();
        let email = child_named(view, p, "emailaddress")
            .map(|x| view.string_value(x))
            .unwrap_or_default();
        let gender = child_named(view, profile, "gender")
            .map(|x| view.string_value(x))
            .unwrap_or_default();
        let record = format!("{name}|{email}|{income}|{gender}");
        for interest in children_named(view, profile, "interest") {
            if let Some(cat) = attr(view, interest, "category") {
                groups.entry(cat).or_default().push(record.clone());
            }
        }
    }
    let mut cats: Vec<_> = groups.into_iter().collect();
    cats.sort_by(|a, b| a.0.cmp(&b.0));
    let mut f = Fnv::new();
    let mut rows = 0;
    for (cat, records) in cats {
        f.feed(&cat);
        for r in records {
            f.feed(&r);
            rows += 1;
        }
    }
    Ok(result_from(rows, f))
}

/// Q11: for every person, how many open auctions had an initial price
/// the person's income covers 5000-fold (value join person.income vs
/// auction.initial; sort + binary search instead of O(P·A)).
fn q11<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let mut initials: Vec<f64> = sel(view, opts, "/site/open_auctions/open_auction/initial")?
        .iter()
        .map(|&p| num(view, p))
        .collect();
    initials.sort_by(f64::total_cmp);
    let persons = sel(view, opts, "/site/people/person")?;
    let mut f = Fnv::new();
    for &p in &persons {
        let income = child_named(view, p, "profile")
            .and_then(|pr| attr(view, pr, "income"))
            .and_then(|s| s.parse::<f64>().ok());
        let n = match income {
            Some(inc) => initials.partition_point(|&i| i * 5000.0 < inc),
            None => 0,
        };
        f.feed(&n.to_string());
    }
    Ok(result_from(persons.len(), f))
}

/// Q12: like Q11 but only for persons with income over 50000.
fn q12<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let mut initials: Vec<f64> = sel(view, opts, "/site/open_auctions/open_auction/initial")?
        .iter()
        .map(|&p| num(view, p))
        .collect();
    initials.sort_by(f64::total_cmp);
    let persons = sel(view, opts, "/site/people/person")?;
    let mut f = Fnv::new();
    let mut rows = 0;
    for &p in &persons {
        let Some(inc) = child_named(view, p, "profile")
            .and_then(|pr| attr(view, pr, "income"))
            .and_then(|s| s.parse::<f64>().ok())
        else {
            continue;
        };
        if inc > 50_000.0 {
            let n = initials.partition_point(|&i| i * 5000.0 < inc);
            f.feed(&n.to_string());
            rows += 1;
        }
    }
    Ok(result_from(rows.max(1), f))
}

/// Q13: names and full descriptions of Australian items (reconstruction
/// of subtrees).
fn q13<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let items = sel(view, opts, "/site/regions/australia/item")?;
    let mut f = Fnv::new();
    for &i in &items {
        let name = child_named(view, i, "name")
            .map(|x| view.string_value(x))
            .unwrap_or_default();
        // Materialize the description subtree (string value walks the
        // whole region — the serialization cost the query measures).
        let desc = child_named(view, i, "description")
            .map(|d| view.string_value(d))
            .unwrap_or_default();
        f.feed(&format!("{name}|{desc}"));
    }
    Ok(result_from(items.len(), f))
}

/// Q14: items whose description mentions "gold" (full-text scan).
fn q14<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let items = sel(view, opts, "//item")?;
    let mut f = Fnv::new();
    let mut rows = 0;
    for &i in &items {
        let Some(desc) = child_named(view, i, "description") else {
            continue;
        };
        if view.string_value(desc).contains("gold") {
            if let Some(name) = child_named(view, i, "name") {
                f.feed(&view.string_value(name));
                rows += 1;
            }
        }
    }
    Ok(result_from(rows, f))
}

/// Q15's long, fully-specified downward path.
pub const Q15_PATH: &str = "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()";

/// The pure-XPath corpus of the Q1–Q20 plans: every `(label, path)`
/// selection the hand-compiled queries issue through [`XPath`], plus
/// the selective descendant probes Q7 decomposes into. The `plan_cost`
/// benchmark drives exactly this corpus through the plan pipeline with
/// per-query strategy ablation (forced-staircase vs forced-index vs
/// cost-chosen).
pub const QUERY_PATHS: &[(&str, &str)] = &[
    (
        "q01_person0_name",
        "/site/people/person[@id=\"person0\"]/name",
    ),
    ("q02_open_auctions", "/site/open_auctions/open_auction"),
    (
        "q05_closed_prices",
        "/site/closed_auctions/closed_auction/price",
    ),
    ("q06_regions", "/site/regions/*"),
    ("q07_descriptions", "//description"),
    ("q07_annotations", "//annotation"),
    ("q07_emailaddresses", "//emailaddress"),
    ("q08_buyers", "/site/closed_auctions/closed_auction/buyer"),
    ("q09_europe_items", "/site/regions/europe/item"),
    ("q10_persons", "/site/people/person"),
    ("q11_initials", "/site/open_auctions/open_auction/initial"),
    ("q13_australia_items", "/site/regions/australia/item"),
    ("q14_items", "//item"),
    ("q15_deep_path", Q15_PATH),
    ("q16_keywords", "//keyword"),
    ("q17_no_homepage", "/site/people/person[not(homepage)]/name"),
    ("q19_locations", "//item/location"),
    ("q20_incomes", "/site/people/person/profile"),
    ("sel_personref", "//personref"),
    ("sel_homepage_exists", "/site/people/person[homepage]/name"),
    (
        "sel_first_bidder",
        "/site/open_auctions/open_auction/bidder[1]/increase",
    ),
];

/// Q15: a long, fully-specified downward path (rewards positional
/// skipping).
fn q15<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let hits = sel(view, opts, Q15_PATH)?;
    let mut f = Fnv::new();
    for &h in &hits {
        f.feed(&view.string_value(h));
    }
    Ok(result_from(hits.len(), f))
}

/// Q16: like Q15, but returning the auction's seller (a long path plus
/// an upward step back to the auction).
fn q16<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let keywords = sel(
        view,
        opts,
        "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
    )?;
    let auction_test = NodeTest::Name(QName::local("closed_auction"));
    let auctions = step(view, &keywords, Axis::Ancestor, &auction_test);
    let mut f = Fnv::new();
    let mut rows = 0;
    for &a in &auctions {
        if let Some(seller) = child_named(view, a, "seller") {
            if let Some(id) = attr(view, seller, "person") {
                f.feed(&id);
                rows += 1;
            }
        }
    }
    Ok(result_from(rows, f))
}

/// Q17: people without a homepage (negated existence predicate).
fn q17<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let hits = sel(view, opts, "/site/people/person[not(homepage)]/name")?;
    let mut f = Fnv::new();
    for &h in &hits {
        f.feed(&view.string_value(h));
    }
    Ok(result_from(hits.len(), f))
}

/// Q18: apply a (currency conversion) function to every open auction's
/// initial price — pure numeric processing.
fn q18<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let initials = sel(view, opts, "/site/open_auctions/open_auction/initial")?;
    let mut f = Fnv::new();
    for &i in &initials {
        let converted = num(view, i) * 2.20371;
        f.feed(&format!("{converted:.4}"));
    }
    Ok(result_from(initials.len(), f))
}

/// Q19: items with their location, ordered by location (global sort).
fn q19<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let items = sel(view, opts, "//item")?;
    let mut rows: Vec<(String, String)> = Vec::with_capacity(items.len());
    for &i in &items {
        let loc = child_named(view, i, "location")
            .map(|x| view.string_value(x))
            .unwrap_or_default();
        let name = child_named(view, i, "name")
            .map(|x| view.string_value(x))
            .unwrap_or_default();
        rows.push((loc, name));
    }
    rows.sort();
    let mut f = Fnv::new();
    for (loc, name) in &rows {
        f.feed(&format!("{name}|{loc}"));
    }
    Ok(result_from(rows.len(), f))
}

/// Q20: counts of people per income bracket (aggregation with
/// complementary predicates).
fn q20<V: TreeView>(view: &V, opts: &EvalOptions<'_>) -> Result<QueryResult, QueryError> {
    let persons = sel(view, opts, "/site/people/person")?;
    let (mut high, mut mid, mut low, mut none) = (0usize, 0, 0, 0);
    for &p in &persons {
        match child_named(view, p, "profile")
            .and_then(|pr| attr(view, pr, "income"))
            .and_then(|s| s.parse::<f64>().ok())
        {
            Some(i) if i >= 100_000.0 => high += 1,
            Some(i) if i >= 30_000.0 => mid += 1,
            Some(_) => low += 1,
            None => none += 1,
        }
    }
    let mut f = Fnv::new();
    for n in [high, mid, low, none] {
        f.feed(&n.to_string());
    }
    Ok(result_from(4, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, XMarkConfig};
    use mbxq_storage::ReadOnlyDoc;

    fn doc() -> ReadOnlyDoc {
        ReadOnlyDoc::parse_str(&generate(&XMarkConfig::tiny(11))).unwrap()
    }

    #[test]
    fn q1_finds_person0() {
        let d = doc();
        assert_eq!(q1(&d, &EvalOptions::default()).unwrap().rows, 1);
    }

    #[test]
    fn q5_counts_expensive_closings() {
        let d = doc();
        let r = q5(&d, &EvalOptions::default()).unwrap();
        assert!(r.rows >= 1);
    }

    #[test]
    fn q6_reports_one_count_per_region() {
        let d = doc();
        assert_eq!(q6(&d, &EvalOptions::default()).unwrap().rows, 6);
    }

    #[test]
    fn q8_row_per_person() {
        let d = doc();
        let cfg = XMarkConfig::tiny(11);
        assert_eq!(q8(&d, &EvalOptions::default()).unwrap().rows, cfg.persons());
    }

    #[test]
    fn q15_and_q16_traverse_the_deep_path() {
        // Use a bigger doc so the 40 % parlist probability definitely
        // produces closed-auction annotations with the nested shape.
        let d = ReadOnlyDoc::parse_str(&generate(&XMarkConfig::scaled(0.004, 2))).unwrap();
        let r15 = q15(&d, &EvalOptions::default()).unwrap();
        assert!(r15.rows > 0, "Q15 path not present in generated data");
        let r16 = q16(&d, &EvalOptions::default()).unwrap();
        assert!(r16.rows > 0 && r16.rows <= r15.rows);
    }

    #[test]
    fn q20_brackets_partition_people() {
        let d = doc();
        assert_eq!(q20(&d, &EvalOptions::default()).unwrap().rows, 4);
    }

    #[test]
    fn unknown_query_number_errors() {
        let d = doc();
        assert!(matches!(
            run_query(&d, 21),
            Err(QueryError::UnknownQuery(21))
        ));
        assert!(matches!(run_query(&d, 0), Err(QueryError::UnknownQuery(0))));
    }

    #[test]
    fn checksums_are_stable() {
        let d = doc();
        for q in 1..=QUERY_COUNT {
            let a = run_query(&d, q).unwrap();
            let b = run_query(&d, q).unwrap();
            assert_eq!(a, b, "Q{q} not deterministic");
        }
    }
}
