//! The blocking client: connect + handshake, one request/response pair
//! at a time, cursor draining helpers. Used by the end-to-end tests and
//! by `server_bench`.

use crate::proto::{self, QuerySpec, QueryTarget, Request, Response, ServerStats, UpdateSummary};
use crate::{NetError, Result};
use mbxq_storage::NodeId;
use mbxq_xpath::{Bindings, Value};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// An open node-set cursor, as announced by the server's header frame.
/// Drain it with [`Client::fetch`] / [`Client::drain`] or abandon it
/// with [`Client::close_cursor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CursorHandle {
    /// The session-scoped cursor id.
    pub id: u32,
    /// The documents contributing rows, in merge order.
    pub docs: Vec<String>,
    /// Total rows the cursor will yield.
    pub total: u64,
}

/// What a query came back as.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// A non-node-set value (number, boolean, string, attribute set).
    Scalar(Value),
    /// A node set, open as a server-side cursor.
    Cursor(CursorHandle),
}

/// A blocking connection to an [`crate::Server`]. One request is in
/// flight at a time; every method is a full request/response round
/// trip.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects and negotiates protocol version [`proto::VERSION`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.write_all(&proto::MAGIC)?;
        stream.write_all(&[1u8])?;
        stream.write_all(&proto::VERSION.to_le_bytes())?;
        stream.flush()?;
        let mut reply = [0u8; 8];
        stream.read_exact(&mut reply)?;
        if reply[..4] != proto::MAGIC {
            return Err(NetError::Protocol("bad handshake magic".to_string()));
        }
        let chosen = u32::from_le_bytes(reply[4..].try_into().unwrap());
        if chosen != proto::VERSION {
            return Err(NetError::Protocol(format!(
                "server rejected protocol version (answered {chosen})"
            )));
        }
        Ok(Client {
            stream,
            max_frame: proto::MAX_FRAME_DEFAULT,
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        proto::write_frame(&mut self.stream, &req.encode())?;
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len) as usize;
        if len == 0 || len > self.max_frame {
            return Err(NetError::Protocol(format!("bad reply frame length {len}")));
        }
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        match Response::decode(&payload)? {
            Response::Error { code, message } => Err(NetError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(what: &str, resp: &Response) -> Result<T> {
        Err(NetError::Protocol(format!("expected {what}, got {resp:?}")))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Self::unexpected("Pong", &other),
        }
    }

    /// Creates a document from XML text.
    pub fn create_doc(&mut self, name: &str, xml: &str) -> Result<()> {
        match self.call(&Request::CreateDoc {
            name: name.to_string(),
            xml: xml.to_string(),
        })? {
            Response::Ok => Ok(()),
            other => Self::unexpected("Ok", &other),
        }
    }

    /// Drops a document.
    pub fn drop_doc(&mut self, name: &str) -> Result<()> {
        match self.call(&Request::DropDoc {
            name: name.to_string(),
        })? {
            Response::Ok => Ok(()),
            other => Self::unexpected("Ok", &other),
        }
    }

    /// Document names in creation order.
    pub fn list_docs(&mut self) -> Result<Vec<String>> {
        match self.call(&Request::ListDocs)? {
            Response::Docs { names } => Ok(names),
            other => Self::unexpected("Docs", &other),
        }
    }

    /// Runs a fully-specified query (see [`QuerySpec`]).
    pub fn query_spec(&mut self, spec: QuerySpec) -> Result<QueryReply> {
        match self.call(&Request::Query(spec))? {
            Response::Scalar { value } => Ok(QueryReply::Scalar(value)),
            Response::Header {
                cursor,
                docs,
                total,
            } => Ok(QueryReply::Cursor(CursorHandle {
                id: cursor,
                docs,
                total,
            })),
            other => Self::unexpected("Scalar or Header", &other),
        }
    }

    /// Queries one document, optionally with `$name` bindings.
    pub fn query(
        &mut self,
        doc: &str,
        text: &str,
        bindings: Option<&Bindings>,
    ) -> Result<QueryReply> {
        let mut spec = QuerySpec::new(QueryTarget::Doc(doc.to_string()), text);
        if let Some(b) = bindings {
            spec.bindings = bindings_to_wire(b);
        }
        self.query_spec(spec)
    }

    /// Queries one document for a node set and drains the cursor.
    pub fn query_nodes(
        &mut self,
        doc: &str,
        text: &str,
        bindings: Option<&Bindings>,
    ) -> Result<Vec<NodeId>> {
        match self.query(doc, text, bindings)? {
            QueryReply::Cursor(cur) => {
                let mut per_doc = self.drain(&cur)?;
                Ok(per_doc.pop().map(|(_, nodes)| nodes).unwrap_or_default())
            }
            QueryReply::Scalar(v) => Err(NetError::Protocol(format!(
                "expected a node set, got {v:?}"
            ))),
        }
    }

    /// Queries every document (or, in a pinned session, every pinned
    /// one) and drains the cursor into per-document node lists.
    pub fn query_all(
        &mut self,
        text: &str,
        bindings: Option<&Bindings>,
    ) -> Result<Vec<(String, Vec<NodeId>)>> {
        let mut spec = QuerySpec::new(QueryTarget::All, text);
        if let Some(b) = bindings {
            spec.bindings = bindings_to_wire(b);
        }
        match self.query_spec(spec)? {
            QueryReply::Cursor(cur) => self.drain(&cur),
            QueryReply::Scalar(v) => Err(NetError::Protocol(format!(
                "expected a node set, got {v:?}"
            ))),
        }
    }

    /// Queries the named documents in order (e.g. a partition group)
    /// and drains the cursor into per-document node lists.
    pub fn query_collection(
        &mut self,
        names: &[String],
        text: &str,
        bindings: Option<&Bindings>,
    ) -> Result<Vec<(String, Vec<NodeId>)>> {
        let mut spec = QuerySpec::new(QueryTarget::Collection(names.to_vec()), text);
        if let Some(b) = bindings {
            spec.bindings = bindings_to_wire(b);
        }
        match self.query_spec(spec)? {
            QueryReply::Cursor(cur) => self.drain(&cur),
            QueryReply::Scalar(v) => Err(NetError::Protocol(format!(
                "expected a node set, got {v:?}"
            ))),
        }
    }

    /// Fetches the next page of an open cursor: `(done, rows)` with
    /// rows as `(doc index, node id)` pairs.
    pub fn fetch(&mut self, cursor: u32) -> Result<(bool, Vec<(u32, NodeId)>)> {
        match self.call(&Request::Fetch { cursor })? {
            Response::Page { done, rows } => Ok((
                done,
                rows.into_iter().map(|(d, n)| (d, NodeId(n))).collect(),
            )),
            other => Self::unexpected("Page", &other),
        }
    }

    /// Drains a cursor to completion, grouping rows per document in the
    /// header's document order.
    pub fn drain(&mut self, cursor: &CursorHandle) -> Result<Vec<(String, Vec<NodeId>)>> {
        let mut per: Vec<Vec<NodeId>> = vec![Vec::new(); cursor.docs.len()];
        loop {
            let (done, rows) = self.fetch(cursor.id)?;
            for (doc, node) in rows {
                let slot = per.get_mut(doc as usize).ok_or_else(|| {
                    NetError::Protocol(format!("row names doc index {doc} beyond header"))
                })?;
                slot.push(node);
            }
            if done {
                break;
            }
        }
        Ok(cursor.docs.iter().cloned().zip(per).collect())
    }

    /// Closes a cursor without draining it.
    pub fn close_cursor(&mut self, cursor: u32) -> Result<()> {
        match self.call(&Request::CloseCursor { cursor })? {
            Response::Ok => Ok(()),
            other => Self::unexpected("Ok", &other),
        }
    }

    /// Executes an XUpdate script as one write transaction.
    pub fn xupdate(&mut self, doc: &str, script: &str) -> Result<UpdateSummary> {
        match self.call(&Request::XUpdate {
            doc: doc.to_string(),
            script: script.to_string(),
        })? {
            Response::Summary { summary } => Ok(summary),
            other => Self::unexpected("Summary", &other),
        }
    }

    /// Pins snapshots of the named documents (empty = every current
    /// document) for repeatable reads; returns how many are pinned.
    pub fn pin(&mut self, names: &[String]) -> Result<u32> {
        match self.call(&Request::Pin {
            names: names.to_vec(),
        })? {
            Response::Pinned { count } => Ok(count),
            other => Self::unexpected("Pinned", &other),
        }
    }

    /// Drops the session's pinned snapshots.
    pub fn unpin(&mut self) -> Result<()> {
        match self.call(&Request::Unpin)? {
            Response::Ok => Ok(()),
            other => Self::unexpected("Ok", &other),
        }
    }

    /// Server-wide execution statistics: the catalog's aggregated plan
    /// cache, the shared query pool (width, spawn state, steal count,
    /// calibrated per-morsel overhead) and the cumulative executor
    /// counters — morsel-parallel steps, parallel predicates,
    /// vectorized-kernel dispatches, multi-predicate steps with their
    /// posting-list intersection rows, and adaptive replans — across
    /// every session.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Self::unexpected("Stats", &other),
        }
    }

    /// Orderly end of session; the connection is closed afterwards.
    pub fn goodbye(mut self) -> Result<()> {
        match self.call(&Request::Goodbye)? {
            Response::Ok => Ok(()),
            other => Self::unexpected("Ok", &other),
        }
    }
}

fn bindings_to_wire(b: &Bindings) -> Vec<(String, Value)> {
    let mut wire: Vec<(String, Value)> = b
        .iter()
        .map(|(name, value)| (name.to_string(), value.clone()))
        .collect();
    // Deterministic wire bytes whatever the map iteration order.
    wire.sort_by(|a, b| a.0.cmp(&b.0));
    wire
}
