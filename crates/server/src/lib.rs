//! `mbxq-server` — the network face of the catalog.
//!
//! MonetDB/XQuery served interactive XMark query + update traffic over
//! MonetDB's client protocol; this crate is the reproduction's
//! equivalent: a TCP server (std `TcpListener`, no external
//! dependencies) speaking a length-prefixed binary protocol in front of
//! one shared [`mbxq_txn::Catalog`]. The server layer owns **sessions,
//! framing and cursors only** — storage, recovery, transactions and the
//! cross-document fan-out all live in the catalog underneath.
//!
//! # Protocol
//!
//! Connection setup is Bolt-style version negotiation: the client sends
//! the magic `MBXQ`, a version count, and its proposed protocol
//! versions; the server answers with the magic and the version it
//! picked (`0` = no overlap, connection closed). Everything after the
//! handshake is **frames**: a `u32` little-endian payload length
//! followed by the payload, whose first byte is the opcode. See
//! [`proto`] for the exact request/response encodings.
//!
//! # Sessions and snapshots
//!
//! Every connection is one session. By default each query runs against
//! the document's newest committed snapshot (the catalog's usual MVCC
//! read). A session may instead **pin** snapshots
//! ([`Client::pin`]): the session then holds `Shard::snapshot()` Arcs
//! and re-serves them for every subsequent query — repeatable reads
//! across requests, unaffected by concurrent commits, until the session
//! unpins, re-pins, or disconnects. Pins hold the shard alive
//! (MVCC-style), so a pinned document keeps answering even if it is
//! dropped from the catalog concurrently.
//!
//! # Cursors
//!
//! Node-set query results never travel as one giant frame: the server
//! materializes the node ids (stable [`mbxq_storage::NodeId`] logical
//! ids, not physical pre ranks), answers with a cursor header (cursor
//! id, document list, total row count), and the client pages the rows
//! out in fixed-size `Fetch` frames. A cursor closes on its final page,
//! on an explicit close, or with the session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;

mod client;
mod server;

pub use client::{Client, CursorHandle, QueryReply};
pub use proto::{ErrorCode, QuerySpec, QueryTarget, Request, Response, ServerStats, UpdateSummary};
pub use server::{Server, ServerConfig};

/// Errors of the wire layer — socket failures, malformed frames, and
/// errors the server reported for a request.
#[derive(Debug)]
pub enum NetError {
    /// A socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// A malformed or truncated frame, or a failed handshake.
    Protocol(String),
    /// An error the server reported for this request.
    Remote {
        /// The machine-readable error class.
        code: ErrorCode,
        /// The human-readable message.
        message: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Protocol(m) => write!(f, "protocol: {m}"),
            NetError::Remote { code, message } => write!(f, "server ({code:?}): {message}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// Result alias of this crate.
pub type Result<T> = std::result::Result<T, NetError>;
