//! The TCP server: accept loop, worker pool, per-connection sessions.

use crate::proto::{
    self, is_unknown_opcode, ErrorCode, QuerySpec, QueryTarget, Request, Response, ServerStats,
};
use crate::{NetError, Result};
use mbxq_storage::{NodeId, PagedDoc};
use mbxq_txn::{Catalog, Shard, TxnError};
use mbxq_xpath::{Bindings, EvalOptions, EvalStats, Value};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server-wide cumulative executor counters: every session's queries
/// evaluate with a private [`EvalStats`] (its cells are not `Sync`)
/// whose deltas are folded in here afterwards. Reported by the `Stats`
/// opcode alongside the catalog's plan-cache and pool counters.
#[derive(Default)]
struct EvalCounters {
    par_steps: AtomicU64,
    morsels: AtomicU64,
    pred_par_steps: AtomicU64,
    simd_steps: AtomicU64,
    multi_probe_steps: AtomicU64,
    intersect_rows: AtomicU64,
    replans: AtomicU64,
}

impl EvalCounters {
    fn fold(&self, s: &EvalStats) {
        self.par_steps
            .fetch_add(s.par_steps.get(), Ordering::Relaxed);
        self.morsels.fetch_add(s.morsels.get(), Ordering::Relaxed);
        self.pred_par_steps
            .fetch_add(s.pred_par_steps.get(), Ordering::Relaxed);
        self.simd_steps
            .fetch_add(s.simd_steps.get(), Ordering::Relaxed);
        self.multi_probe_steps
            .fetch_add(s.multi_probe_steps.get(), Ordering::Relaxed);
        self.intersect_rows
            .fetch_add(s.intersect_rows.get(), Ordering::Relaxed);
        self.replans.fetch_add(s.replans.get(), Ordering::Relaxed);
    }
}

/// Server tuning knobs. The defaults suit tests and benchmarks: an
/// ephemeral loopback port, a small worker pool, frames capped at
/// 64 MiB, and a 10-second cap on receiving one frame's bytes.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` = ephemeral loopback port).
    pub addr: String,
    /// Connection-serving worker threads. Each connection occupies one
    /// worker for its whole session, so this is also the concurrent-
    /// session cap; further connections queue until a worker frees up.
    pub workers: usize,
    /// Maximum frame payload length accepted (and sent).
    pub max_frame: usize,
    /// How long a started frame (or handshake) may take to arrive in
    /// full — torn frames error out instead of parking a worker.
    pub frame_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            max_frame: proto::MAX_FRAME_DEFAULT,
            frame_timeout: Duration::from_secs(10),
        }
    }
}

/// Rows per cursor page when the query didn't pick a size.
const DEFAULT_PAGE_ROWS: u32 = 1024;
/// Hard cap on rows per cursor page (12 bytes/row → ≤ ~768 KiB frames).
const MAX_PAGE_ROWS: u32 = 65536;
/// How often a parked read re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running server: an accept thread feeding a fixed worker pool, all
/// sessions sharing one [`Catalog`]. Dropping the server (or calling
/// [`Server::shutdown`]) stops accepting, interrupts idle sessions and
/// joins every thread.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, spawns the worker pool and the accept thread, and returns
    /// immediately; [`Server::addr`] has the actual (possibly
    /// ephemeral) address clients connect to.
    pub fn start(catalog: Arc<Catalog>, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(EvalCounters::default());
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let catalog = catalog.clone();
                let config = config.clone();
                let shutdown = shutdown.clone();
                let counters = counters.clone();
                std::thread::spawn(move || {
                    worker_loop(&rx, &catalog, &config, &shutdown, &counters)
                })
            })
            .collect();
        let accept_shutdown = shutdown.clone();
        let accept_handle = std::thread::spawn(move || {
            // The channel sender lives here: when this loop ends it
            // drops, the workers' `recv` fails, and they exit once
            // their current session finishes.
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // A single failed accept (peer vanished mid-
                    // handshake, transient resource pressure) must not
                    // kill the listener.
                    Err(_) => continue,
                }
            }
        });
        Ok(Server {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server: no new connections, idle sessions interrupted
    /// at their next poll tick, all threads joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    catalog: &Arc<Catalog>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    counters: &Arc<EvalCounters>,
) {
    loop {
        // The receiver lock (a temporary in the scrutinee) is released
        // at the end of this statement — never held while serving.
        let stream = match rx.lock().unwrap().recv() {
            Ok(s) => s,
            Err(_) => return, // accept loop gone
        };
        if shutdown.load(Ordering::SeqCst) {
            continue; // drain the queue without serving
        }
        // A panicking session (a bug, not a protocol error) must not
        // take the worker down with it — the stream drops, the one
        // session dies, the worker serves the next connection.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _ = serve_connection(stream, catalog, config, shutdown, counters);
        }));
    }
}

// ------------------------------------------------------------- connection IO

/// Reads exactly `buf.len()` bytes. Returns `Ok(false)` on a clean EOF
/// before the first byte (peer closed between frames). While parked it
/// polls `shutdown`; once the first byte has arrived the rest must
/// follow within `frame_timeout` (`armed` forces the deadline from the
/// start — used for frame payloads, which continue an already-started
/// frame).
fn read_exact_polled(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    frame_timeout: Duration,
    armed: bool,
) -> Result<bool> {
    let mut off = 0;
    let mut deadline = armed.then(|| Instant::now() + frame_timeout);
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                if off == 0 {
                    return Ok(false);
                }
                return Err(NetError::Protocol(format!(
                    "peer closed mid-frame ({off} of {} bytes)",
                    buf.len()
                )));
            }
            Ok(n) => {
                off += n;
                deadline.get_or_insert_with(|| Instant::now() + frame_timeout);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Err(NetError::Protocol("server shutting down".to_string()));
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(NetError::Protocol(format!(
                            "frame timed out ({off} of {} bytes)",
                            buf.len()
                        )));
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame. `Ok(None)` = clean close between frames.
fn read_frame(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_exact_polled(stream, &mut len, shutdown, config.frame_timeout, false)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > config.max_frame {
        return Err(NetError::Remote {
            code: ErrorCode::FrameTooLarge,
            message: format!("frame of {len} bytes (limit {})", config.max_frame),
        });
    }
    let mut payload = vec![0u8; len];
    if !read_exact_polled(stream, &mut payload, shutdown, config.frame_timeout, true)? {
        return Err(NetError::Protocol("peer closed mid-frame".to_string()));
    }
    Ok(Some(payload))
}

fn send(stream: &mut TcpStream, resp: &Response) -> Result<()> {
    proto::write_frame(stream, &resp.encode())?;
    Ok(())
}

// ----------------------------------------------------------------- sessions

/// One open cursor: fully resolved rows, paged out on `Fetch`.
struct Cursor {
    rows: Vec<(u32, u64)>,
    pos: usize,
    page: usize,
}

/// One pinned document: the shard (for its plan cache) plus the
/// snapshot taken at pin time. Holding the `Arc<Shard>` keeps the
/// document serving even if it is dropped from the catalog while
/// pinned.
struct Pin {
    name: String,
    shard: Arc<Shard>,
    snapshot: Arc<PagedDoc>,
}

#[derive(Default)]
struct Session {
    /// Pin order = the document order of pinned `All` queries.
    pins: Vec<Pin>,
    cursors: HashMap<u32, Cursor>,
    next_cursor: u32,
}

impl Session {
    fn pinned(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }
}

/// The per-request outcome: a response, plus whether the session must
/// end (protocol damage or an orderly goodbye).
struct Reply {
    response: Response,
    hangup: bool,
}

impl Reply {
    fn ok(response: Response) -> Reply {
        Reply {
            response,
            hangup: false,
        }
    }

    fn err(code: ErrorCode, message: impl Into<String>) -> Reply {
        Reply {
            response: Response::Error {
                code,
                message: message.into(),
            },
            hangup: false,
        }
    }
}

fn txn_error_reply(e: &TxnError) -> Reply {
    let code = match e {
        TxnError::UnknownDocument { .. } => ErrorCode::UnknownDocument,
        TxnError::DuplicateDocument { .. } => ErrorCode::DuplicateDocument,
        TxnError::Path(_) => ErrorCode::Query,
        _ => ErrorCode::Txn,
    };
    Reply::err(code, e.to_string())
}

fn serve_connection(
    mut stream: TcpStream,
    catalog: &Arc<Catalog>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    counters: &Arc<EvalCounters>,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    // Short read timeouts turn blocking reads into shutdown-poll ticks;
    // a write timeout keeps a stalled peer from parking a worker on a
    // full socket buffer.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(config.frame_timeout))?;
    if !handshake(&mut stream, shutdown, config)? {
        return Ok(());
    }
    let mut session = Session::default();
    loop {
        let payload = match read_frame(&mut stream, shutdown, config) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // clean disconnect
            Err(NetError::Remote { code, message }) => {
                // Oversized length prefix: report, then hang up — the
                // stream position is unrecoverable.
                let _ = send(&mut stream, &Response::Error { code, message });
                return Ok(());
            }
            Err(_) => return Ok(()), // torn frame / timeout / shutdown
        };
        let reply = match Request::decode(&payload) {
            Ok(req) => handle_request(req, catalog, &mut session, config, counters),
            Err(e) => {
                let code = if is_unknown_opcode(&payload) {
                    ErrorCode::UnknownOpcode
                } else {
                    ErrorCode::Protocol
                };
                // Undecodable frame: the framing itself survived, but
                // trusting any follow-up bytes from a client that
                // mis-encodes requests is how desyncs start — hang up.
                Reply {
                    response: Response::Error {
                        code,
                        message: e.to_string(),
                    },
                    hangup: true,
                }
            }
        };
        send(&mut stream, &reply.response)?;
        if reply.hangup {
            return Ok(());
        }
    }
}

/// Runs the version negotiation; `Ok(false)` = no usable version (or a
/// bad magic), connection to be closed.
fn handshake(stream: &mut TcpStream, shutdown: &AtomicBool, config: &ServerConfig) -> Result<bool> {
    let mut head = [0u8; 5];
    if !read_exact_polled(stream, &mut head, shutdown, config.frame_timeout, false)? {
        return Ok(false);
    }
    if head[..4] != proto::MAGIC {
        return Ok(false);
    }
    let count = head[4] as usize;
    let mut versions = vec![0u8; count * 4];
    if !read_exact_polled(stream, &mut versions, shutdown, config.frame_timeout, true)? {
        return Ok(false);
    }
    let supported = versions
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .any(|v| v == proto::VERSION);
    let chosen: u32 = if supported { proto::VERSION } else { 0 };
    stream.write_all(&proto::MAGIC)?;
    stream.write_all(&chosen.to_le_bytes())?;
    stream.flush()?;
    Ok(supported)
}

fn handle_request(
    req: Request,
    catalog: &Arc<Catalog>,
    session: &mut Session,
    config: &ServerConfig,
    counters: &Arc<EvalCounters>,
) -> Reply {
    match req {
        Request::Ping => Reply::ok(Response::Pong),
        Request::Stats => {
            let plan = catalog.plan_cache_stats();
            let pool = catalog.pool_stats();
            Reply::ok(Response::Stats {
                stats: ServerStats {
                    plan_hits: plan.hits,
                    plan_misses: plan.misses,
                    plan_evictions: plan.evictions,
                    plan_entries: plan.entries as u64,
                    pool_threads: pool.threads as u32,
                    pool_spawned: pool.spawned,
                    pool_steals: pool.steals,
                    morsel_overhead_ns: pool.morsel_overhead_ns,
                    par_steps: counters.par_steps.load(Ordering::Relaxed),
                    morsels: counters.morsels.load(Ordering::Relaxed),
                    pred_par_steps: counters.pred_par_steps.load(Ordering::Relaxed),
                    simd_steps: counters.simd_steps.load(Ordering::Relaxed),
                    multi_probe_steps: counters.multi_probe_steps.load(Ordering::Relaxed),
                    intersect_rows: counters.intersect_rows.load(Ordering::Relaxed),
                    replans: counters.replans.load(Ordering::Relaxed),
                    simd_compiled: mbxq_xpath::simd_compiled(),
                },
            })
        }
        Request::CreateDoc { name, xml } => match catalog.create_doc(&name, &xml) {
            Ok(_) => Reply::ok(Response::Ok),
            Err(e) => txn_error_reply(&e),
        },
        Request::DropDoc { name } => match catalog.drop_doc(&name) {
            Ok(()) => Reply::ok(Response::Ok),
            Err(e) => txn_error_reply(&e),
        },
        Request::ListDocs => Reply::ok(Response::Docs {
            names: catalog.doc_names(),
        }),
        Request::Query(spec) => handle_query(&spec, catalog, session, config, counters),
        Request::XUpdate { doc, script } => handle_xupdate(&doc, &script, catalog),
        Request::Fetch { cursor } => {
            let Some(cur) = session.cursors.get_mut(&cursor) else {
                return Reply::err(ErrorCode::UnknownCursor, format!("no cursor {cursor}"));
            };
            let end = (cur.pos + cur.page).min(cur.rows.len());
            let rows = cur.rows[cur.pos..end].to_vec();
            cur.pos = end;
            let done = cur.pos >= cur.rows.len();
            if done {
                session.cursors.remove(&cursor);
            }
            Reply::ok(Response::Page { done, rows })
        }
        Request::CloseCursor { cursor } => {
            session.cursors.remove(&cursor);
            Reply::ok(Response::Ok)
        }
        Request::Pin { names } => {
            let names = if names.is_empty() {
                catalog.doc_names()
            } else {
                names
            };
            let mut pins = Vec::with_capacity(names.len());
            for name in names {
                let Some(shard) = catalog.shard(&name) else {
                    return Reply::err(ErrorCode::UnknownDocument, format!("no document {name}"));
                };
                let snapshot = shard.snapshot();
                pins.push(Pin {
                    name,
                    shard,
                    snapshot,
                });
            }
            let count = pins.len() as u32;
            session.pins = pins;
            Reply::ok(Response::Pinned { count })
        }
        Request::Unpin => {
            session.pins.clear();
            Reply::ok(Response::Ok)
        }
        Request::Goodbye => Reply {
            response: Response::Ok,
            hangup: true,
        },
    }
}

fn handle_xupdate(doc: &str, script: &str, catalog: &Arc<Catalog>) -> Reply {
    let mods = match mbxq_xupdate::parse_modifications(script) {
        Ok(m) => m,
        Err(e) => return Reply::err(ErrorCode::Query, format!("xupdate parse: {e}")),
    };
    let Some(shard) = catalog.shard(doc) else {
        return Reply::err(ErrorCode::UnknownDocument, format!("no document {doc}"));
    };
    let mut txn = shard.begin();
    let summary = match txn.execute_xupdate(&mods) {
        Ok(s) => s,
        Err(e) => {
            txn.abort();
            return txn_error_reply(&e);
        }
    };
    match txn.commit() {
        Ok(_) => Reply::ok(Response::Summary {
            summary: summary.into(),
        }),
        Err(e) => txn_error_reply(&e),
    }
}

fn handle_query(
    spec: &QuerySpec,
    catalog: &Arc<Catalog>,
    session: &mut Session,
    config: &ServerConfig,
    counters: &Arc<EvalCounters>,
) -> Reply {
    // Queries count into a request-private stats set (the cells are not
    // `Sync`), folded into the server-wide counters afterwards —
    // including on error paths, where partial work still ran.
    let stats = EvalStats::default();
    let reply = handle_query_stats(spec, catalog, session, &stats);
    counters.fold(&stats);
    reply.limit_frame(config)
}

fn handle_query_stats(
    spec: &QuerySpec,
    catalog: &Arc<Catalog>,
    session: &mut Session,
    stats: &EvalStats,
) -> Reply {
    let mut bindings = Bindings::new();
    for (name, value) in &spec.bindings {
        bindings.set(name.clone(), value.clone());
    }
    let opts = EvalOptions::new()
        .bindings(&bindings)
        .axis(spec.axis)
        .value(spec.value)
        .par(spec.par)
        .stats(stats);
    let page = if spec.page_size == 0 {
        DEFAULT_PAGE_ROWS
    } else {
        spec.page_size.min(MAX_PAGE_ROWS)
    } as usize;

    match &spec.target {
        QueryTarget::Doc(name) => {
            // Pinned sessions serve the pinned snapshot (repeatable
            // read); otherwise the newest committed one.
            let (shard, snapshot) = match session.pinned(name) {
                Some(p) => (p.shard.clone(), p.snapshot.clone()),
                None => match catalog.shard(name) {
                    Some(s) => {
                        let snap = s.snapshot();
                        (s, snap)
                    }
                    None => {
                        return Reply::err(
                            ErrorCode::UnknownDocument,
                            format!("no document {name}"),
                        );
                    }
                },
            };
            let value = match shard.query_on(&snapshot, &spec.text, &opts) {
                Ok(v) => v,
                Err(e) => return txn_error_reply(&e),
            };
            match value {
                Value::Nodes(pres) => {
                    let mut rows = Vec::with_capacity(pres.len());
                    for pre in pres {
                        match snapshot.pre_to_node(pre) {
                            Ok(NodeId(id)) => rows.push((0u32, id)),
                            Err(e) => return Reply::err(ErrorCode::Txn, e.to_string()),
                        }
                    }
                    open_cursor(session, vec![name.clone()], rows, page)
                }
                Value::Attrs(pairs) => {
                    // Owner pre ranks → stable node ids before they
                    // leave the snapshot's frame of reference.
                    let mut mapped = Vec::with_capacity(pairs.len());
                    for (owner, qn) in pairs {
                        match snapshot.pre_to_node(owner) {
                            Ok(NodeId(id)) => mapped.push((id, qn)),
                            Err(e) => return Reply::err(ErrorCode::Txn, e.to_string()),
                        }
                    }
                    Reply::ok(Response::Scalar {
                        value: Value::Attrs(mapped),
                    })
                }
                scalar => Reply::ok(Response::Scalar { value: scalar }),
            }
        }
        QueryTarget::All | QueryTarget::Collection(_) => {
            let explicit: Option<&[String]> = match &spec.target {
                QueryTarget::Collection(names) => Some(names),
                _ => None,
            };
            let matches = if session.pins.is_empty() {
                // No pins: the catalog's parallel fan-out, fresh
                // snapshots, opts threaded through every document.
                match explicit {
                    Some(names) => catalog.query_collection_opts(names, &spec.text, &opts),
                    None => catalog.query_all_opts(&spec.text, &opts),
                }
            } else {
                // Pinned: evaluate each pinned snapshot sequentially —
                // repeatable reads trump fan-out parallelism.
                let chosen: Vec<&Pin> = match explicit {
                    Some(names) => {
                        let mut picked = Vec::with_capacity(names.len());
                        for n in names {
                            match session.pinned(n) {
                                Some(p) => picked.push(p),
                                None => {
                                    return Reply::err(
                                        ErrorCode::UnknownDocument,
                                        format!("document {n} is not pinned in this session"),
                                    );
                                }
                            }
                        }
                        picked
                    }
                    None => session.pins.iter().collect(),
                };
                chosen
                    .iter()
                    .map(|p| {
                        Ok(mbxq_txn::DocMatches {
                            doc: p.name.clone(),
                            nodes: p.shard.query_nodes_on(&p.snapshot, &spec.text, &opts)?,
                        })
                    })
                    .collect()
            };
            let matches = match matches {
                Ok(m) => m,
                Err(e) => return txn_error_reply(&e),
            };
            let docs: Vec<String> = matches.iter().map(|m| m.doc.clone()).collect();
            let mut rows = Vec::new();
            for (i, m) in matches.iter().enumerate() {
                rows.extend(m.nodes.iter().map(|&NodeId(id)| (i as u32, id)));
            }
            open_cursor(session, docs, rows, page)
        }
    }
}

impl Reply {
    /// Belt-and-braces: no reply frame may exceed the configured frame
    /// cap (pages are already bounded by [`MAX_PAGE_ROWS`], but a
    /// pathological scalar — a giant string value — could).
    fn limit_frame(self, config: &ServerConfig) -> Reply {
        if self.response.encode().len() > config.max_frame {
            return Reply::err(
                ErrorCode::FrameTooLarge,
                "result exceeds the frame size limit",
            );
        }
        self
    }
}

fn open_cursor(
    session: &mut Session,
    docs: Vec<String>,
    rows: Vec<(u32, u64)>,
    page: usize,
) -> Reply {
    let total = rows.len() as u64;
    let cursor = session.next_cursor;
    session.next_cursor = session.next_cursor.wrapping_add(1);
    session
        .cursors
        .insert(cursor, Cursor { rows, pos: 0, page });
    Reply::ok(Response::Header {
        cursor,
        docs,
        total,
    })
}
