//! Wire encoding: frames, handshake, requests, responses.
//!
//! Every post-handshake message is one **frame**:
//!
//! ```text
//! u32 LE payload length | payload (first byte = opcode)
//! ```
//!
//! Scalars are little-endian; strings and byte blobs are `u32` length +
//! bytes (UTF-8 for strings); lists are `u32` count + elements. The
//! handshake preceding the first frame is
//!
//! ```text
//! client → "MBXQ" | u8 n | n × u32 proposed versions
//! server → "MBXQ" | u32 chosen version   (0 = no overlap, closed)
//! ```
//!
//! Decoding is strict: trailing bytes after a complete message, lengths
//! past the end of the frame, unknown tags — all are protocol errors.
//! The server answers an undecodable frame with [`Response::Error`]
//! (code [`ErrorCode::Protocol`] / [`ErrorCode::UnknownOpcode`]) and
//! closes that one session; the listener and other sessions are
//! unaffected.

use crate::{NetError, Result};
use mbxq_storage::QnId;
use mbxq_xpath::{AxisChoice, ParChoice, Value, ValueChoice};

/// The connection-setup magic. Both handshake directions start with it.
pub const MAGIC: [u8; 4] = *b"MBXQ";

/// The one protocol version this build speaks.
pub const VERSION: u32 = 1;

/// Default cap on a single frame's payload length.
pub const MAX_FRAME_DEFAULT: usize = 64 << 20;

/// Machine-readable error classes of [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Malformed frame or field encoding.
    Protocol = 1,
    /// The request opcode is not part of this protocol version.
    UnknownOpcode = 2,
    /// No document by that name.
    UnknownDocument = 3,
    /// A document by that name already exists.
    DuplicateDocument = 4,
    /// The query failed to parse or evaluate.
    Query = 5,
    /// A transactional/storage failure (lock timeout, validation, IO).
    Txn = 6,
    /// No cursor by that id in this session.
    UnknownCursor = 7,
    /// The frame's length prefix exceeds the server's limit.
    FrameTooLarge = 8,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::UnknownOpcode,
            3 => ErrorCode::UnknownDocument,
            4 => ErrorCode::DuplicateDocument,
            5 => ErrorCode::Query,
            6 => ErrorCode::Txn,
            7 => ErrorCode::UnknownCursor,
            8 => ErrorCode::FrameTooLarge,
            _ => return None,
        })
    }
}

/// What a [`Request::Query`] evaluates against.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryTarget {
    /// One document by name (hash-routed).
    Doc(String),
    /// Every document of the catalog (or every pinned one).
    All,
    /// The named documents in the given order — e.g. a partition group.
    Collection(Vec<String>),
}

/// One query request: target, XPath text, `$name` bindings, strategy
/// overrides, and the cursor page size for node-set results.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// What to evaluate against.
    pub target: QueryTarget,
    /// The XPath text.
    pub text: String,
    /// `$name` bindings, rebuilt into [`mbxq_xpath::Bindings`] server-side.
    pub bindings: Vec<(String, Value)>,
    /// Axis-strategy override.
    pub axis: AxisChoice,
    /// Value-predicate strategy override.
    pub value: ValueChoice,
    /// Parallelism policy.
    pub par: ParChoice,
    /// Rows per cursor page (`0` = server default).
    pub page_size: u32,
}

impl QuerySpec {
    /// A default-strategy spec for `text` against `target`.
    pub fn new(target: QueryTarget, text: impl Into<String>) -> QuerySpec {
        QuerySpec {
            target,
            text: text.into(),
            bindings: Vec::new(),
            axis: AxisChoice::default(),
            value: ValueChoice::default(),
            par: ParChoice::default(),
            page_size: 0,
        }
    }
}

/// The update-volume counters of an XUpdate batch, as reported back to
/// the client (the wire form of [`mbxq_xupdate::ExecutionSummary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateSummary {
    /// Commands executed.
    pub commands: u64,
    /// Tuples deleted.
    pub nodes_removed: u64,
    /// Tuples inserted.
    pub nodes_inserted: u64,
    /// Value nodes replaced in place.
    pub values_updated: u64,
    /// Attributes set.
    pub attrs_set: u64,
    /// Elements renamed.
    pub nodes_renamed: u64,
}

impl From<mbxq_xupdate::ExecutionSummary> for UpdateSummary {
    fn from(s: mbxq_xupdate::ExecutionSummary) -> UpdateSummary {
        UpdateSummary {
            commands: s.commands as u64,
            nodes_removed: s.nodes_removed,
            nodes_inserted: s.nodes_inserted,
            values_updated: s.values_updated,
            attrs_set: s.attrs_set,
            nodes_renamed: s.nodes_renamed,
        }
    }
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Create a document from XML text.
    CreateDoc {
        /// The document name (plain-name rules apply).
        name: String,
        /// The XML text.
        xml: String,
    },
    /// Drop a document.
    DropDoc {
        /// The document name.
        name: String,
    },
    /// List document names in creation order.
    ListDocs,
    /// Evaluate a query; node sets come back as a cursor.
    Query(QuerySpec),
    /// Execute an XUpdate batch as one write transaction.
    XUpdate {
        /// The target document.
        doc: String,
        /// The `<xupdate:modifications>` script.
        script: String,
    },
    /// Page the next rows out of an open cursor.
    Fetch {
        /// The cursor id from [`Response::Header`].
        cursor: u32,
    },
    /// Close a cursor early (closing an already-gone cursor is a no-op).
    CloseCursor {
        /// The cursor id.
        cursor: u32,
    },
    /// Pin snapshots for repeatable reads: the named documents, or every
    /// current document when `names` is empty. Replaces any earlier pin
    /// set.
    Pin {
        /// Documents to pin (empty = all).
        names: Vec<String>,
    },
    /// Drop all pinned snapshots; queries see fresh snapshots again.
    Unpin,
    /// Orderly end of session.
    Goodbye,
    /// Server-wide execution statistics: plan cache, worker pool,
    /// vectorized-kernel and parallel-predicate counters. Answered with
    /// [`Response::Stats`].
    Stats,
}

/// The server-wide execution counters of [`Response::Stats`]: the
/// catalog's aggregated plan cache, the shared query pool, and the
/// cumulative executor decisions (morsel parallelism, predicate
/// fan-out, vectorized chunk-kernel dispatch) across every session
/// since the server started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Plan-cache hits summed over every document.
    pub plan_hits: u64,
    /// Plan-cache compiles (misses) summed over every document.
    pub plan_misses: u64,
    /// Plan-cache evictions summed over every document.
    pub plan_evictions: u64,
    /// Plans currently cached, summed over every document.
    pub plan_entries: u64,
    /// Configured width of the shared query pool.
    pub pool_threads: u32,
    /// Whether the pool's worker threads have been spawned yet.
    pub pool_spawned: bool,
    /// Cumulative cross-queue morsel steals inside the pool.
    pub pool_steals: u64,
    /// The pool's per-morsel dispatch overhead (ns), calibrated or
    /// pinned at spawn; `0` before the pool exists.
    pub morsel_overhead_ns: u64,
    /// Physical operators that ran morsel-parallel.
    pub par_steps: u64,
    /// Morsels executed on the pool by query evaluation.
    pub morsels: u64,
    /// Predicates whose row evaluation fanned out across the pool.
    pub pred_par_steps: u64,
    /// Scan operators dispatched to the vectorized kernel arm.
    pub simd_steps: u64,
    /// Multi-predicate steps executed (posting-list intersection or a
    /// cost-rejected fallback arm).
    pub multi_probe_steps: u64,
    /// Rows produced by posting-list intersections.
    pub intersect_rows: u64,
    /// Multi-predicate strategies recompiled because the recorded
    /// cardinality feedback diverged (or a replan was forced).
    pub replans: u64,
    /// Whether this server binary carries compiled vector instructions
    /// (the `simd` feature on a supported target); when `false` the
    /// Simd arm runs its scalar twin.
    pub simd_compiled: bool,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded and has no payload.
    Ok,
    /// The request failed.
    Error {
        /// The machine-readable error class.
        code: ErrorCode,
        /// The human-readable message.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::ListDocs`].
    Docs {
        /// Document names in creation order.
        names: Vec<String>,
    },
    /// A non-node-set query result. Node ids inside (`Nodes`/`Attrs`
    /// owners) are stable [`mbxq_storage::NodeId`] values, not pre ranks.
    Scalar {
        /// The result value.
        value: Value,
    },
    /// A node-set query result: an opened cursor. Rows follow via
    /// [`Request::Fetch`] as `(doc index, node id)` pairs, doc-major in
    /// `docs` order, document order within each document.
    Header {
        /// The session-scoped cursor id.
        cursor: u32,
        /// The documents contributing rows, in merge order.
        docs: Vec<String>,
        /// Total rows the cursor will yield.
        total: u64,
    },
    /// One page of cursor rows.
    Page {
        /// Whether this was the final page (the cursor is now closed).
        done: bool,
        /// `(doc index, node id)` row pairs.
        rows: Vec<(u32, u64)>,
    },
    /// Answer to [`Request::XUpdate`].
    Summary {
        /// What the batch did.
        summary: UpdateSummary,
    },
    /// Answer to [`Request::Pin`].
    Pinned {
        /// How many snapshots the session now holds.
        count: u32,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The server-wide counters.
        stats: ServerStats,
    },
}

// ---------------------------------------------------------------- encoding

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_names(out: &mut Vec<u8>, names: &[String]) {
    put_u32(out, names.len() as u32);
    for n in names {
        put_str(out, n);
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Str(s) => {
            out.push(0);
            put_str(out, s);
        }
        Value::Number(n) => {
            out.push(1);
            put_u64(out, n.to_bits());
        }
        Value::Boolean(b) => {
            out.push(2);
            out.push(*b as u8);
        }
        Value::Nodes(ns) => {
            out.push(3);
            put_u32(out, ns.len() as u32);
            for &n in ns {
                put_u64(out, n);
            }
        }
        Value::Attrs(ps) => {
            out.push(4);
            put_u32(out, ps.len() as u32);
            for &(owner, qn) in ps {
                put_u64(out, owner);
                put_u32(out, qn.0);
            }
        }
    }
}

/// A strict little-endian reader over one frame's payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn err<T>(&self, what: &str) -> Result<T> {
        Err(NetError::Protocol(format!(
            "{what} at byte {} of a {}-byte frame",
            self.pos,
            self.buf.len()
        )))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self.err("truncated field");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).or_else(|_| self.err("non-UTF-8 string"))
    }

    fn names(&mut self) -> Result<Vec<String>> {
        let n = self.u32()? as usize;
        // Each name costs ≥ 4 bytes on the wire, so an absurd count in
        // a short frame fails here instead of attempting a huge alloc.
        if self.buf.len() - self.pos < n * 4 {
            return self.err("name count exceeds frame");
        }
        (0..n).map(|_| self.str()).collect()
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Str(self.str()?),
            1 => Value::Number(f64::from_bits(self.u64()?)),
            2 => Value::Boolean(self.u8()? != 0),
            3 => {
                let n = self.u32()? as usize;
                if self.buf.len() - self.pos < n * 8 {
                    return self.err("node count exceeds frame");
                }
                Value::Nodes((0..n).map(|_| self.u64()).collect::<Result<_>>()?)
            }
            4 => {
                let n = self.u32()? as usize;
                if self.buf.len() - self.pos < n * 12 {
                    return self.err("attr count exceeds frame");
                }
                Value::Attrs(
                    (0..n)
                        .map(|_| Ok((self.u64()?, QnId(self.u32()?))))
                        .collect::<Result<_>>()?,
                )
            }
            _ => return self.err("unknown value tag"),
        })
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return self.err("trailing bytes");
        }
        Ok(())
    }
}

fn axis_to_u8(a: AxisChoice) -> u8 {
    match a {
        AxisChoice::Auto => 0,
        AxisChoice::ForceStaircase => 1,
        AxisChoice::ForceIndex => 2,
    }
}

fn axis_from_u8(v: u8) -> Option<AxisChoice> {
    Some(match v {
        0 => AxisChoice::Auto,
        1 => AxisChoice::ForceStaircase,
        2 => AxisChoice::ForceIndex,
        _ => return None,
    })
}

fn value_to_u8(v: ValueChoice) -> u8 {
    match v {
        ValueChoice::Auto => 0,
        ValueChoice::ForceScan => 1,
        ValueChoice::ForceProbe => 2,
    }
}

fn value_from_u8(v: u8) -> Option<ValueChoice> {
    Some(match v {
        0 => ValueChoice::Auto,
        1 => ValueChoice::ForceScan,
        2 => ValueChoice::ForceProbe,
        _ => return None,
    })
}

fn par_to_u8(p: ParChoice) -> u8 {
    match p {
        ParChoice::Auto => 0,
        ParChoice::ForceSequential => 1,
        ParChoice::ForceParallel => 2,
    }
}

fn par_from_u8(v: u8) -> Option<ParChoice> {
    Some(match v {
        0 => ParChoice::Auto,
        1 => ParChoice::ForceSequential,
        2 => ParChoice::ForceParallel,
        _ => return None,
    })
}

impl Request {
    /// Serializes this request into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(0x01),
            Request::CreateDoc { name, xml } => {
                out.push(0x02);
                put_str(&mut out, name);
                put_str(&mut out, xml);
            }
            Request::DropDoc { name } => {
                out.push(0x03);
                put_str(&mut out, name);
            }
            Request::ListDocs => out.push(0x04),
            Request::Query(q) => {
                out.push(0x05);
                match &q.target {
                    QueryTarget::Doc(name) => {
                        out.push(0);
                        put_str(&mut out, name);
                    }
                    QueryTarget::All => out.push(1),
                    QueryTarget::Collection(names) => {
                        out.push(2);
                        put_names(&mut out, names);
                    }
                }
                put_str(&mut out, &q.text);
                put_u32(&mut out, q.bindings.len() as u32);
                for (name, value) in &q.bindings {
                    put_str(&mut out, name);
                    put_value(&mut out, value);
                }
                out.push(axis_to_u8(q.axis));
                out.push(value_to_u8(q.value));
                out.push(par_to_u8(q.par));
                put_u32(&mut out, q.page_size);
            }
            Request::XUpdate { doc, script } => {
                out.push(0x06);
                put_str(&mut out, doc);
                put_str(&mut out, script);
            }
            Request::Fetch { cursor } => {
                out.push(0x07);
                put_u32(&mut out, *cursor);
            }
            Request::CloseCursor { cursor } => {
                out.push(0x08);
                put_u32(&mut out, *cursor);
            }
            Request::Pin { names } => {
                out.push(0x09);
                put_names(&mut out, names);
            }
            Request::Unpin => out.push(0x0a),
            Request::Goodbye => out.push(0x0b),
            Request::Stats => out.push(0x0c),
        }
        out
    }

    /// Decodes one frame payload. `Err` carries the reason; the caller
    /// distinguishes unknown opcodes (first byte) for its error code.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let op = r.u8()?;
        let req = match op {
            0x01 => Request::Ping,
            0x02 => Request::CreateDoc {
                name: r.str()?,
                xml: r.str()?,
            },
            0x03 => Request::DropDoc { name: r.str()? },
            0x04 => Request::ListDocs,
            0x05 => {
                let target = match r.u8()? {
                    0 => QueryTarget::Doc(r.str()?),
                    1 => QueryTarget::All,
                    2 => QueryTarget::Collection(r.names()?),
                    _ => return r.err("unknown query target"),
                };
                let text = r.str()?;
                let n = r.u32()? as usize;
                if payload.len() < n * 5 {
                    return r.err("binding count exceeds frame");
                }
                let mut bindings = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?;
                    let value = r.value()?;
                    bindings.push((name, value));
                }
                let axis = axis_from_u8(r.u8()?);
                let value = value_from_u8(r.u8()?);
                let par = par_from_u8(r.u8()?);
                let page_size = r.u32()?;
                let (Some(axis), Some(value), Some(par)) = (axis, value, par) else {
                    return r.err("unknown strategy choice");
                };
                Request::Query(QuerySpec {
                    target,
                    text,
                    bindings,
                    axis,
                    value,
                    par,
                    page_size,
                })
            }
            0x06 => Request::XUpdate {
                doc: r.str()?,
                script: r.str()?,
            },
            0x07 => Request::Fetch { cursor: r.u32()? },
            0x08 => Request::CloseCursor { cursor: r.u32()? },
            0x09 => Request::Pin { names: r.names()? },
            0x0a => Request::Unpin,
            0x0b => Request::Goodbye,
            0x0c => Request::Stats,
            other => {
                return Err(NetError::Protocol(format!("unknown opcode 0x{other:02x}")));
            }
        };
        r.finish()?;
        Ok(req)
    }
}

/// Whether a raw frame payload carries an opcode this protocol version
/// does not know — the server maps this to [`ErrorCode::UnknownOpcode`]
/// instead of the generic [`ErrorCode::Protocol`].
pub fn is_unknown_opcode(payload: &[u8]) -> bool {
    !matches!(payload.first(), Some(0x01..=0x0c))
}

impl Response {
    /// Serializes this response into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => out.push(0x80),
            Response::Error { code, message } => {
                out.push(0x81);
                put_u16(&mut out, *code as u16);
                put_str(&mut out, message);
            }
            Response::Pong => out.push(0x82),
            Response::Docs { names } => {
                out.push(0x83);
                put_names(&mut out, names);
            }
            Response::Scalar { value } => {
                out.push(0x84);
                put_value(&mut out, value);
            }
            Response::Header {
                cursor,
                docs,
                total,
            } => {
                out.push(0x85);
                put_u32(&mut out, *cursor);
                put_names(&mut out, docs);
                put_u64(&mut out, *total);
            }
            Response::Page { done, rows } => {
                out.push(0x86);
                out.push(*done as u8);
                put_u32(&mut out, rows.len() as u32);
                for &(doc, node) in rows {
                    put_u32(&mut out, doc);
                    put_u64(&mut out, node);
                }
            }
            Response::Summary { summary } => {
                out.push(0x87);
                for v in [
                    summary.commands,
                    summary.nodes_removed,
                    summary.nodes_inserted,
                    summary.values_updated,
                    summary.attrs_set,
                    summary.nodes_renamed,
                ] {
                    put_u64(&mut out, v);
                }
            }
            Response::Pinned { count } => {
                out.push(0x88);
                put_u32(&mut out, *count);
            }
            Response::Stats { stats } => {
                out.push(0x89);
                for v in [
                    stats.plan_hits,
                    stats.plan_misses,
                    stats.plan_evictions,
                    stats.plan_entries,
                    stats.pool_steals,
                    stats.morsel_overhead_ns,
                    stats.par_steps,
                    stats.morsels,
                    stats.pred_par_steps,
                    stats.simd_steps,
                    stats.multi_probe_steps,
                    stats.intersect_rows,
                    stats.replans,
                ] {
                    put_u64(&mut out, v);
                }
                put_u32(&mut out, stats.pool_threads);
                out.push(stats.pool_spawned as u8);
                out.push(stats.simd_compiled as u8);
            }
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            0x80 => Response::Ok,
            0x81 => {
                let raw = r.u16()?;
                let Some(code) = ErrorCode::from_u16(raw) else {
                    return r.err("unknown error code");
                };
                Response::Error {
                    code,
                    message: r.str()?,
                }
            }
            0x82 => Response::Pong,
            0x83 => Response::Docs { names: r.names()? },
            0x84 => Response::Scalar { value: r.value()? },
            0x85 => Response::Header {
                cursor: r.u32()?,
                docs: r.names()?,
                total: r.u64()?,
            },
            0x86 => {
                let done = r.u8()? != 0;
                let n = r.u32()? as usize;
                if payload.len() < n * 12 {
                    return r.err("row count exceeds frame");
                }
                let rows = (0..n)
                    .map(|_| Ok((r.u32()?, r.u64()?)))
                    .collect::<Result<_>>()?;
                Response::Page { done, rows }
            }
            0x87 => Response::Summary {
                summary: UpdateSummary {
                    commands: r.u64()?,
                    nodes_removed: r.u64()?,
                    nodes_inserted: r.u64()?,
                    values_updated: r.u64()?,
                    attrs_set: r.u64()?,
                    nodes_renamed: r.u64()?,
                },
            },
            0x88 => Response::Pinned { count: r.u32()? },
            0x89 => Response::Stats {
                stats: ServerStats {
                    plan_hits: r.u64()?,
                    plan_misses: r.u64()?,
                    plan_evictions: r.u64()?,
                    plan_entries: r.u64()?,
                    pool_steals: r.u64()?,
                    morsel_overhead_ns: r.u64()?,
                    par_steps: r.u64()?,
                    morsels: r.u64()?,
                    pred_par_steps: r.u64()?,
                    simd_steps: r.u64()?,
                    multi_probe_steps: r.u64()?,
                    intersect_rows: r.u64()?,
                    replans: r.u64()?,
                    pool_threads: r.u32()?,
                    pool_spawned: r.u8()? != 0,
                    simd_compiled: r.u8()? != 0,
                },
            },
            other => {
                return Err(NetError::Protocol(format!(
                    "unknown response opcode 0x{other:02x}"
                )));
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------- frame IO

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::CreateDoc {
            name: "a doc".into(),
            xml: "<r/>".into(),
        });
        roundtrip_req(Request::DropDoc { name: "d".into() });
        roundtrip_req(Request::ListDocs);
        let mut spec = QuerySpec::new(QueryTarget::Doc("d".into()), "//x[@i = $v]");
        spec.bindings = vec![
            ("v".to_string(), Value::Str("7".into())),
            ("n".to_string(), Value::Number(2.5)),
            ("b".to_string(), Value::Boolean(true)),
            ("ns".to_string(), Value::Nodes(vec![1, 2, 3])),
            ("at".to_string(), Value::Attrs(vec![(9, QnId(4))])),
        ];
        spec.axis = AxisChoice::ForceIndex;
        spec.value = ValueChoice::ForceScan;
        spec.par = ParChoice::ForceSequential;
        spec.page_size = 128;
        roundtrip_req(Request::Query(spec));
        roundtrip_req(Request::Query(QuerySpec::new(QueryTarget::All, "//x")));
        roundtrip_req(Request::Query(QuerySpec::new(
            QueryTarget::Collection(vec!["a".into(), "b".into()]),
            "//x",
        )));
        roundtrip_req(Request::XUpdate {
            doc: "d".into(),
            script: "<xupdate:modifications/>".into(),
        });
        roundtrip_req(Request::Fetch { cursor: 7 });
        roundtrip_req(Request::CloseCursor { cursor: 7 });
        roundtrip_req(Request::Pin { names: vec![] });
        roundtrip_req(Request::Pin {
            names: vec!["a".into()],
        });
        roundtrip_req(Request::Unpin);
        roundtrip_req(Request::Goodbye);
        roundtrip_req(Request::Stats);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Error {
            code: ErrorCode::UnknownDocument,
            message: "no such doc".into(),
        });
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Docs {
            names: vec!["a".into(), "b".into()],
        });
        roundtrip_resp(Response::Scalar {
            value: Value::Number(42.0),
        });
        roundtrip_resp(Response::Header {
            cursor: 3,
            docs: vec!["a".into()],
            total: 100,
        });
        roundtrip_resp(Response::Page {
            done: true,
            rows: vec![(0, 5), (1, 9)],
        });
        roundtrip_resp(Response::Summary {
            summary: UpdateSummary {
                commands: 1,
                nodes_removed: 2,
                nodes_inserted: 3,
                values_updated: 4,
                attrs_set: 5,
                nodes_renamed: 6,
            },
        });
        roundtrip_resp(Response::Pinned { count: 2 });
        roundtrip_resp(Response::Stats {
            stats: ServerStats {
                plan_hits: 10,
                plan_misses: 2,
                plan_evictions: 1,
                plan_entries: 4,
                pool_threads: 8,
                pool_spawned: true,
                pool_steals: 55,
                morsel_overhead_ns: 900,
                par_steps: 7,
                morsels: 64,
                pred_par_steps: 3,
                simd_steps: 12,
                multi_probe_steps: 5,
                intersect_rows: 40,
                replans: 2,
                simd_compiled: cfg!(feature = "simd"),
            },
        });
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        // Truncations of a valid request at every length.
        let full = Request::CreateDoc {
            name: "doc".into(),
            xml: "<r/>".into(),
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Request::decode(&full[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut long = full.clone();
        long.push(0);
        assert!(Request::decode(&long).is_err());
        // Unknown opcode.
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(is_unknown_opcode(&[0x7f]));
        assert!(is_unknown_opcode(&[]));
        assert!(!is_unknown_opcode(&full));
        // Absurd length claims inside a short frame must error, not
        // attempt gigantic allocations.
        let mut huge = vec![0x09]; // Pin
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&huge).is_err());
    }
}
