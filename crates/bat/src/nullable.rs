//! Void-headed BATs whose tail admits NULL values.

use crate::{Oid, Result, VoidBat};

/// A [`VoidBat`] whose tail values may be NULL, stored as a dense value
/// vector plus a validity bitmap (one bit per tuple).
///
/// Two columns in the updateable schema need NULLs (§3, Figure 4/6):
///
/// * `level` — `NULL` marks an **unused tuple** inside a logical page;
/// * `node→pos` — `NULL` marks a node id whose node was deleted.
///
/// A bitmap keeps the value vector dense so positional access stays a
/// simple array index (plus one bit probe), preserving the kernel's O(1)
/// lookup property.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NullableBat<T> {
    values: VoidBat<T>,
    /// One bit per tuple; set = valid (non-NULL).
    valid: Vec<u64>,
}

impl<T: Copy + Default> NullableBat<T> {
    /// Creates an empty nullable BAT with head starting at `seqbase`.
    pub fn new(seqbase: Oid) -> Self {
        NullableBat {
            values: VoidBat::new(seqbase),
            valid: Vec::new(),
        }
    }

    /// Creates a nullable BAT from a vector of options.
    pub fn from_options(seqbase: Oid, opts: Vec<Option<T>>) -> Self {
        let mut b = NullableBat::new(seqbase);
        for o in opts {
            b.append(o);
        }
        b
    }

    /// Number of tuples (including NULL ones).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the BAT holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// First oid of the head sequence.
    pub fn seqbase(&self) -> Oid {
        self.values.seqbase()
    }

    /// One-past-the-last head oid.
    pub fn hseqend(&self) -> Oid {
        self.values.hseqend()
    }

    /// Appends a (possibly NULL) tuple, returning its head oid.
    pub fn append(&mut self, value: Option<T>) -> Oid {
        let idx = self.values.len();
        let oid = match value {
            Some(v) => self.values.append(v),
            None => self.values.append(T::default()),
        };
        if idx / 64 >= self.valid.len() {
            self.valid.push(0);
        }
        if value.is_some() {
            self.valid[idx / 64] |= 1 << (idx % 64);
        }
        oid
    }

    /// Positional lookup. `Ok(None)` means the tuple exists but is NULL.
    #[inline]
    pub fn get(&self, oid: Oid) -> Result<Option<T>> {
        let idx = self.values.index_of(oid)?;
        if self.is_valid_idx(idx) {
            Ok(Some(self.values.tail()[idx]))
        } else {
            Ok(None)
        }
    }

    /// Sets the tuple at `oid` to a new (possibly NULL) value.
    pub fn set(&mut self, oid: Oid, value: Option<T>) -> Result<()> {
        let idx = self.values.index_of(oid)?;
        match value {
            Some(v) => {
                self.values.tail_mut()[idx] = v;
                self.valid[idx / 64] |= 1 << (idx % 64);
            }
            None => {
                self.values.tail_mut()[idx] = T::default();
                self.valid[idx / 64] &= !(1 << (idx % 64));
            }
        }
        Ok(())
    }

    /// Whether the tuple at `oid` is non-NULL.
    pub fn is_valid(&self, oid: Oid) -> Result<bool> {
        Ok(self.is_valid_idx(self.values.index_of(oid)?))
    }

    #[inline]
    fn is_valid_idx(&self, idx: usize) -> bool {
        (self.valid[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Iterates `(oid, Option<value>)` in head order.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Option<T>)> + '_ {
        (0..self.len()).map(move |idx| {
            let oid = self.seqbase() + idx as Oid;
            let v = if self.is_valid_idx(idx) {
                Some(self.values.tail()[idx])
            } else {
                None
            };
            (oid, v)
        })
    }

    /// Scans for the first NULL tuple in head range `lo..hi`, returning its
    /// oid. The paper uses this to recycle node numbers inside a logical
    /// page ("scanning for NULL pos values", §3.1).
    pub fn find_null_in(&self, lo: Oid, hi: Oid) -> Option<Oid> {
        let lo = lo.max(self.seqbase());
        let hi = hi.min(self.hseqend());
        (lo..hi).find(|&oid| {
            let idx = (oid - self.seqbase()) as usize;
            !self.is_valid_idx(idx)
        })
    }

    /// Number of NULL tuples.
    pub fn null_count(&self) -> usize {
        let mut nulls = self.len();
        for (i, word) in self.valid.iter().enumerate() {
            let bits = if (i + 1) * 64 <= self.len() {
                word.count_ones() as usize
            } else {
                (word & ((1u64 << (self.len() % 64)) - 1)).count_ones() as usize
            };
            nulls -= bits;
        }
        nulls
    }

    /// Truncates to `len` tuples (transaction abort path).
    pub fn truncate(&mut self, len: usize) {
        self.values.truncate(len);
        let words = len.div_ceil(64);
        self.valid.truncate(words);
        if !len.is_multiple_of(64) {
            if let Some(last) = self.valid.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_get_round_trip() {
        let mut b = NullableBat::new(0);
        b.append(Some(5u32));
        b.append(None);
        b.append(Some(7));
        assert_eq!(b.get(0), Ok(Some(5)));
        assert_eq!(b.get(1), Ok(None));
        assert_eq!(b.get(2), Ok(Some(7)));
        assert!(b.get(3).is_err());
    }

    #[test]
    fn set_toggles_nullness() {
        let mut b = NullableBat::from_options(0, vec![Some(1u8), None]);
        b.set(0, None).unwrap();
        b.set(1, Some(9)).unwrap();
        assert_eq!(b.get(0), Ok(None));
        assert_eq!(b.get(1), Ok(Some(9)));
    }

    #[test]
    fn bitmap_spans_word_boundaries() {
        let mut b = NullableBat::new(0);
        for i in 0..200u32 {
            b.append(if i % 3 == 0 { None } else { Some(i) });
        }
        for i in 0..200u64 {
            let expect = if i % 3 == 0 { None } else { Some(i as u32) };
            assert_eq!(b.get(i).unwrap(), expect, "at {i}");
        }
        assert_eq!(b.null_count(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn find_null_in_scans_range() {
        let b = NullableBat::from_options(0, vec![Some(1), Some(2), None, Some(3), None]);
        assert_eq!(b.find_null_in(0, 5), Some(2));
        assert_eq!(b.find_null_in(3, 5), Some(4));
        assert_eq!(b.find_null_in(0, 2), None);
        assert_eq!(b.find_null_in(10, 20), None);
    }

    #[test]
    fn truncate_clears_stale_validity_bits() {
        let mut b = NullableBat::new(0);
        for i in 0..10u32 {
            b.append(Some(i));
        }
        b.truncate(3);
        assert_eq!(b.len(), 3);
        // Re-appending must start with clean bits.
        b.append(None);
        assert_eq!(b.get(3), Ok(None));
        assert_eq!(b.null_count(), 1);
    }

    #[test]
    fn iter_reports_options() {
        let b = NullableBat::from_options(5, vec![Some('a'), None]);
        let v: Vec<_> = b.iter().collect();
        assert_eq!(v, vec![(5, Some('a')), (6, None)]);
    }
}
