//! Logical-page order indirection (the paper's `pageOffset` table).
//!
//! The updateable schema stores tuples in *logical pages*. New pages are
//! only ever **appended** to the physical table, but a separate table
//! records each page's *logical* position, so an overflow page appended at
//! the physical end can appear "halfway" in the `pre/size/level` view
//! (§3). In MonetDB this view is realized by mapping the table's virtual
//! memory pages in logical order; here the same indirection is an explicit
//! in-memory permutation, exercised on exactly the same operations:
//!
//! * `pre → pos` when the query engine dereferences a view position, and
//! * `pos → pre` ("swizzling", §3.1) when a node id is translated back to
//!   a pre rank: `pre = pageOffset[pos >> S] << S | (pos & (2^S - 1))`.

use crate::{BatError, Result};

/// Identifier of a *physical* page (its index in physical append order).
pub type PageId = usize;

/// A permutation between physical pages and logical page order.
///
/// Maintains both directions so that `pre → pos` (view dereference) and
/// `pos → pre` (node swizzle) are each a single array lookup plus
/// shift/mask arithmetic, exactly as the paper describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMap {
    /// Tuples per logical page; a power of two so the swizzle is shift/mask.
    page_size: usize,
    shift: u32,
    /// logical page index → physical page id.
    logical: Vec<PageId>,
    /// physical page id → logical page index (the `pageOffset` table).
    offset: Vec<usize>,
}

impl PageMap {
    /// Creates an empty map for pages of `page_size` tuples.
    ///
    /// `page_size` must be a power of two (the paper sets it to the virtual
    /// memory-mapping granularity, 65536; benchmarks here use smaller
    /// powers of two so scaled documents still span many pages).
    ///
    /// # Panics
    /// Panics if `page_size` is zero or not a power of two — this is a
    /// configuration error, not a data error.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "logical page size must be a power of two, got {page_size}"
        );
        PageMap {
            page_size,
            shift: page_size.trailing_zeros(),
            logical: Vec::new(),
            offset: Vec::new(),
        }
    }

    /// Tuples per logical page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages (physical == logical; the permutation is total).
    pub fn num_pages(&self) -> usize {
        self.logical.len()
    }

    /// Total tuple capacity covered by the map.
    pub fn capacity(&self) -> usize {
        self.num_pages() * self.page_size
    }

    /// Appends a fresh physical page at the **end** of the logical order
    /// (initial shredding path). Returns its physical page id.
    pub fn append_page(&mut self) -> PageId {
        let phys = self.offset.len();
        self.offset.push(self.logical.len());
        self.logical.push(phys);
        phys
    }

    /// Appends a fresh physical page and splices it into the logical order
    /// at logical index `at` (case 2b of Figure 7: a page overflow insert).
    ///
    /// The physical table only grows at the end; the logical index of every
    /// page at or after `at` is incremented — this is the "increment the
    /// offset of all pages after the insert point" step and its cost is
    /// O(#pages), *not* O(#tuples).
    ///
    /// Returns the new page's physical id.
    pub fn insert_page_at(&mut self, at: usize) -> Result<PageId> {
        if at > self.logical.len() {
            return Err(BatError::BadPage {
                page: at,
                pages: self.logical.len(),
            });
        }
        let phys = self.offset.len();
        self.logical.insert(at, phys);
        // Rebuild offsets for the shifted suffix.
        self.offset.push(at);
        for (lidx, &p) in self.logical.iter().enumerate().skip(at) {
            self.offset[p] = lidx;
        }
        Ok(phys)
    }

    /// Physical page id of the page at logical index `lp`.
    #[inline]
    pub fn logical_to_physical(&self, lp: usize) -> Result<PageId> {
        self.logical.get(lp).copied().ok_or(BatError::BadPage {
            page: lp,
            pages: self.logical.len(),
        })
    }

    /// Logical index of physical page `pp` (a `pageOffset` lookup).
    #[inline]
    pub fn physical_to_logical(&self, pp: PageId) -> Result<usize> {
        self.offset.get(pp).copied().ok_or(BatError::BadPage {
            page: pp,
            pages: self.offset.len(),
        })
    }

    /// Translates a view position (`pre`-side) to a physical position
    /// (`pos`-side): one lookup + shift/mask.
    #[inline]
    pub fn pre_to_pos(&self, pre: u64) -> Result<u64> {
        let lp = (pre >> self.shift) as usize;
        let phys = self.logical_to_physical(lp)?;
        Ok(((phys as u64) << self.shift) | (pre & (self.page_size as u64 - 1)))
    }

    /// Swizzles a physical position to a view position:
    /// `pre = pageOffset[pos >> S] << S | (pos & (2^S - 1))` (§3.1).
    #[inline]
    pub fn pos_to_pre(&self, pos: u64) -> Result<u64> {
        let pp = (pos >> self.shift) as usize;
        let lp = self.physical_to_logical(pp)?;
        Ok(((lp as u64) << self.shift) | (pos & (self.page_size as u64 - 1)))
    }

    /// Iterates physical page ids in logical order.
    pub fn pages_in_logical_order(&self) -> impl Iterator<Item = PageId> + '_ {
        self.logical.iter().copied()
    }

    /// Checks internal consistency: the two directions must be inverse
    /// permutations. Used by the storage invariant checker and tests.
    pub fn check_consistency(&self) -> bool {
        self.logical.len() == self.offset.len()
            && self
                .logical
                .iter()
                .enumerate()
                .all(|(lidx, &p)| self.offset.get(p) == Some(&lidx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = PageMap::new(100);
    }

    #[test]
    fn append_keeps_identity_order() {
        let mut m = PageMap::new(8);
        m.append_page();
        m.append_page();
        m.append_page();
        assert_eq!(m.num_pages(), 3);
        for i in 0..3 {
            assert_eq!(m.logical_to_physical(i).unwrap(), i);
            assert_eq!(m.physical_to_logical(i).unwrap(), i);
        }
        // Identity permutation: pre == pos.
        for p in 0..24 {
            assert_eq!(m.pre_to_pos(p).unwrap(), p);
            assert_eq!(m.pos_to_pre(p).unwrap(), p);
        }
    }

    #[test]
    fn splice_makes_appended_page_appear_midway() {
        let mut m = PageMap::new(4);
        m.append_page(); // phys 0, logical 0
        m.append_page(); // phys 1, logical 1
        let new = m.insert_page_at(1).unwrap(); // phys 2 spliced at logical 1
        assert_eq!(new, 2);
        assert_eq!(m.logical_to_physical(0).unwrap(), 0);
        assert_eq!(m.logical_to_physical(1).unwrap(), 2);
        assert_eq!(m.logical_to_physical(2).unwrap(), 1);
        assert!(m.check_consistency());
        // pre 4..8 now lives in physical page 2 → pos 8..12.
        assert_eq!(m.pre_to_pos(4).unwrap(), 8);
        assert_eq!(m.pre_to_pos(7).unwrap(), 11);
        // and the old physical page 1 shifted to pre 8..12.
        assert_eq!(m.pos_to_pre(4).unwrap(), 8);
        assert_eq!(m.pos_to_pre(8).unwrap(), 4);
    }

    #[test]
    fn splice_at_bounds() {
        let mut m = PageMap::new(4);
        m.append_page();
        assert!(m.insert_page_at(2).is_err());
        m.insert_page_at(0).unwrap(); // prepend
        assert_eq!(m.logical_to_physical(0).unwrap(), 1);
        assert_eq!(m.logical_to_physical(1).unwrap(), 0);
        m.insert_page_at(2).unwrap(); // append via splice
        assert_eq!(m.logical_to_physical(2).unwrap(), 2);
        assert!(m.check_consistency());
    }

    #[test]
    fn swizzle_round_trips_after_many_splices() {
        let mut m = PageMap::new(16);
        for _ in 0..4 {
            m.append_page();
        }
        m.insert_page_at(2).unwrap();
        m.insert_page_at(0).unwrap();
        m.insert_page_at(5).unwrap();
        assert!(m.check_consistency());
        for pre in 0..(m.capacity() as u64) {
            let pos = m.pre_to_pos(pre).unwrap();
            assert_eq!(m.pos_to_pre(pos).unwrap(), pre);
        }
    }

    /// Any sequence of appends and splices keeps the permutation
    /// consistent and the swizzle bijective. Randomized over an inline
    /// SplitMix64 stream — `mbxq-bat` sits at the bottom of the crate
    /// graph, so it cannot borrow the shared generator from
    /// `mbxq-xmark::rng` without a dev-dependency cycle; seed reported
    /// on failure.
    #[test]
    fn random_splices_keep_bijection() {
        for seed in 0..64u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(11);
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) as usize
            };
            let n_ops = 1 + next() % 23;
            let mut m = PageMap::new(8);
            for _ in 0..n_ops {
                let op = next() % 16;
                if op == 0 || m.num_pages() == 0 {
                    m.append_page();
                } else {
                    let at = op % (m.num_pages() + 1);
                    m.insert_page_at(at).unwrap();
                }
            }
            assert!(m.check_consistency(), "seed {seed}");
            let mut seen = std::collections::HashSet::new();
            for pre in 0..m.capacity() as u64 {
                let pos = m.pre_to_pos(pre).unwrap();
                assert!(seen.insert(pos), "seed {seed}: pos {pos} duplicated");
                assert_eq!(m.pos_to_pre(pos).unwrap(), pre, "seed {seed}");
            }
        }
    }

    #[test]
    fn out_of_range_positions_error() {
        let mut m = PageMap::new(4);
        m.append_page();
        assert!(m.pre_to_pos(4).is_err());
        assert!(m.pos_to_pre(4).is_err());
    }
}
