//! Page-granular copy-on-write overlays.
//!
//! MonetDB isolates a write transaction by giving it "a temporary view
//! backed by a copy-on-write memory-map on the base table" (§3.2): all
//! pages start out shared with the base table, and the OS transparently
//! replaces each page the transaction writes with a private copy, so the
//! base table is never altered before commit. [`CowPages`] is the explicit
//! in-memory equivalent: reads fall through to the base slice unless the
//! containing page has been privatized; the first write to a page copies
//! it.

use std::collections::BTreeMap;

/// A copy-on-write page overlay over a borrowed base column.
///
/// The overlay owns only the pages that were written; everything else
/// reads through to the base. `BTreeMap` keeps the touched-page set
/// ordered, which makes commit application deterministic.
#[derive(Debug, Clone)]
pub struct CowPages<T> {
    page_size: usize,
    overlay: BTreeMap<usize, Vec<T>>,
}

impl<T: Copy> CowPages<T> {
    /// Creates an empty overlay for pages of `page_size` values.
    ///
    /// # Panics
    /// Panics if `page_size` is zero or not a power of two.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "copy-on-write page size must be a power of two, got {page_size}"
        );
        CowPages {
            page_size,
            overlay: BTreeMap::new(),
        }
    }

    /// Number of pages that have been privatized.
    pub fn pages_touched(&self) -> usize {
        self.overlay.len()
    }

    /// Whether any page has been written.
    pub fn is_clean(&self) -> bool {
        self.overlay.is_empty()
    }

    /// Reads index `i`, preferring the private copy of its page.
    ///
    /// Returns `None` if `i` is outside `base` (and no overlay page covers
    /// it) — the caller decides whether that is an error.
    pub fn get(&self, base: &[T], i: usize) -> Option<T> {
        let page = i / self.page_size;
        if let Some(p) = self.overlay.get(&page) {
            return p.get(i % self.page_size).copied();
        }
        base.get(i).copied()
    }

    /// Writes index `i`, privatizing its page on first touch.
    ///
    /// The page is copied from `base`; indexes past the end of `base` on
    /// the page are filled with `fill` (new pages appended by the
    /// transaction start out as padding, like the NULL-padded appends of
    /// Figure 4).
    pub fn set(&mut self, base: &[T], i: usize, value: T, fill: T) {
        let page = i / self.page_size;
        let ps = self.page_size;
        let p = self.overlay.entry(page).or_insert_with(|| {
            let start = (page * ps).min(base.len());
            let mut v = Vec::with_capacity(ps);
            let avail = base.len().saturating_sub(start).min(ps);
            v.extend_from_slice(&base[start..start + avail]);
            v.resize(ps, fill);
            v
        });
        p[i % self.page_size] = value;
    }

    /// Carries all private pages through into `base` (commit path),
    /// growing `base` with `fill` padding if an overlay page lies past its
    /// current end.
    pub fn apply_to(&self, base: &mut Vec<T>, fill: T) {
        for (&page, data) in &self.overlay {
            let start = page * self.page_size;
            let end = start + self.page_size;
            if base.len() < end {
                base.resize(end, fill);
            }
            base[start..end].copy_from_slice(data);
        }
    }

    /// Iterates the privatized page indexes in ascending order.
    pub fn touched_pages(&self) -> impl Iterator<Item = usize> + '_ {
        self.overlay.keys().copied()
    }

    /// Discards all private pages (abort path).
    pub fn clear(&mut self) {
        self.overlay.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fall_through_until_written() {
        let base = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let mut cow = CowPages::new(4);
        assert_eq!(cow.get(&base, 5), Some(6));
        cow.set(&base, 5, 60, 0);
        assert_eq!(cow.get(&base, 5), Some(60));
        // same page, unwritten index still sees base data via the copy
        assert_eq!(cow.get(&base, 4), Some(5));
        // other page untouched
        assert_eq!(cow.get(&base, 1), Some(2));
        assert_eq!(cow.pages_touched(), 1);
    }

    #[test]
    fn base_is_never_altered_before_apply() {
        let base = vec![1u32, 2, 3, 4];
        let mut cow = CowPages::new(4);
        cow.set(&base, 0, 99, 0);
        assert_eq!(base, vec![1, 2, 3, 4]);
    }

    #[test]
    fn apply_carries_pages_through() {
        let mut base = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let mut cow = CowPages::new(4);
        cow.set(&base, 2, 30, 0);
        cow.set(&base, 7, 80, 0);
        cow.apply_to(&mut base, 0);
        assert_eq!(base, vec![1, 2, 30, 4, 5, 6, 7, 80]);
    }

    #[test]
    fn writes_past_end_extend_with_fill() {
        let mut base = vec![1u32, 2];
        let mut cow = CowPages::new(4);
        cow.set(&base, 6, 70, 9);
        assert_eq!(cow.get(&base, 6), Some(70));
        assert_eq!(cow.get(&base, 4), Some(9)); // padding on the new page
        assert_eq!(cow.get(&base, 3), None); // page 0 untouched, base too short
        cow.apply_to(&mut base, 9);
        assert_eq!(base, vec![1, 2, 9, 9, 9, 9, 70, 9]);
    }

    #[test]
    fn partial_last_page_is_padded_on_copy() {
        let base = vec![1u32, 2, 3, 4, 5]; // page 1 holds only one value
        let mut cow = CowPages::new(4);
        cow.set(&base, 5, 50, 0);
        assert_eq!(cow.get(&base, 4), Some(5));
        assert_eq!(cow.get(&base, 6), Some(0)); // fill
        assert_eq!(cow.get(&base, 5), Some(50));
    }

    #[test]
    fn clear_discards_private_pages() {
        let base = vec![1u32, 2, 3, 4];
        let mut cow = CowPages::new(4);
        cow.set(&base, 0, 99, 0);
        cow.clear();
        assert!(cow.is_clean());
        assert_eq!(cow.get(&base, 0), Some(1));
    }
}
