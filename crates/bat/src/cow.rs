//! Page-granular copy-on-write columns.
//!
//! MonetDB isolates a write transaction by giving it "a temporary view
//! backed by a copy-on-write memory-map on the base table" (§3.2): all
//! pages start out shared with the base table, and the OS transparently
//! replaces each page the transaction writes with a private copy, so the
//! base table is never altered before commit. [`CowVec`] is the explicit
//! in-memory equivalent: a column stored as a vector of
//! reference-counted pages. Cloning the column clones only the page
//! *pointers* (O(#pages) refcount bumps, no tuple data); the first write
//! to a page through a given clone privatizes just that page
//! ([`Arc::make_mut`]). Two clones therefore share every page neither of
//! them has written — exactly the structural sharing that makes a
//! transaction commit O(touched pages) instead of O(document).
//!
//! [`CowNullable`] layers a validity bitmap over a [`CowVec`], giving the
//! `node→pos` map the same sharing discipline.

use crate::{BatError, Oid, Result};
use std::ops::{Index, IndexMut};
use std::sync::Arc;

/// A column of `T` values stored as shared, individually copy-on-write
/// pages.
///
/// Every page except the last holds exactly `page_size` values; the last
/// page may be shorter, so `push` is supported for append-mostly columns
/// (like the attribute table). Reads go through [`Index`]; writes go
/// through [`IndexMut`], which privatizes the containing page on first
/// touch if it is shared with another clone.
#[derive(Debug, Clone)]
pub struct CowVec<T> {
    page_size: usize,
    shift: u32,
    mask: usize,
    len: usize,
    pages: Vec<Arc<Vec<T>>>,
}

impl<T: Clone> CowVec<T> {
    /// Creates an empty column with pages of `page_size` values.
    ///
    /// # Panics
    /// Panics if `page_size` is zero or not a power of two (page
    /// addressing is shift/mask, like the pre/pos swizzle).
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "copy-on-write page size must be a power of two, got {page_size}"
        );
        CowVec {
            page_size,
            shift: page_size.trailing_zeros(),
            mask: page_size - 1,
            len: 0,
            pages: Vec::new(),
        }
    }

    /// Creates a column of `len` copies of `fill`.
    pub fn filled(page_size: usize, len: usize, fill: T) -> Self {
        let mut v = CowVec::new(page_size);
        v.resize(len, fill);
        v
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The page size the column was created with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages currently backing the column.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads index `i`, or `None` past the end.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        Some(&self.pages[i >> self.shift][i & self.mask])
    }

    /// The longest contiguous slice starting at index `i` and ending at
    /// or before `end` — at most one page, since pages are independently
    /// allocated. Batch kernels walk a column as a handful of slice
    /// loops instead of per-index page arithmetic; the returned slice is
    /// never empty for `i < min(end, len)`.
    #[inline]
    pub fn run_at(&self, i: usize, end: usize) -> &[T] {
        let end = end.min(self.len);
        if i >= end {
            return &[];
        }
        let page = &self.pages[i >> self.shift];
        let off = i & self.mask;
        let take = (end - i).min(page.len() - off);
        &page[off..off + take]
    }

    /// Appends one value, growing the (possibly short) last page.
    pub fn push(&mut self, value: T) {
        let slot = self.len & self.mask;
        if slot == 0 {
            let mut page = Vec::with_capacity(self.page_size);
            page.push(value);
            self.pages.push(Arc::new(page));
        } else {
            Arc::make_mut(self.pages.last_mut().expect("partial page exists")).push(value);
        }
        self.len += 1;
    }

    /// Resizes to `new_len` values, filling new slots with `fill`.
    ///
    /// Growth touches only the (partial) last page plus freshly created
    /// pages; fully shared interior pages stay shared. Shrinking drops
    /// whole pages and truncates the new last page.
    pub fn resize(&mut self, new_len: usize, fill: T) {
        if new_len >= self.len {
            // Top up the short last page first.
            while self.len < new_len && self.len & self.mask != 0 {
                Arc::make_mut(self.pages.last_mut().expect("partial page exists"))
                    .push(fill.clone());
                self.len += 1;
            }
            while self.len < new_len {
                let count = (new_len - self.len).min(self.page_size);
                self.pages.push(Arc::new(vec![fill.clone(); count]));
                self.len += count;
            }
        } else {
            let keep_pages = new_len.div_ceil(self.page_size);
            self.pages.truncate(keep_pages);
            let last_len = new_len - (keep_pages.saturating_sub(1)) * self.page_size;
            if let Some(last) = self.pages.last_mut() {
                if last.len() > last_len {
                    Arc::make_mut(last).truncate(last_len);
                }
            }
            self.len = new_len;
        }
    }

    /// Iterates the values in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.pages.iter().flat_map(|p| p.iter())
    }

    /// Number of pages physically shared (same allocation) with `other`.
    ///
    /// The commit-cost benchmark and the MVCC tests use this to verify
    /// that publishing a new version kept everything but the touched
    /// pages shared with the previous version.
    pub fn shared_pages_with(&self, other: &CowVec<T>) -> usize {
        self.pages
            .iter()
            .zip(other.pages.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// A clone with every page privately copied — the "clone the world"
    /// baseline the copy-on-write layout replaces. Benchmarks only.
    pub fn deep_clone(&self) -> Self {
        CowVec {
            page_size: self.page_size,
            shift: self.shift,
            mask: self.mask,
            len: self.len,
            pages: self
                .pages
                .iter()
                .map(|p| Arc::new(p.as_ref().clone()))
                .collect(),
        }
    }
}

impl<T: Clone> Index<usize> for CowVec<T> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &self.pages[i >> self.shift][i & self.mask]
    }
}

impl<T: Clone> IndexMut<usize> for CowVec<T> {
    /// Privatizes the containing page on first write through this clone.
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &mut Arc::make_mut(&mut self.pages[i >> self.shift])[i & self.mask]
    }
}

/// A nullable column over shared copy-on-write pages: a dense value
/// [`CowVec`] plus a validity bitmap (one bit per tuple), the COW
/// equivalent of [`crate::NullableBat`].
///
/// Backs the `node→pos` map of the paged schema, whose head is the dense
/// node-id sequence starting at 0 and whose NULL entries mark deleted
/// nodes.
#[derive(Debug, Clone)]
pub struct CowNullable<T> {
    values: CowVec<T>,
    /// One bit per tuple; set = valid (non-NULL).
    valid: CowVec<u64>,
}

impl<T: Copy + Default> CowNullable<T> {
    /// Creates an empty nullable column with value pages of `page_size`.
    pub fn new(page_size: usize) -> Self {
        CowNullable {
            values: CowVec::new(page_size),
            valid: CowVec::new(page_size),
        }
    }

    /// Number of tuples (including NULL ones).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// One-past-the-last head oid (the head sequence starts at 0).
    pub fn hseqend(&self) -> Oid {
        self.values.len() as Oid
    }

    /// Appends a (possibly NULL) tuple, returning its head oid.
    pub fn append(&mut self, value: Option<T>) -> Oid {
        let idx = self.values.len();
        self.values.push(value.unwrap_or_default());
        if idx / 64 >= self.valid.len() {
            self.valid.push(0);
        }
        if value.is_some() {
            self.valid[idx / 64] |= 1 << (idx % 64);
        }
        idx as Oid
    }

    /// Positional lookup. `Ok(None)` means the tuple exists but is NULL.
    #[inline]
    pub fn get(&self, oid: Oid) -> Result<Option<T>> {
        let idx = self.index_of(oid)?;
        if self.is_valid_idx(idx) {
            Ok(Some(self.values[idx]))
        } else {
            Ok(None)
        }
    }

    /// Sets the tuple at `oid` to a new (possibly NULL) value.
    pub fn set(&mut self, oid: Oid, value: Option<T>) -> Result<()> {
        let idx = self.index_of(oid)?;
        match value {
            Some(v) => {
                self.values[idx] = v;
                self.valid[idx / 64] |= 1 << (idx % 64);
            }
            None => {
                // Only the bitmap bit is cleared: reads check validity
                // before consulting the value, so leaving the stale
                // value in place keeps the (shared) value page untouched
                // — a NULLing delete privatizes one bitmap page, not a
                // full value page.
                self.valid[idx / 64] &= !(1 << (idx % 64));
            }
        }
        Ok(())
    }

    /// Iterates `(oid, Option<value>)` in head order.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Option<T>)> + '_ {
        (0..self.len()).map(move |idx| {
            let v = if self.is_valid_idx(idx) {
                Some(self.values[idx])
            } else {
                None
            };
            (idx as Oid, v)
        })
    }

    /// Value pages physically shared with `other` (bitmap pages not
    /// counted; they follow the same sharing discipline).
    pub fn shared_pages_with(&self, other: &CowNullable<T>) -> usize {
        self.values.shared_pages_with(&other.values)
    }

    /// Number of value pages backing the column.
    pub fn num_pages(&self) -> usize {
        self.values.num_pages()
    }

    /// A clone with every page privately copied (benchmark baseline).
    pub fn deep_clone(&self) -> Self {
        CowNullable {
            values: self.values.deep_clone(),
            valid: self.valid.deep_clone(),
        }
    }

    #[inline]
    fn index_of(&self, oid: Oid) -> Result<usize> {
        let idx = oid as usize;
        if idx < self.values.len() {
            Ok(idx)
        } else {
            Err(BatError::OutOfRange {
                oid,
                seqbase: 0,
                count: self.values.len(),
            })
        }
    }

    #[inline]
    fn is_valid_idx(&self, idx: usize) -> bool {
        (self.valid[idx / 64] >> (idx % 64)) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_and_writes_round_trip() {
        let mut v = CowVec::filled(4, 10, 0u32);
        for i in 0..10 {
            v[i] = i as u32 * 10;
        }
        for i in 0..10 {
            assert_eq!(v[i], i as u32 * 10);
        }
        assert_eq!(v.get(10), None);
        assert_eq!(v.num_pages(), 3);
    }

    #[test]
    fn clones_share_pages_until_written() {
        let mut a = CowVec::filled(4, 12, 1u64);
        let b = a.clone();
        assert_eq!(a.shared_pages_with(&b), 3);
        a[5] = 99; // page 1 privatized
        assert_eq!(a.shared_pages_with(&b), 2);
        assert_eq!(b[5], 1, "the clone never sees the write");
        assert_eq!(a[5], 99);
        // Unwritten neighbors on the privatized page were copied over.
        assert_eq!(a[4], 1);
    }

    #[test]
    fn writing_the_same_page_twice_privatizes_once() {
        let mut a = CowVec::filled(8, 16, 0u8);
        let b = a.clone();
        a[0] = 1;
        a[1] = 2;
        a[7] = 3;
        assert_eq!(a.shared_pages_with(&b), 1);
    }

    #[test]
    fn push_and_partial_last_page() {
        let mut v: CowVec<u16> = CowVec::new(4);
        for i in 0..6 {
            v.push(i);
        }
        assert_eq!(v.len(), 6);
        assert_eq!(v.num_pages(), 2);
        assert_eq!(v[5], 5);
        let w = v.clone();
        v.push(6); // grows the shared partial page: must privatize it
        assert_eq!(w.len(), 6);
        assert_eq!(v[6], 6);
        assert_eq!(v.shared_pages_with(&w), 1);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut v = CowVec::filled(4, 3, 7u32);
        v.resize(10, 9);
        assert_eq!(v.len(), 10);
        assert_eq!(v[2], 7);
        assert_eq!(v[3], 9);
        assert_eq!(v[9], 9);
        v.resize(2, 0);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(2), None);
        // Regrowing refills with the new fill value.
        v.resize(5, 4);
        assert_eq!(v[2], 4);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![7, 7, 4, 4, 4]);
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let a = CowVec::filled(4, 8, 1u64);
        let b = a.deep_clone();
        assert_eq!(a.shared_pages_with(&b), 0);
        assert_eq!(b[7], 1);
    }

    #[test]
    fn nullable_round_trip() {
        let mut n = CowNullable::new(4);
        n.append(Some(5u64));
        n.append(None);
        n.append(Some(7));
        assert_eq!(n.get(0), Ok(Some(5)));
        assert_eq!(n.get(1), Ok(None));
        assert_eq!(n.get(2), Ok(Some(7)));
        assert!(n.get(3).is_err());
        n.set(0, None).unwrap();
        n.set(1, Some(9)).unwrap();
        assert_eq!(n.get(0), Ok(None));
        assert_eq!(n.get(1), Ok(Some(9)));
        assert_eq!(n.hseqend(), 3);
    }

    #[test]
    fn nullable_bitmap_spans_word_boundaries() {
        let mut n = CowNullable::new(64);
        for i in 0..200u32 {
            n.append(if i % 3 == 0 { None } else { Some(i) });
        }
        for i in 0..200u64 {
            let expect = if i % 3 == 0 { None } else { Some(i as u32) };
            assert_eq!(n.get(i).unwrap(), expect, "at {i}");
        }
        let nulls = n.iter().filter(|(_, v)| v.is_none()).count();
        assert_eq!(nulls, (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn nullable_clones_share_until_set() {
        let mut a = CowNullable::new(4);
        for i in 0..12u64 {
            a.append(Some(i));
        }
        let b = a.clone();
        assert_eq!(a.shared_pages_with(&b), 3);
        a.set(5, Some(99)).unwrap();
        assert_eq!(a.shared_pages_with(&b), 2);
        assert_eq!(b.get(5), Ok(Some(5)));
    }
}
