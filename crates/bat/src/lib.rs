//! `mbxq-bat` — a miniature MonetDB-style binary-column kernel.
//!
//! MonetDB stores all data in *Binary Association Tables* (BATs): two-column
//! relations of `(head, tail)`. In practice almost every BAT in the
//! MonetDB/XQuery document schema has a **void head** — a *virtual* column
//! holding a densely ascending object-id sequence (0,1,2,…) that is never
//! materialized and therefore costs no storage and no update work. A BAT
//! with a void head is simply an array of tail values, and lookups by head
//! value become **positional** array accesses (a single CPU instruction,
//! per the paper §2.2).
//!
//! This crate reproduces the kernel facilities the paper's update mechanism
//! depends on:
//!
//! * [`VoidBat`] — a BAT with a virtual dense head (`seqbase ..`) and a
//!   typed tail; supports positional select and positional join.
//! * [`NullableBat`] — same, but the tail may contain NULLs (needed for the
//!   `level` column, where `NULL` marks unused tuples, and for the
//!   `node→pos` map, where `NULL` marks deleted nodes).
//! * [`PageMap`] — the *logical page order* indirection of §3: physical
//!   pages of a base table presented in a different logical order, which is
//!   how MonetDB's adaptive memory-mapping primitive makes appended
//!   overflow pages appear "halfway" in the `pre/size/level` view.
//! * [`delta`] — differential lists (MonetDB's delta tables) used by the
//!   transaction layer to isolate updates and propagate them at commit.
//! * [`cow`] — page-granular copy-on-write columns ([`CowVec`],
//!   [`CowNullable`]), the in-memory equivalent of MonetDB's
//!   copy-on-write memory maps: clones share every page until one side
//!   writes it, so publishing a new document version costs O(touched
//!   pages).

pub mod cow;
pub mod delta;
pub mod pagemap;

mod nullable;
mod voidbat;

pub use cow::{CowNullable, CowVec};
pub use delta::{DeltaList, DeltaOp};
pub use nullable::NullableBat;
pub use pagemap::{PageId, PageMap};
pub use voidbat::VoidBat;

/// Object identifier — the value domain of void (virtual) head columns.
///
/// MonetDB uses `oid`; we use a 64-bit integer so node ids never wrap even
/// under adversarial update workloads.
pub type Oid = u64;

/// Errors produced by the column kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatError {
    /// A positional access was out of the BAT's head range.
    OutOfRange {
        /// The oid that was requested.
        oid: Oid,
        /// The first valid oid (seqbase).
        seqbase: Oid,
        /// Number of tuples in the BAT.
        count: usize,
    },
    /// A page index did not exist in a [`PageMap`].
    BadPage {
        /// The page that was requested.
        page: usize,
        /// Number of pages that exist.
        pages: usize,
    },
}

impl core::fmt::Display for BatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BatError::OutOfRange {
                oid,
                seqbase,
                count,
            } => write!(
                f,
                "oid {oid} out of range [{seqbase}, {})",
                seqbase + *count as Oid
            ),
            BatError::BadPage { page, pages } => {
                write!(f, "page {page} out of range (have {pages} pages)")
            }
        }
    }
}

impl std::error::Error for BatError {}

/// Result alias for kernel operations.
pub type Result<T> = std::result::Result<T, BatError>;
