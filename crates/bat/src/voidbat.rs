//! BATs with a virtual (void) head column.

use crate::{BatError, Oid, Result};

/// A Binary Association Table whose head is a **void column**: a densely
/// ascending oid sequence `seqbase, seqbase+1, …` that is never stored.
///
/// The tail is a plain dense vector, so a lookup by head oid is a single
/// array index — MonetDB's *positional lookup*. This is the property the
/// paper identifies as "the prime reason for the performance advantage of
/// MonetDB/XQuery over other XQuery systems" (§2.2), and the property that
/// makes naive structural updates impossible (void columns may never be
/// modified — only appended to).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoidBat<T> {
    seqbase: Oid,
    tail: Vec<T>,
}

impl<T> Default for VoidBat<T> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<T> VoidBat<T> {
    /// Creates an empty BAT whose head sequence starts at `seqbase`.
    pub fn new(seqbase: Oid) -> Self {
        VoidBat {
            seqbase,
            tail: Vec::new(),
        }
    }

    /// Creates a BAT from an existing tail vector with head `seqbase..`.
    pub fn from_tail(seqbase: Oid, tail: Vec<T>) -> Self {
        VoidBat { seqbase, tail }
    }

    /// Creates an empty BAT with pre-reserved tail capacity.
    pub fn with_capacity(seqbase: Oid, cap: usize) -> Self {
        VoidBat {
            seqbase,
            tail: Vec::with_capacity(cap),
        }
    }

    /// First oid of the virtual head sequence.
    pub fn seqbase(&self) -> Oid {
        self.seqbase
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// Whether the BAT holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// One-past-the-last oid of the head sequence.
    pub fn hseqend(&self) -> Oid {
        self.seqbase + self.tail.len() as Oid
    }

    /// Appends a tuple; its head oid is implicit (`hseqend` before the
    /// append). Returns that oid. Void heads only ever grow at the end —
    /// this is the only mutation MonetDB permits on them.
    pub fn append(&mut self, value: T) -> Oid {
        let oid = self.hseqend();
        self.tail.push(value);
        oid
    }

    /// Appends many tuples at once (bulk load path of the shredder).
    pub fn append_from<I: IntoIterator<Item = T>>(&mut self, values: I) {
        self.tail.extend(values);
    }

    /// Positional lookup: the tail value associated with head oid `oid`.
    pub fn find(&self, oid: Oid) -> Result<&T> {
        self.index_of(oid).map(|i| &self.tail[i])
    }

    /// Positional lookup returning a mutable reference.
    ///
    /// Mutating tail values in place is allowed (only the *head* is
    /// immutable); the transaction layer restricts when this may happen.
    pub fn find_mut(&mut self, oid: Oid) -> Result<&mut T> {
        let i = self.index_of(oid)?;
        Ok(&mut self.tail[i])
    }

    /// Translates a head oid to a dense tail index.
    #[inline]
    pub fn index_of(&self, oid: Oid) -> Result<usize> {
        if oid < self.seqbase || oid >= self.hseqend() {
            return Err(BatError::OutOfRange {
                oid,
                seqbase: self.seqbase,
                count: self.tail.len(),
            });
        }
        Ok((oid - self.seqbase) as usize)
    }

    /// Positional range select: tail values for head oids `lo..hi`
    /// (clamped to the BAT's head range). This is MonetDB's positional
    /// select — an O(1) slice, no scan.
    pub fn positional_select(&self, lo: Oid, hi: Oid) -> &[T] {
        let end = self.hseqend();
        let lo = lo.clamp(self.seqbase, end);
        let hi = hi.clamp(lo, end);
        &self.tail[(lo - self.seqbase) as usize..(hi - self.seqbase) as usize]
    }

    /// Direct slice access to the whole tail.
    pub fn tail(&self) -> &[T] {
        &self.tail
    }

    /// Mutable slice access to the whole tail (bulk update path).
    pub fn tail_mut(&mut self) -> &mut [T] {
        &mut self.tail
    }

    /// Consumes the BAT and returns its tail vector.
    pub fn into_tail(self) -> Vec<T> {
        self.tail
    }

    /// Iterates `(oid, &value)` pairs in head order.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &T)> {
        self.tail
            .iter()
            .enumerate()
            .map(move |(i, v)| (self.seqbase + i as Oid, v))
    }

    /// Truncates the BAT to `len` tuples (used by transaction abort to
    /// roll back appends).
    pub fn truncate(&mut self, len: usize) {
        self.tail.truncate(len);
    }
}

impl<T: Copy> VoidBat<T> {
    /// Positional join (MonetDB `leftfetchjoin` with a void-headed right
    /// operand): for every oid in `probe`, fetch the associated tail value.
    ///
    /// The cost is one array access per probe value — this is the operation
    /// the updateable schema performs through the `node→pos` table each
    /// time an attribute is looked up after an XPath step (§4.1).
    pub fn positional_join(&self, probe: &[Oid]) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(probe.len());
        for &oid in probe {
            out.push(*self.find(oid)?);
        }
        Ok(out)
    }

    /// Like [`VoidBat::positional_join`] but skipping probe oids outside
    /// the head range instead of failing.
    pub fn positional_join_lenient(&self, probe: &[Oid]) -> Vec<T> {
        probe
            .iter()
            .filter_map(|&oid| self.find(oid).ok().copied())
            .collect()
    }

    /// Returns the tail value at head oid `oid` by value.
    #[inline]
    pub fn get(&self, oid: Oid) -> Result<T> {
        self.find(oid).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bat_has_no_tuples() {
        let b: VoidBat<u32> = VoidBat::new(10);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.seqbase(), 10);
        assert_eq!(b.hseqend(), 10);
    }

    #[test]
    fn append_assigns_dense_oids() {
        let mut b = VoidBat::new(5);
        assert_eq!(b.append("a"), 5);
        assert_eq!(b.append("b"), 6);
        assert_eq!(b.append("c"), 7);
        assert_eq!(b.find(6), Ok(&"b"));
    }

    #[test]
    fn find_out_of_range_is_error() {
        let mut b = VoidBat::new(0);
        b.append(1u8);
        assert!(matches!(b.find(1), Err(BatError::OutOfRange { .. })));
        assert!(matches!(
            VoidBat::<u8>::new(3).find(0),
            Err(BatError::OutOfRange { .. })
        ));
    }

    #[test]
    fn positional_select_clamps() {
        let b = VoidBat::from_tail(100, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.positional_select(101, 103), &[1, 2]);
        assert_eq!(b.positional_select(0, 1000), &[0, 1, 2, 3, 4]);
        assert_eq!(b.positional_select(200, 300), &[] as &[i32]);
        // hi < lo clamps to empty
        assert_eq!(b.positional_select(104, 101), &[] as &[i32]);
    }

    #[test]
    fn positional_join_fetches_per_probe() {
        let b = VoidBat::from_tail(0, vec![10u32, 20, 30]);
        assert_eq!(
            b.positional_join(&[2, 0, 1, 1]).unwrap(),
            vec![30, 10, 20, 20]
        );
        assert!(b.positional_join(&[3]).is_err());
        assert_eq!(b.positional_join_lenient(&[2, 9, 0]), vec![30, 10]);
    }

    #[test]
    fn iter_yields_head_tail_pairs() {
        let b = VoidBat::from_tail(7, vec!['x', 'y']);
        let v: Vec<_> = b.iter().collect();
        assert_eq!(v, vec![(7, &'x'), (8, &'y')]);
    }

    #[test]
    fn find_mut_updates_in_place() {
        let mut b = VoidBat::from_tail(0, vec![1, 2, 3]);
        *b.find_mut(1).unwrap() = 99;
        assert_eq!(b.tail(), &[1, 99, 3]);
    }

    #[test]
    fn truncate_rolls_back_appends() {
        let mut b = VoidBat::from_tail(0, vec![1, 2]);
        b.append(3);
        b.append(4);
        b.truncate(2);
        assert_eq!(b.tail(), &[1, 2]);
        assert_eq!(b.hseqend(), 2);
    }
}
