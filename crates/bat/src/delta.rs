//! Differential lists (MonetDB delta tables).
//!
//! While a transaction runs, it never touches base tables: every change is
//! recorded in a *differential list* and only carried through at commit,
//! under the short global write lock (Figure 8). Keeping the old value in
//! each update record makes the list trivially revertible, which the WAL
//! recovery path and transaction abort both rely on.

use crate::{Oid, Result, VoidBat};

/// One entry of a differential list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp<T> {
    /// In-place update of the tuple at `oid`.
    Update {
        /// Head oid of the updated tuple.
        oid: Oid,
        /// Tail value before the update (for rollback).
        old: T,
        /// Tail value after the update.
        new: T,
    },
    /// Append of a fresh tuple (its oid is implicit at apply time but
    /// recorded for verification).
    Append {
        /// Head oid the tuple is expected to receive.
        oid: Oid,
        /// Appended tail value.
        value: T,
    },
}

/// An ordered list of changes against one void-headed BAT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaList<T> {
    ops: Vec<DeltaOp<T>>,
}

impl<T> Default for DeltaList<T> {
    fn default() -> Self {
        DeltaList { ops: Vec::new() }
    }
}

impl<T: Copy + PartialEq> DeltaList<T> {
    /// Creates an empty differential list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Records an in-place update.
    pub fn record_update(&mut self, oid: Oid, old: T, new: T) {
        self.ops.push(DeltaOp::Update { oid, old, new });
    }

    /// Records an append.
    pub fn record_append(&mut self, oid: Oid, value: T) {
        self.ops.push(DeltaOp::Append { oid, value });
    }

    /// Iterates the recorded operations in order.
    pub fn iter(&self) -> impl Iterator<Item = &DeltaOp<T>> {
        self.ops.iter()
    }

    /// Carries the differential list through into `base` (commit path).
    ///
    /// Appends must arrive in oid order and match the BAT's append point;
    /// a mismatch signals a protocol bug and is reported as an error.
    pub fn apply_to(&self, base: &mut VoidBat<T>) -> Result<()> {
        for op in &self.ops {
            match *op {
                DeltaOp::Update { oid, new, .. } => {
                    *base.find_mut(oid)? = new;
                }
                DeltaOp::Append { oid, value } => {
                    let got = base.append(value);
                    debug_assert_eq!(got, oid, "append oid drifted from recording");
                }
            }
        }
        Ok(())
    }

    /// Reverts the differential list from `base` (recovery of a torn
    /// apply): updates are restored to their old values, appends truncated.
    pub fn revert_from(&self, base: &mut VoidBat<T>) -> Result<()> {
        for op in self.ops.iter().rev() {
            match *op {
                DeltaOp::Update { oid, old, .. } => {
                    *base.find_mut(oid)? = old;
                }
                DeltaOp::Append { .. } => {
                    base.truncate(base.len() - 1);
                }
            }
        }
        Ok(())
    }

    /// Drops all recorded operations (abort path — nothing ever touched
    /// the base, so forgetting the list is the whole rollback).
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_updates_and_appends() {
        let mut base = VoidBat::from_tail(0, vec![1u32, 2, 3]);
        let mut d = DeltaList::new();
        d.record_update(1, 2, 20);
        d.record_append(3, 40);
        d.record_append(4, 50);
        d.apply_to(&mut base).unwrap();
        assert_eq!(base.tail(), &[1, 20, 3, 40, 50]);
    }

    #[test]
    fn revert_restores_base() {
        let original = VoidBat::from_tail(0, vec![1u32, 2, 3]);
        let mut base = original.clone();
        let mut d = DeltaList::new();
        d.record_update(0, 1, 10);
        d.record_update(2, 3, 30);
        d.record_append(3, 99);
        d.apply_to(&mut base).unwrap();
        assert_ne!(base, original);
        d.revert_from(&mut base).unwrap();
        assert_eq!(base, original);
    }

    #[test]
    fn update_on_missing_oid_errors() {
        let mut base = VoidBat::from_tail(0, vec![1u32]);
        let mut d = DeltaList::new();
        d.record_update(5, 0, 9);
        assert!(d.apply_to(&mut base).is_err());
    }

    #[test]
    fn clear_forgets_everything() {
        let mut d = DeltaList::new();
        d.record_update(0, 1u8, 2);
        assert_eq!(d.len(), 1);
        d.clear();
        assert!(d.is_empty());
    }
}
