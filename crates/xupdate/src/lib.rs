//! `mbxq-xupdate` — the XUpdate language (§2.1 of the paper).
//!
//! "Until the W3C formulates a standard for XML updates, the most often
//! used update language is XUpdate" — the paper defines its update
//! workload in terms of XUpdate's structural commands, which this crate
//! parses from their XML syntax and translates into the bulk operations
//! of `mbxq-storage` (the rule framework sketched at the end of §3.1):
//!
//! * `<xupdate:remove select="expr"/>`
//! * `<xupdate:insert-before select="expr">…</xupdate:insert-before>`
//! * `<xupdate:insert-after select="expr">…</xupdate:insert-after>`
//! * `<xupdate:append select="expr" child="n"?>…</xupdate:append>`
//! * `<xupdate:update select="expr">new content</xupdate:update>`
//! * `<xupdate:rename select="expr">new-name</xupdate:rename>`
//!
//! Content is built with the XUpdate constructors `<xupdate:element
//! name="…">`, `<xupdate:attribute name="…">`, `<xupdate:text>`,
//! `<xupdate:comment>`, `<xupdate:processing-instruction name="…">`, or
//! with literal XML; `<xupdate:element>` "may contain nested XML, such
//! that entire subtrees can be inserted".
//!
//! Execution is generic over [`UpdateTarget`], implemented by both the
//! paged store and the naive shifting store — the randomized oracle tests
//! replay identical command scripts against both and compare serialized
//! documents.

mod apply;
mod parse;

pub use apply::{execute, ExecutionSummary, UpdateTarget};
pub use parse::parse_modifications;

use mbxq_xml::{Node, QName};
use mbxq_xpath::XPath;

/// One XUpdate command.
#[derive(Debug, Clone)]
pub enum Command {
    /// `<xupdate:remove select="…"/>`.
    Remove {
        /// Target selection.
        select: XPath,
    },
    /// `<xupdate:insert-before select="…">content</…>`.
    InsertBefore {
        /// Target selection (the new content precedes each target).
        select: XPath,
        /// Constructed content, in document order.
        content: Vec<Node>,
        /// Attributes to add to each *target's parent*? No — XUpdate
        /// attribute constructors at command level apply to the selected
        /// element; kept for `append`.
        attributes: Vec<(QName, String)>,
    },
    /// `<xupdate:insert-after select="…">content</…>`.
    InsertAfter {
        /// Target selection.
        select: XPath,
        /// Constructed content.
        content: Vec<Node>,
        /// Attribute constructors (applied to the selected element).
        attributes: Vec<(QName, String)>,
    },
    /// `<xupdate:append select="…" child="n"?>content</…>`.
    Append {
        /// Target selection (content becomes children of each target).
        select: XPath,
        /// Optional 0-based child position ("the optional integer child
        /// expression indicates the position of the new child node; by
        /// default, it is appended as last child", §2.1).
        child: Option<usize>,
        /// Constructed content.
        content: Vec<Node>,
        /// Attribute constructors → `set_attribute` on the target.
        attributes: Vec<(QName, String)>,
    },
    /// `<xupdate:update select="…">…</…>` — replaces the content of the
    /// selected nodes (text for value nodes; children for elements).
    Update {
        /// Target selection.
        select: XPath,
        /// New content (for elements) or its string value (for others).
        content: Vec<Node>,
    },
    /// `<xupdate:rename select="…">name</…>`.
    Rename {
        /// Target selection (elements).
        select: XPath,
        /// The new qualified name.
        name: QName,
    },
}

/// A parsed `<xupdate:modifications>` document: a command sequence.
#[derive(Debug, Clone, Default)]
pub struct Modifications {
    /// The commands, in document order.
    pub commands: Vec<Command>,
}

/// Errors of parsing or executing XUpdate documents.
#[derive(Debug, Clone, PartialEq)]
pub enum XUpdateError {
    /// The command document is not well-formed XUpdate.
    Parse {
        /// Description.
        message: String,
    },
    /// An embedded XPath failed to parse or evaluate.
    Path(mbxq_xpath::XPathError),
    /// The storage layer rejected an operation.
    Storage(mbxq_storage::StorageError),
}

impl core::fmt::Display for XUpdateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            XUpdateError::Parse { message } => write!(f, "XUpdate parse error: {message}"),
            XUpdateError::Path(e) => write!(f, "XUpdate path error: {e}"),
            XUpdateError::Storage(e) => write!(f, "XUpdate storage error: {e}"),
        }
    }
}

impl std::error::Error for XUpdateError {}

impl From<mbxq_xpath::XPathError> for XUpdateError {
    fn from(e: mbxq_xpath::XPathError) -> Self {
        XUpdateError::Path(e)
    }
}

impl From<mbxq_storage::StorageError> for XUpdateError {
    fn from(e: mbxq_storage::StorageError) -> Self {
        XUpdateError::Storage(e)
    }
}

/// Result alias for XUpdate operations.
pub type Result<T> = std::result::Result<T, XUpdateError>;

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::serialize::to_xml;
    use mbxq_storage::{NaiveDoc, PageConfig, PagedDoc};

    const DOC: &str = r#"<site><people><person id="p0"><name>Ann</name></person><person id="p1"><name>Bob</name></person></people></site>"#;

    fn paged() -> PagedDoc {
        PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap()
    }

    #[test]
    fn remove_command() {
        let mut d = paged();
        let mods = parse_modifications(
            r#"<xupdate:modifications version="1.0">
                 <xupdate:remove select="/site/people/person[@id='p0']"/>
               </xupdate:modifications>"#,
        )
        .unwrap();
        let summary = execute(&mut d, &mods).unwrap();
        assert_eq!(summary.nodes_removed, 3); // person, name, text
        assert_eq!(
            to_xml(&d).unwrap(),
            r#"<site><people><person id="p1"><name>Bob</name></person></people></site>"#
        );
    }

    #[test]
    fn insert_before_and_after() {
        let mut d = paged();
        let mods = parse_modifications(
            r#"<xupdate:modifications version="1.0">
                 <xupdate:insert-before select="//person[@id='p1']">
                   <xupdate:element name="person"><xupdate:attribute name="id">mid</xupdate:attribute></xupdate:element>
                 </xupdate:insert-before>
                 <xupdate:insert-after select="//person[@id='p1']">
                   <xupdate:element name="person"><xupdate:attribute name="id">end</xupdate:attribute></xupdate:element>
                 </xupdate:insert-after>
               </xupdate:modifications>"#,
        )
        .unwrap();
        execute(&mut d, &mods).unwrap();
        assert_eq!(
            to_xml(&d).unwrap(),
            concat!(
                r#"<site><people><person id="p0"><name>Ann</name></person>"#,
                r#"<person id="mid"/><person id="p1"><name>Bob</name></person>"#,
                r#"<person id="end"/></people></site>"#
            )
        );
    }

    #[test]
    fn append_with_literal_xml_and_position() {
        let mut d = paged();
        // The paper's own example shape: append nested literal XML.
        let mods = parse_modifications(
            r#"<xupdate:modifications version="1.0">
                 <xupdate:append select="/site/people/person[@id='p0']">
                   <watches><watch open="yes"/></watches>
                 </xupdate:append>
                 <xupdate:append select="/site/people" child="0">
                   <xupdate:element name="first"/>
                 </xupdate:append>
               </xupdate:modifications>"#,
        )
        .unwrap();
        execute(&mut d, &mods).unwrap();
        assert_eq!(
            to_xml(&d).unwrap(),
            concat!(
                r#"<site><people><first/><person id="p0"><name>Ann</name>"#,
                r#"<watches><watch open="yes"/></watches></person>"#,
                r#"<person id="p1"><name>Bob</name></person></people></site>"#
            )
        );
    }

    #[test]
    fn update_text_and_element_content() {
        let mut d = paged();
        let mods = parse_modifications(
            r#"<xupdate:modifications version="1.0">
                 <xupdate:update select="//person[@id='p0']/name/text()">Anna</xupdate:update>
                 <xupdate:update select="//person[@id='p1']/name"><b>Bobby</b></xupdate:update>
               </xupdate:modifications>"#,
        )
        .unwrap();
        execute(&mut d, &mods).unwrap();
        assert_eq!(
            to_xml(&d).unwrap(),
            concat!(
                r#"<site><people><person id="p0"><name>Anna</name></person>"#,
                r#"<person id="p1"><name><b>Bobby</b></name></person></people></site>"#
            )
        );
    }

    #[test]
    fn rename_command() {
        let mut d = paged();
        let mods = parse_modifications(
            r#"<xupdate:modifications version="1.0">
                 <xupdate:rename select="//name">label</xupdate:rename>
               </xupdate:modifications>"#,
        )
        .unwrap();
        let s = execute(&mut d, &mods).unwrap();
        assert_eq!(s.nodes_renamed, 2);
        assert!(to_xml(&d).unwrap().contains("<label>Ann</label>"));
    }

    #[test]
    fn multi_target_insert() {
        let mut d = paged();
        // One command, two context nodes — "inserts an element node as a
        // directly preceding sibling to all nodes in the result set".
        let mods = parse_modifications(
            r#"<xupdate:modifications version="1.0">
                 <xupdate:append select="//person">
                   <xupdate:element name="flag"/>
                 </xupdate:append>
               </xupdate:modifications>"#,
        )
        .unwrap();
        let s = execute(&mut d, &mods).unwrap();
        assert_eq!(s.nodes_inserted, 2);
        assert_eq!(to_xml(&d).unwrap().matches("<flag/>").count(), 2);
    }

    #[test]
    fn same_script_on_paged_and_naive() {
        let script = r#"<xupdate:modifications version="1.0">
             <xupdate:append select="/site/people">
               <xupdate:element name="person">
                 <xupdate:attribute name="id">p2</xupdate:attribute>
                 <name>Cyd</name>
               </xupdate:element>
             </xupdate:append>
             <xupdate:remove select="//person[@id='p0']/name"/>
             <xupdate:update select="//person[@id='p1']/name/text()">Rob</xupdate:update>
           </xupdate:modifications>"#;
        let mods = parse_modifications(script).unwrap();
        let mut up = paged();
        let mut nv = NaiveDoc::parse_str(DOC).unwrap();
        execute(&mut up, &mods).unwrap();
        execute(&mut nv, &mods).unwrap();
        assert_eq!(to_xml(&up).unwrap(), to_xml(&nv).unwrap());
        mbxq_storage::invariants::check_paged(&up).unwrap();
    }

    #[test]
    fn malformed_commands_rejected() {
        for bad in [
            "<notxupdate/>",
            r#"<xupdate:modifications version="1.0"><xupdate:remove/></xupdate:modifications>"#,
            r#"<xupdate:modifications version="1.0"><xupdate:frobnicate select="/x"/></xupdate:modifications>"#,
            r#"<xupdate:modifications version="1.0"><xupdate:remove select="][bad"/></xupdate:modifications>"#,
            r#"<xupdate:modifications version="1.0"><xupdate:rename select="//name"><x/></xupdate:rename></xupdate:modifications>"#,
        ] {
            assert!(parse_modifications(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn single_command_without_wrapper() {
        let mods = parse_modifications(r#"<xupdate:remove select="//person[@id='p1']"/>"#).unwrap();
        assert_eq!(mods.commands.len(), 1);
        let mut d = paged();
        execute(&mut d, &mods).unwrap();
        assert!(!to_xml(&d).unwrap().contains("p1"));
    }

    #[test]
    fn empty_selection_is_a_no_op() {
        let mut d = paged();
        let before = to_xml(&d).unwrap();
        let mods = parse_modifications(r#"<xupdate:remove select="//nonexistent"/>"#).unwrap();
        let s = execute(&mut d, &mods).unwrap();
        assert_eq!(s.nodes_removed, 0);
        assert_eq!(to_xml(&d).unwrap(), before);
    }
}
