//! Executing XUpdate commands against a storage backend.

use crate::{Command, Modifications, Result, XUpdateError};
use mbxq_storage::{InsertPosition, NaiveDoc, NodeId, PagedDoc, TreeView};
use mbxq_xml::{Node, QName};

/// Counters describing what an execution did (the "update volume").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionSummary {
    /// Commands executed.
    pub commands: usize,
    /// Tuples deleted by `remove`/`update`.
    pub nodes_removed: u64,
    /// Tuples inserted by the insert commands and `update`.
    pub nodes_inserted: u64,
    /// Value nodes whose content was replaced in place.
    pub values_updated: u64,
    /// Attributes set by attribute constructors.
    pub attrs_set: u64,
    /// Elements renamed.
    pub nodes_renamed: u64,
}

/// The mutable-store interface XUpdate execution needs. Implemented by
/// the paged store and by the naive shifting store, so identical command
/// scripts can be replayed against both (oracle testing, and the
/// Figure 3 ablation benchmark).
pub trait UpdateTarget: TreeView {
    /// Inserts a subtree; returns the number of tuples inserted.
    fn xu_insert(&mut self, position: InsertPosition, subtree: &Node) -> mbxq_storage::Result<u64>;
    /// Deletes a subtree; returns the number of tuples removed.
    fn xu_delete(&mut self, target: NodeId) -> mbxq_storage::Result<u64>;
    /// Replaces the content of a non-element node.
    fn xu_update_value(&mut self, target: NodeId, value: &str) -> mbxq_storage::Result<()>;
    /// Renames an element.
    fn xu_rename(&mut self, target: NodeId, name: &QName) -> mbxq_storage::Result<()>;
    /// Sets an attribute on an element.
    fn xu_set_attribute(
        &mut self,
        target: NodeId,
        name: &QName,
        value: &str,
    ) -> mbxq_storage::Result<()>;
    /// Current pre rank of a node id.
    fn xu_node_to_pre(&self, node: NodeId) -> mbxq_storage::Result<u64>;
    /// Node id at a pre rank.
    fn xu_pre_to_node(&self, pre: u64) -> mbxq_storage::Result<NodeId>;
}

impl UpdateTarget for PagedDoc {
    fn xu_insert(&mut self, position: InsertPosition, subtree: &Node) -> mbxq_storage::Result<u64> {
        self.insert(position, subtree).map(|r| r.inserted)
    }

    fn xu_delete(&mut self, target: NodeId) -> mbxq_storage::Result<u64> {
        self.delete(target).map(|r| r.deleted)
    }

    fn xu_update_value(&mut self, target: NodeId, value: &str) -> mbxq_storage::Result<()> {
        self.update_value(target, value)
    }

    fn xu_rename(&mut self, target: NodeId, name: &QName) -> mbxq_storage::Result<()> {
        self.rename(target, name)
    }

    fn xu_set_attribute(
        &mut self,
        target: NodeId,
        name: &QName,
        value: &str,
    ) -> mbxq_storage::Result<()> {
        self.set_attribute(target, name, value)
    }

    fn xu_node_to_pre(&self, node: NodeId) -> mbxq_storage::Result<u64> {
        self.node_to_pre(node)
    }

    fn xu_pre_to_node(&self, pre: u64) -> mbxq_storage::Result<NodeId> {
        self.pre_to_node(pre)
    }
}

impl UpdateTarget for NaiveDoc {
    fn xu_insert(&mut self, position: InsertPosition, subtree: &Node) -> mbxq_storage::Result<u64> {
        self.insert(position, subtree).map(|r| r.changed)
    }

    fn xu_delete(&mut self, target: NodeId) -> mbxq_storage::Result<u64> {
        self.delete(target).map(|r| r.changed)
    }

    fn xu_update_value(&mut self, target: NodeId, value: &str) -> mbxq_storage::Result<()> {
        self.update_value(target, value)
    }

    fn xu_rename(&mut self, target: NodeId, name: &QName) -> mbxq_storage::Result<()> {
        self.rename(target, name)
    }

    fn xu_set_attribute(
        &mut self,
        target: NodeId,
        name: &QName,
        value: &str,
    ) -> mbxq_storage::Result<()> {
        self.set_attribute(target, name, value)
    }

    fn xu_node_to_pre(&self, node: NodeId) -> mbxq_storage::Result<u64> {
        self.node_to_pre(node)
    }

    fn xu_pre_to_node(&self, pre: u64) -> mbxq_storage::Result<NodeId> {
        self.pre_to_node(pre)
    }
}

/// Executes a command sequence. Each command's XPath is evaluated first
/// and the resulting targets pinned by **node id** — updates shift pre
/// ranks, node ids never change (§3.1) — then the command is applied to
/// every target in document order.
pub fn execute<T: UpdateTarget>(doc: &mut T, mods: &Modifications) -> Result<ExecutionSummary> {
    let mut summary = ExecutionSummary::default();
    for cmd in &mods.commands {
        summary.commands += 1;
        match cmd {
            Command::Remove { select } => {
                for node in select_nodes(doc, select)? {
                    // A previous removal may have deleted this target
                    // (nested selection); skip dead ids.
                    if doc.xu_node_to_pre(node).is_err() {
                        continue;
                    }
                    summary.nodes_removed += doc.xu_delete(node)?;
                }
            }
            Command::InsertBefore {
                select,
                content,
                attributes,
            } => {
                for node in select_nodes(doc, select)? {
                    for item in content {
                        summary.nodes_inserted +=
                            doc.xu_insert(InsertPosition::Before(node), item)?;
                    }
                    summary.attrs_set += set_attrs(doc, node, attributes)?;
                }
            }
            Command::InsertAfter {
                select,
                content,
                attributes,
            } => {
                for node in select_nodes(doc, select)? {
                    // Insert in reverse so the sequence ends up in
                    // document order directly after the target.
                    for item in content.iter().rev() {
                        summary.nodes_inserted +=
                            doc.xu_insert(InsertPosition::After(node), item)?;
                    }
                    summary.attrs_set += set_attrs(doc, node, attributes)?;
                }
            }
            Command::Append {
                select,
                child,
                content,
                attributes,
            } => {
                for node in select_nodes(doc, select)? {
                    match child {
                        None => {
                            for item in content {
                                summary.nodes_inserted +=
                                    doc.xu_insert(InsertPosition::LastChildOf(node), item)?;
                            }
                        }
                        Some(k) => {
                            for (i, item) in content.iter().enumerate() {
                                summary.nodes_inserted +=
                                    doc.xu_insert(InsertPosition::ChildAt(node, k + i), item)?;
                            }
                        }
                    }
                    summary.attrs_set += set_attrs(doc, node, attributes)?;
                }
            }
            Command::Update { select, content } => {
                for node in select_nodes(doc, select)? {
                    let pre = doc.xu_node_to_pre(node)?;
                    match doc.kind(pre) {
                        Some(mbxq_storage::Kind::Element) => {
                            // Replace children: delete existing, append new.
                            let child_nodes: Vec<NodeId> = mbxq_axes::children(doc, pre)
                                .map(|p| doc.xu_pre_to_node(p))
                                .collect::<mbxq_storage::Result<_>>()?;
                            for c in child_nodes {
                                summary.nodes_removed += doc.xu_delete(c)?;
                            }
                            for item in content {
                                summary.nodes_inserted +=
                                    doc.xu_insert(InsertPosition::LastChildOf(node), item)?;
                            }
                        }
                        Some(_) => {
                            let text = content_string(content);
                            doc.xu_update_value(node, &text)?;
                            summary.values_updated += 1;
                        }
                        None => {
                            return Err(XUpdateError::Storage(
                                mbxq_storage::StorageError::BadNode { node },
                            ))
                        }
                    }
                }
            }
            Command::Rename { select, name } => {
                for node in select_nodes(doc, select)? {
                    doc.xu_rename(node, name)?;
                    summary.nodes_renamed += 1;
                }
            }
        }
    }
    Ok(summary)
}

/// Evaluates a command's selection and pins the targets by node id.
fn select_nodes<T: UpdateTarget>(doc: &T, path: &mbxq_xpath::XPath) -> Result<Vec<NodeId>> {
    let pres = path.select_from_root(doc)?;
    pres.into_iter()
        .map(|p| doc.xu_pre_to_node(p).map_err(XUpdateError::Storage))
        .collect()
}

fn set_attrs<T: UpdateTarget>(doc: &mut T, node: NodeId, attrs: &[(QName, String)]) -> Result<u64> {
    for (name, value) in attrs {
        doc.xu_set_attribute(node, name, value)?;
    }
    Ok(attrs.len() as u64)
}

fn content_string(content: &[Node]) -> String {
    let mut out = String::new();
    for n in content {
        match n {
            Node::Text(t) => out.push_str(t),
            other => out.push_str(&other.string_value()),
        }
    }
    out
}
