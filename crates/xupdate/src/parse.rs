//! Parsing XUpdate command documents from their XML syntax.

use crate::{Command, Modifications, Result, XUpdateError};
use mbxq_xml::{Document, Node, QName};
use mbxq_xpath::XPath;

fn parse_err(message: impl Into<String>) -> XUpdateError {
    XUpdateError::Parse {
        message: message.into(),
    }
}

/// Whether `name` is an XUpdate element with the given local name.
/// XUpdate binds the `xupdate` prefix to its namespace; since the storage
/// model keeps prefixes verbatim, any prefix is accepted as long as the
/// local name matches and a prefix is present (the conventional documents
/// all use `xupdate:`).
fn is_xu(name: &QName, local: &str) -> bool {
    name.has_prefix() && name.local == local
}

fn attr<'a>(node: &'a Node, name: &str) -> Option<&'a str> {
    node.attributes()
        .iter()
        .find(|(n, _)| n.local == name && !n.has_prefix())
        .map(|(_, v)| v.as_str())
}

fn required_select(node: &Node, cmd: &str) -> Result<XPath> {
    let src = attr(node, "select")
        .ok_or_else(|| parse_err(format!("<xupdate:{cmd}> requires a select attribute")))?;
    XPath::parse(src).map_err(XUpdateError::Path)
}

/// Parses a command document: either an `<xupdate:modifications>` wrapper
/// or a single bare command element.
pub fn parse_modifications(xml: &str) -> Result<Modifications> {
    let doc = Document::parse(xml).map_err(|e| parse_err(format!("not well-formed XML: {e}")))?;
    let root = &doc.root;
    let root_name = root.name().ok_or_else(|| parse_err("no root element"))?;
    let mut commands = Vec::new();
    if is_xu(root_name, "modifications") {
        for child in root.children() {
            match child {
                Node::Element { .. } => commands.push(parse_command(child)?),
                Node::Text(t) if t.trim().is_empty() => {}
                other => {
                    return Err(parse_err(format!(
                        "unexpected content in <xupdate:modifications>: {other:?}"
                    )))
                }
            }
        }
    } else {
        commands.push(parse_command(root)?);
    }
    Ok(Modifications { commands })
}

fn parse_command(node: &Node) -> Result<Command> {
    let name = node.name().expect("commands are elements");
    if !name.has_prefix() {
        return Err(parse_err(format!(
            "'{name}' is not an XUpdate command (missing xupdate prefix)"
        )));
    }
    match name.local.as_str() {
        "remove" => Ok(Command::Remove {
            select: required_select(node, "remove")?,
        }),
        "insert-before" => {
            let (content, attributes) = parse_content(node.children())?;
            Ok(Command::InsertBefore {
                select: required_select(node, "insert-before")?,
                content,
                attributes,
            })
        }
        "insert-after" => {
            let (content, attributes) = parse_content(node.children())?;
            Ok(Command::InsertAfter {
                select: required_select(node, "insert-after")?,
                content,
                attributes,
            })
        }
        "append" => {
            let child = match attr(node, "child") {
                Some(c) => Some(c.trim().parse::<usize>().map_err(|_| {
                    parse_err(format!("bad child position '{c}' on <xupdate:append>"))
                })?),
                None => None,
            };
            let (content, attributes) = parse_content(node.children())?;
            Ok(Command::Append {
                select: required_select(node, "append")?,
                child,
                content,
                attributes,
            })
        }
        "update" => {
            let (content, attributes) = parse_content(node.children())?;
            if !attributes.is_empty() {
                return Err(parse_err(
                    "<xupdate:update> cannot contain attribute constructors",
                ));
            }
            Ok(Command::Update {
                select: required_select(node, "update")?,
                content,
            })
        }
        "rename" => {
            let mut text = String::new();
            for c in node.children() {
                match c {
                    Node::Text(t) => text.push_str(t),
                    _ => return Err(parse_err("<xupdate:rename> content must be a name")),
                }
            }
            let qname = QName::parse(text.trim()).ok_or_else(|| {
                parse_err(format!("bad name '{}' in <xupdate:rename>", text.trim()))
            })?;
            Ok(Command::Rename {
                select: required_select(node, "rename")?,
                name: qname,
            })
        }
        other => Err(parse_err(format!("unknown XUpdate command '{other}'"))),
    }
}

/// Constructed content plus top-level attribute constructors.
type Content = (Vec<Node>, Vec<(QName, String)>);

/// Converts command content into constructed nodes plus top-level
/// attribute constructors.
fn parse_content(children: &[Node]) -> Result<Content> {
    let mut content = Vec::new();
    let mut attributes = Vec::new();
    for child in children {
        match child {
            Node::Element { name, .. } if name.has_prefix() && name.local == "attribute" => {
                let aname = attr(child, "name")
                    .ok_or_else(|| parse_err("<xupdate:attribute> requires a name"))?;
                let aname = QName::parse(aname)
                    .ok_or_else(|| parse_err(format!("bad attribute name '{aname}'")))?;
                attributes.push((aname, child.string_value()));
            }
            other => {
                if let Some(n) = construct_node(other)? {
                    content.push(n);
                }
            }
        }
    }
    Ok((content, attributes))
}

/// Converts one content node, resolving XUpdate constructors; whitespace-
/// only text between constructors is dropped.
fn construct_node(node: &Node) -> Result<Option<Node>> {
    match node {
        Node::Text(t) => {
            if t.trim().is_empty() {
                Ok(None)
            } else {
                Ok(Some(Node::Text(t.clone())))
            }
        }
        Node::Comment(_) | Node::ProcessingInstruction { .. } => Ok(Some(node.clone())),
        Node::Element {
            name,
            attributes,
            children,
        } => {
            if is_xu(name, "element") {
                let ename = attr(node, "name")
                    .ok_or_else(|| parse_err("<xupdate:element> requires a name"))?;
                let ename = QName::parse(ename)
                    .ok_or_else(|| parse_err(format!("bad element name '{ename}'")))?;
                let (content, attrs) = parse_content(children)?;
                Ok(Some(Node::Element {
                    name: ename,
                    attributes: attrs,
                    children: content,
                }))
            } else if is_xu(name, "text") {
                Ok(Some(Node::Text(node.string_value())))
            } else if is_xu(name, "comment") {
                Ok(Some(Node::Comment(node.string_value())))
            } else if is_xu(name, "processing-instruction") {
                let target = attr(node, "name")
                    .ok_or_else(|| parse_err("<xupdate:processing-instruction> requires a name"))?;
                Ok(Some(Node::ProcessingInstruction {
                    target: target.to_string(),
                    data: node.string_value(),
                }))
            } else if name.prefix == "xupdate" {
                Err(parse_err(format!(
                    "unexpected xupdate constructor '{}'",
                    name.local
                )))
            } else {
                // Literal XML: keep, but resolve nested constructors.
                let mut new_children = Vec::new();
                let mut new_attrs = attributes.clone();
                for c in children {
                    match c {
                        Node::Element { name: cn, .. }
                            if cn.has_prefix() && cn.local == "attribute" =>
                        {
                            let aname = attr(c, "name")
                                .ok_or_else(|| parse_err("<xupdate:attribute> requires a name"))?;
                            let aname = QName::parse(aname).ok_or_else(|| {
                                parse_err(format!("bad attribute name '{aname}'"))
                            })?;
                            new_attrs.push((aname, c.string_value()));
                        }
                        other => {
                            if let Some(n) = construct_node(other)? {
                                new_children.push(n);
                            }
                        }
                    }
                }
                Ok(Some(Node::Element {
                    name: name.clone(),
                    attributes: new_attrs,
                    children: new_children,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_command_kinds() {
        let mods = parse_modifications(
            r#"<xupdate:modifications version="1.0">
              <xupdate:remove select="/a"/>
              <xupdate:insert-before select="/a"><x/></xupdate:insert-before>
              <xupdate:insert-after select="/a"><x/></xupdate:insert-after>
              <xupdate:append select="/a" child="2"><x/></xupdate:append>
              <xupdate:update select="/a">new</xupdate:update>
              <xupdate:rename select="/a">b</xupdate:rename>
            </xupdate:modifications>"#,
        )
        .unwrap();
        assert_eq!(mods.commands.len(), 6);
        assert!(matches!(mods.commands[0], Command::Remove { .. }));
        assert!(matches!(
            mods.commands[3],
            Command::Append { child: Some(2), .. }
        ));
    }

    #[test]
    fn element_constructor_builds_subtree() {
        let mods = parse_modifications(
            r#"<xupdate:append select="/a">
                 <xupdate:element name="k">
                   <xupdate:attribute name="id">7</xupdate:attribute>
                   <l/><xupdate:text>hi</xupdate:text>
                 </xupdate:element>
               </xupdate:append>"#,
        )
        .unwrap();
        match &mods.commands[0] {
            Command::Append { content, .. } => {
                assert_eq!(content.len(), 1);
                let k = &content[0];
                assert_eq!(k.name().unwrap().local, "k");
                assert_eq!(k.attributes().len(), 1);
                assert_eq!(k.children().len(), 2);
                assert_eq!(k.children()[1], Node::Text("hi".into()));
            }
            other => panic!("expected append, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_between_constructors_dropped() {
        let mods = parse_modifications(
            "<xupdate:append select=\"/a\">\n  <x/>\n  <y/>\n</xupdate:append>",
        )
        .unwrap();
        match &mods.commands[0] {
            Command::Append { content, .. } => assert_eq!(content.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comment_and_pi_constructors() {
        let mods = parse_modifications(
            r#"<xupdate:append select="/a">
                 <xupdate:comment>note</xupdate:comment>
                 <xupdate:processing-instruction name="php">echo</xupdate:processing-instruction>
               </xupdate:append>"#,
        )
        .unwrap();
        match &mods.commands[0] {
            Command::Append { content, .. } => {
                assert_eq!(content[0], Node::Comment("note".into()));
                assert_eq!(
                    content[1],
                    Node::ProcessingInstruction {
                        target: "php".into(),
                        data: "echo".into()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }
}
