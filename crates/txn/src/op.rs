//! Logical redo operations — the payload of WAL commit records.
//!
//! Operations address their targets by **immutable node id** (never by
//! `pre`/`pos`, which shift under updates), so a committed log replayed
//! in commit order reproduces the exact same document and the exact same
//! node-id allocation, regardless of how pre ranks moved in between.

use crate::{Result, TxnError};
use mbxq_storage::{InsertPosition, NodeId, PagedDoc};
use mbxq_xml::{Document, Node, QName};
use std::fmt::Write as _;

/// One logical update operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Structural insert of a constructed subtree.
    Insert {
        /// Placement relative to an existing node.
        position: InsertPosition,
        /// The subtree to shred in.
        subtree: Node,
        /// First node id of the inserted range (reserved at staging
        /// time from the store's shared counter, so workspace, commit
        /// replay and recovery assign identical ids).
        first_node: u64,
    },
    /// Structural delete of a whole subtree.
    Delete {
        /// Root of the doomed subtree.
        node: NodeId,
    },
    /// Content replacement on a text/comment/instruction node.
    UpdateValue {
        /// The value node.
        node: NodeId,
        /// New content.
        value: String,
    },
    /// Element rename.
    Rename {
        /// The element.
        node: NodeId,
        /// New name.
        name: QName,
    },
    /// Attribute set/replace.
    SetAttr {
        /// The element.
        node: NodeId,
        /// Attribute name.
        name: QName,
        /// Attribute value.
        value: String,
    },
    /// Attribute removal.
    RemoveAttr {
        /// The element.
        node: NodeId,
        /// Attribute name.
        name: QName,
    },
}

impl Op {
    /// Applies the operation to `doc`; returns
    /// `(inserted, deleted, ancestors_touched)`.
    pub fn apply(&self, doc: &mut PagedDoc) -> Result<(u64, u64, u64)> {
        match self {
            Op::Insert {
                position,
                subtree,
                first_node,
            } => {
                let r = doc.insert_with_base(*position, subtree, *first_node)?;
                Ok((r.inserted, 0, r.ancestors_updated as u64))
            }
            Op::Delete { node } => {
                let r = doc.delete(*node)?;
                Ok((0, r.deleted, r.ancestors_updated as u64))
            }
            Op::UpdateValue { node, value } => {
                doc.update_value(*node, value)?;
                Ok((0, 0, 0))
            }
            Op::Rename { node, name } => {
                doc.rename(*node, name)?;
                Ok((0, 0, 0))
            }
            Op::SetAttr { node, name, value } => {
                doc.set_attribute(*node, name, value)?;
                Ok((0, 0, 0))
            }
            Op::RemoveAttr { node, name } => {
                doc.remove_attribute(*node, name)?;
                Ok((0, 0, 0))
            }
        }
    }

    /// Serializes the op into the WAL text format (length-prefixed
    /// strings; no escaping needed).
    pub(crate) fn encode(&self, out: &mut String) {
        fn put_str(out: &mut String, s: &str) {
            let _ = write!(out, "{}:", s.len());
            out.push_str(s);
        }
        match self {
            Op::Insert {
                position,
                subtree,
                first_node,
            } => {
                let (tag, node, extra) = match position {
                    InsertPosition::Before(n) => ("before", n.0, 0),
                    InsertPosition::After(n) => ("after", n.0, 0),
                    InsertPosition::LastChildOf(n) => ("lastchild", n.0, 0),
                    InsertPosition::ChildAt(n, k) => ("childat", n.0, *k as u64),
                };
                let mut xml = String::new();
                mbxq_xml::serialize_node(subtree, &mut xml);
                let _ = write!(out, "I {tag} {node} {extra} {first_node} ");
                put_str(out, &xml);
            }
            Op::Delete { node } => {
                let _ = write!(out, "D {}", node.0);
            }
            Op::UpdateValue { node, value } => {
                let _ = write!(out, "V {} ", node.0);
                put_str(out, value);
            }
            Op::Rename { node, name } => {
                let _ = write!(out, "R {} ", node.0);
                put_str(out, &name.to_string());
            }
            Op::SetAttr { node, name, value } => {
                let _ = write!(out, "S {} ", node.0);
                put_str(out, &name.to_string());
                out.push(' ');
                put_str(out, value);
            }
            Op::RemoveAttr { node, name } => {
                let _ = write!(out, "X {} ", node.0);
                put_str(out, &name.to_string());
            }
        }
    }

    /// Parses one encoded op.
    pub(crate) fn decode(input: &str) -> Result<Op> {
        let bad = |m: &str| {
            TxnError::Wal(crate::wal::WalError::Corrupt {
                message: m.to_string(),
            })
        };
        let mut rest = input;
        let mut next_token = || -> Result<&str> {
            rest = rest.trim_start();
            let end = rest.find(' ').unwrap_or(rest.len());
            let (tok, r) = rest.split_at(end);
            rest = r;
            if tok.is_empty() {
                Err(bad("truncated op"))
            } else {
                Ok(tok)
            }
        };
        let kind = next_token()?.to_string();
        let parse_u64 = |s: &str| s.parse::<u64>().map_err(|_| bad("bad number"));
        // Length-prefixed string reader over `rest`.
        fn take_str<'a>(rest: &mut &'a str) -> Option<&'a str> {
            let r = rest.trim_start();
            let colon = r.find(':')?;
            let len: usize = r[..colon].parse().ok()?;
            let start = colon + 1;
            if r.len() < start + len {
                return None;
            }
            let s = &r[start..start + len];
            *rest = &r[start + len..];
            Some(s)
        }
        match kind.as_str() {
            "I" => {
                let tag = next_token()?.to_string();
                let node = NodeId(parse_u64(next_token()?)?);
                let extra = parse_u64(next_token()?)? as usize;
                let first_node = parse_u64(next_token()?)?;
                let xml = take_str(&mut rest).ok_or_else(|| bad("bad insert payload"))?;
                let subtree = Document::parse_fragment(xml)
                    .map_err(|e| bad(&format!("bad subtree xml: {e}")))?;
                let position = match tag.as_str() {
                    "before" => InsertPosition::Before(node),
                    "after" => InsertPosition::After(node),
                    "lastchild" => InsertPosition::LastChildOf(node),
                    "childat" => InsertPosition::ChildAt(node, extra),
                    other => return Err(bad(&format!("bad insert tag '{other}'"))),
                };
                Ok(Op::Insert {
                    position,
                    subtree,
                    first_node,
                })
            }
            "D" => Ok(Op::Delete {
                node: NodeId(parse_u64(next_token()?)?),
            }),
            "V" => {
                let node = NodeId(parse_u64(next_token()?)?);
                let value = take_str(&mut rest).ok_or_else(|| bad("bad value payload"))?;
                Ok(Op::UpdateValue {
                    node,
                    value: value.to_string(),
                })
            }
            "R" => {
                let node = NodeId(parse_u64(next_token()?)?);
                let name = take_str(&mut rest).ok_or_else(|| bad("bad rename payload"))?;
                Ok(Op::Rename {
                    node,
                    name: QName::parse(name).ok_or_else(|| bad("bad qname"))?,
                })
            }
            "S" => {
                let node = NodeId(parse_u64(next_token()?)?);
                let name = take_str(&mut rest).ok_or_else(|| bad("bad attr name"))?;
                let name = QName::parse(name).ok_or_else(|| bad("bad qname"))?;
                let value = take_str(&mut rest).ok_or_else(|| bad("bad attr value"))?;
                Ok(Op::SetAttr {
                    node,
                    name,
                    value: value.to_string(),
                })
            }
            "X" => {
                let node = NodeId(parse_u64(next_token()?)?);
                let name = take_str(&mut rest).ok_or_else(|| bad("bad attr name"))?;
                Ok(Op::RemoveAttr {
                    node,
                    name: QName::parse(name).ok_or_else(|| bad("bad qname"))?,
                })
            }
            other => Err(bad(&format!("unknown op kind '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(op: Op) {
        let mut s = String::new();
        op.encode(&mut s);
        let back = Op::decode(&s).unwrap();
        assert_eq!(op, back, "encoded as: {s}");
    }

    #[test]
    fn all_ops_round_trip() {
        round_trip(Op::Delete { node: NodeId(42) });
        round_trip(Op::UpdateValue {
            node: NodeId(7),
            value: "contains spaces: and 12:34 colons".into(),
        });
        round_trip(Op::Rename {
            node: NodeId(0),
            name: QName::prefixed("ns", "thing"),
        });
        round_trip(Op::SetAttr {
            node: NodeId(3),
            name: QName::local("id"),
            value: "x y z".into(),
        });
        round_trip(Op::RemoveAttr {
            node: NodeId(3),
            name: QName::local("id"),
        });
        let subtree = Document::parse_fragment("<k a=\"1\"><l/>text<m/></k>").unwrap();
        round_trip(Op::Insert {
            position: InsertPosition::ChildAt(NodeId(9), 2),
            subtree: subtree.clone(),
            first_node: 100,
        });
        round_trip(Op::Insert {
            position: InsertPosition::After(NodeId(1)),
            subtree,
            first_node: 0,
        });
    }

    #[test]
    fn payload_with_xmlish_content_survives() {
        round_trip(Op::UpdateValue {
            node: NodeId(1),
            value: "</fake> <xml & entities>".into(),
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Op::decode("").is_err());
        assert!(Op::decode("Z 1").is_err());
        assert!(Op::decode("D notanumber").is_err());
        assert!(Op::decode("V 3 99:short").is_err());
        assert!(Op::decode("I sideways 1 0 9 4:<x/>").is_err());
    }
}
