//! Crash recovery: rebuild the committed document state from a base
//! checkpoint plus the WAL.
//!
//! "In case of a crash during commit, we may lose the new version of the
//! pageOffset table, the new size values of all ancestors, and parts of
//! the changes … All this information is present in the WAL, such that
//! during recovery an up-to-date version of the database can be
//! restored" (§3.2). Because our WAL holds *logical* redo records keyed
//! by immutable node ids, recovery is: load the latest checkpoint (the
//! genesis document, or a [`WalRecord::Checkpoint`] written by
//! [`crate::Shard::checkpoint`] when it truncated the log), then replay
//! every complete commit record after it in log order. Node-id
//! allocation is deterministic — and a checkpoint record carries the
//! live node ids plus the allocation point — so replay reproduces the
//! exact ids later records refer to.

use crate::wal::{decode_log, WalError, WalRecord};
use crate::{Result, TxnError};
use mbxq_storage::{PageConfig, PagedDoc, TreeView};

/// Rebuilds the document from genesis XML and the raw WAL bytes,
/// resuming from the last complete checkpoint record if the log holds
/// one (then `genesis_xml` is not even parsed).
///
/// Torn trailing records (a crash mid-commit) are ignored — those
/// transactions never committed; likewise a crash during checkpointing
/// leaves the previous log intact, so the pre-checkpoint history is
/// still replayable. A corrupt record *before* valid ones is reported as
/// an error (real corruption, not a crash artifact).
pub fn recover(genesis_xml: &str, cfg: PageConfig, wal_bytes: &[u8]) -> Result<PagedDoc> {
    let records = decode_log(wal_bytes).map_err(TxnError::Wal)?;
    let resume = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint { .. }));
    let (doc, skip) = match resume {
        Some(i) => (load_checkpoint(&records[i], cfg)?, i + 1),
        None => (PagedDoc::parse_str(genesis_xml, cfg)?, 0),
    };
    replay(doc, &records[skip..])
}

/// Rebuilds one catalog shard's document from its WAL bytes alone. A
/// shard WAL is *self-contained*: [`crate::Catalog::create_doc`] seeds
/// it with a checkpoint of the freshly-shredded document, so unlike
/// [`recover`] no genesis XML exists — a log without any complete
/// checkpoint record is corrupt, not empty. When `expect_doc` is given
/// and the checkpoint dump carries a document identity (see
/// [`mbxq_storage::checkpoint::checkpoint_dump_identity`]), the two must
/// agree — a shard WAL shuffled under another document's slot fails
/// loudly instead of serving the wrong document.
pub fn recover_shard(
    cfg: PageConfig,
    wal_bytes: &[u8],
    expect_doc: Option<&str>,
) -> Result<PagedDoc> {
    let records = decode_log(wal_bytes).map_err(TxnError::Wal)?;
    let resume = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint { .. }))
        .ok_or_else(|| {
            TxnError::Wal(WalError::Corrupt {
                message: "shard wal holds no checkpoint record".into(),
            })
        })?;
    if let (Some(expect), WalRecord::Checkpoint { dump, .. }) = (expect_doc, &records[resume]) {
        let identity = mbxq_storage::checkpoint::checkpoint_dump_identity(dump);
        if let Some(found) = identity {
            if found != expect {
                return Err(TxnError::Wal(WalError::Corrupt {
                    message: format!(
                        "shard wal belongs to document {found:?}, expected {expect:?}"
                    ),
                }));
            }
        }
    }
    let doc = load_checkpoint(&records[resume], cfg)?;
    replay(doc, &records[resume + 1..])
}

/// Materializes a checkpoint record, cross-checking its declared tuple
/// count against the dump.
fn load_checkpoint(record: &WalRecord, cfg: PageConfig) -> Result<PagedDoc> {
    let WalRecord::Checkpoint {
        alloc_end,
        tuples,
        dump,
    } = record
    else {
        unreachable!("caller matched a checkpoint");
    };
    let doc = PagedDoc::from_checkpoint_dump(dump, cfg, *alloc_end)?;
    if doc.used_count() != *tuples {
        return Err(TxnError::Wal(WalError::Corrupt {
            message: format!(
                "checkpoint declares {tuples} tuples but its dump carries {}",
                doc.used_count()
            ),
        }));
    }
    Ok(doc)
}

/// Replays every complete commit record onto `doc` in log order.
fn replay(mut doc: PagedDoc, records: &[WalRecord]) -> Result<PagedDoc> {
    for record in records {
        let WalRecord::Commit { txn, ops } = record else {
            continue; // a checkpoint can only sit at the log head
        };
        for op in ops {
            op.apply(&mut doc).map_err(|e| {
                TxnError::Wal(WalError::Corrupt {
                    message: format!("replay of txn {txn} failed: {e}"),
                })
            })?;
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Wal;
    use crate::{AncestorLockMode, Store, StoreConfig};
    use mbxq_storage::serialize::to_xml;
    use mbxq_storage::{InsertPosition, TreeView};
    use mbxq_xml::Document;
    use mbxq_xpath::XPath;

    const DOC: &str = r#"<site><people><person id="p0"><name>Ann</name></person></people><regions><africa/><asia/></regions></site>"#;

    fn cfg() -> PageConfig {
        PageConfig::new(8, 75).unwrap()
    }

    /// Runs a scripted workload against a fresh store, returning the
    /// final document XML and the raw WAL.
    fn run_workload(crash_at: Option<usize>) -> (Option<String>, Vec<u8>) {
        let doc = PagedDoc::parse_str(DOC, cfg()).unwrap();
        let mut wal = Wal::in_memory();
        if let Some(limit) = crash_at {
            wal.crash_after_bytes(limit);
        }
        let store = Store::open(
            doc,
            wal,
            StoreConfig {
                ancestor_mode: AncestorLockMode::Delta,
                lock_timeout: std::time::Duration::from_millis(200),
                validate_on_commit: true,
                ..StoreConfig::default()
            },
        );
        let mut final_xml = None;
        let mut crashed = false;
        for i in 0..4 {
            let mut t = store.begin();
            let people = match t.select(&XPath::parse("/site/people").unwrap()) {
                Ok(p) => p,
                Err(_) => {
                    crashed = true;
                    break;
                }
            };
            let frag = Document::parse_fragment(&format!(
                "<person id=\"g{i}\"><name>N{i}</name></person>"
            ))
            .unwrap();
            t.insert(InsertPosition::LastChildOf(people[0]), &frag)
                .unwrap();
            if i == 2 {
                // Mix in a delete of the second generated person's name.
                let victims = t
                    .select(&XPath::parse("//person[@id='g0']/name").unwrap())
                    .unwrap();
                t.delete(victims[0]).unwrap();
            }
            match t.commit() {
                Ok(_) => {}
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        if !crashed {
            final_xml = Some(to_xml(store.snapshot().as_ref()).unwrap());
        }
        let raw = store.wal_raw().unwrap();
        (final_xml, raw)
    }

    #[test]
    fn recovery_reproduces_the_committed_state() {
        let (final_xml, raw) = run_workload(None);
        let recovered = recover(DOC, cfg(), &raw).unwrap();
        assert_eq!(to_xml(&recovered).unwrap(), final_xml.unwrap());
        mbxq_storage::invariants::check_paged(&recovered).unwrap();
    }

    #[test]
    fn recovery_after_crash_yields_a_committed_prefix() {
        // First measure the intact log, then crash at every record-ish
        // boundary and a few interior byte positions.
        let (_, intact) = run_workload(None);
        for cut in [0, 1, intact.len() / 4, intact.len() / 2, intact.len() - 1] {
            let (_, raw) = run_workload(Some(cut));
            let recovered = recover(DOC, cfg(), &raw).unwrap();
            mbxq_storage::invariants::check_paged(&recovered).unwrap();
            // Whatever was recovered must be a prefix of the committed
            // history: g_i present implies g_{i-1} present.
            let xml = to_xml(&recovered).unwrap();
            let mut seen_gap = false;
            for i in 0..4 {
                let present = xml.contains(&format!("id=\"g{i}\""));
                if !present {
                    seen_gap = true;
                } else {
                    assert!(!seen_gap, "g{i} present after a missing earlier commit");
                }
            }
        }
    }

    #[test]
    fn recovery_replays_deterministic_node_ids() {
        // The workload's third transaction deletes a node *created by an
        // earlier transaction* — replay only works if node ids come out
        // identically. Covered by full-state equality, but assert the
        // specific condition too.
        let (final_xml, raw) = run_workload(None);
        let recovered = recover(DOC, cfg(), &raw).unwrap();
        assert!(final_xml.unwrap().contains("id=\"g0\""));
        // g0's name was deleted:
        assert!(!to_xml(&recovered).unwrap().contains("N0"));
        assert!(to_xml(&recovered).unwrap().contains("N1"));
    }

    #[test]
    fn empty_wal_recovers_the_checkpoint() {
        let recovered = recover(DOC, cfg(), b"").unwrap();
        assert_eq!(
            to_xml(&recovered).unwrap(),
            to_xml(&PagedDoc::parse_str(DOC, cfg()).unwrap()).unwrap()
        );
    }

    #[test]
    fn sizes_and_page_offsets_rebuilt() {
        let (_, raw) = run_workload(None);
        let recovered = recover(DOC, cfg(), &raw).unwrap();
        // Root size: 7 original + 4 inserts × 3 tuples − 2 deleted.
        assert_eq!(TreeView::size(&recovered, 0), 7 + 12 - 2);
    }
}
