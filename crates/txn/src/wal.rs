//! Write-ahead log.
//!
//! "Writing the WAL is the crucial stage in transaction commit, it
//! consists of a single I/O" (§3.2): a transaction's entire redo
//! content — its logical operations — travels in **one** commit record.
//! A record either lands completely or not at all; recovery treats a
//! torn trailing record as absent, which yields exactly the
//! committed-prefix semantics the paper's durability argument needs.
//!
//! Two backends: an in-memory buffer (tests, benchmarks) and a file
//! (durability across process restarts). Both support **crash
//! injection** — failing the append after a configured number of bytes —
//! so the recovery tests can cut the log at every possible point.

use crate::op::Op;
use crate::TxnId;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// WAL failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An injected crash (or real I/O failure) interrupted an append.
    Crashed {
        /// Bytes that made it out before the crash.
        bytes_written: usize,
    },
    /// Real I/O failure.
    Io {
        /// The OS error text.
        message: String,
    },
    /// The log contains an undecodable (non-trailing) record.
    Corrupt {
        /// Description.
        message: String,
    },
}

impl core::fmt::Display for WalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WalError::Crashed { bytes_written } => {
                write!(f, "crash injected after {bytes_written} bytes")
            }
            WalError::Io { message } => write!(f, "WAL I/O: {message}"),
            WalError::Corrupt { message } => write!(f, "WAL corrupt: {message}"),
        }
    }
}

impl std::error::Error for WalError {}

/// One WAL record. The paper's commit writes ancestor sizes, pageOffset
/// shifts and differential lists; our logical-redo equivalent carries
/// the operation list — replaying it regenerates all three.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed transaction with its redo operations.
    Commit {
        /// Transaction id.
        txn: TxnId,
        /// Redo operations in execution order.
        ops: Vec<Op>,
    },
}

enum Backend {
    Memory(Vec<u8>),
    File(std::fs::File, std::path::PathBuf),
}

/// The write-ahead log.
pub struct Wal {
    backend: Backend,
    /// If set, appending fails once the total byte count would exceed
    /// this limit — the crash-injection hook.
    crash_after_bytes: Option<usize>,
    bytes_written: usize,
}

impl Wal {
    /// An in-memory log (tests/benchmarks).
    pub fn in_memory() -> Wal {
        Wal {
            backend: Backend::Memory(Vec::new()),
            crash_after_bytes: None,
            bytes_written: 0,
        }
    }

    /// A file-backed log (appends + flush per record).
    pub fn file(path: &Path) -> Result<Wal, WalError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(|e| WalError::Io {
                message: e.to_string(),
            })?;
        let bytes_written = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
        Ok(Wal {
            backend: Backend::File(file, path.to_path_buf()),
            crash_after_bytes: None,
            bytes_written,
        })
    }

    /// Arms crash injection: the append that would push the total past
    /// `limit` bytes writes only the prefix up to the limit and fails —
    /// simulating a torn record at an arbitrary byte position.
    pub fn crash_after_bytes(&mut self, limit: usize) {
        self.crash_after_bytes = Some(limit);
    }

    /// Total bytes appended so far.
    pub fn len_bytes(&self) -> usize {
        self.bytes_written
    }

    /// Appends one record (the single commit I/O).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let encoded = encode_record(record);
        let bytes = encoded.as_bytes();
        let allowed = match self.crash_after_bytes {
            Some(limit) if self.bytes_written + bytes.len() > limit => {
                let prefix = limit.saturating_sub(self.bytes_written);
                self.write_raw(&bytes[..prefix])?;
                self.bytes_written += prefix;
                return Err(WalError::Crashed {
                    bytes_written: prefix,
                });
            }
            _ => bytes,
        };
        self.write_raw(allowed)?;
        self.bytes_written += allowed.len();
        Ok(())
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        match &mut self.backend {
            Backend::Memory(buf) => {
                buf.extend_from_slice(bytes);
                Ok(())
            }
            Backend::File(f, _) => {
                f.write_all(bytes)
                    .and_then(|_| f.flush())
                    .map_err(|e| WalError::Io {
                        message: e.to_string(),
                    })
            }
        }
    }

    /// The raw log contents (what a recovery process would find on disk).
    pub fn raw(&self) -> Result<Vec<u8>, WalError> {
        match &self.backend {
            Backend::Memory(buf) => Ok(buf.clone()),
            Backend::File(_, path) => std::fs::read(path).map_err(|e| WalError::Io {
                message: e.to_string(),
            }),
        }
    }

    /// Decodes all complete records; a torn trailing record is ignored
    /// (it never committed).
    pub fn read_all(&self) -> Result<Vec<WalRecord>, WalError> {
        decode_log(&self.raw()?)
    }
}

/// Record wire format (text, newline-free payloads thanks to
/// length-prefixed strings):
///
/// ```text
/// W <txn> <op-count> <byte-len-of-payload>\n<payload>\n
/// ```
///
/// where payload = ops joined by `\x1f`. The trailing `\n` completes the
/// record; recovery only accepts records whose full payload is present.
fn encode_record(record: &WalRecord) -> String {
    match record {
        WalRecord::Commit { txn, ops } => {
            let mut payload = String::new();
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    payload.push('\u{1f}');
                }
                op.encode(&mut payload);
            }
            let mut out = String::new();
            let _ = write!(out, "W {txn} {} {}\n{payload}\n", ops.len(), payload.len());
            out
        }
    }
}

/// Decodes a log buffer into its complete records.
pub fn decode_log(raw: &[u8]) -> Result<Vec<WalRecord>, WalError> {
    let text = String::from_utf8_lossy(raw);
    let mut records = Vec::new();
    let mut rest: &str = &text;
    while !rest.is_empty() {
        let Some(nl) = rest.find('\n') else {
            break; // torn header
        };
        let header = &rest[..nl];
        let body_start = nl + 1;
        let mut it = header.split(' ');
        let (Some("W"), Some(txn), Some(op_count), Some(len)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            // A torn record at the tail is fine; garbage in the middle is
            // corruption, but we cannot distinguish without consuming —
            // treat undecodable headers as the end of the valid prefix.
            break;
        };
        let (Ok(txn), Ok(op_count), Ok(len)) = (
            txn.parse::<u64>(),
            op_count.parse::<usize>(),
            len.parse::<usize>(),
        ) else {
            break;
        };
        if rest.len() < body_start + len + 1 {
            break; // torn payload — the record never committed
        }
        let payload = &rest[body_start..body_start + len];
        if rest.as_bytes()[body_start + len] != b'\n' {
            break; // missing terminator
        }
        let mut ops = Vec::with_capacity(op_count);
        if !payload.is_empty() {
            for chunk in payload.split('\u{1f}') {
                ops.push(Op::decode(chunk).map_err(|e| WalError::Corrupt {
                    message: format!("record of txn {txn}: {e}"),
                })?);
            }
        }
        if ops.len() != op_count {
            return Err(WalError::Corrupt {
                message: format!(
                    "record of txn {txn} declares {op_count} ops but carries {}",
                    ops.len()
                ),
            });
        }
        records.push(WalRecord::Commit { txn, ops });
        rest = &rest[body_start + len + 1..];
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::NodeId;

    fn sample_record(txn: TxnId) -> WalRecord {
        WalRecord::Commit {
            txn,
            ops: vec![
                Op::Delete { node: NodeId(5) },
                Op::UpdateValue {
                    node: NodeId(2),
                    value: "new text".into(),
                },
            ],
        }
    }

    #[test]
    fn append_read_round_trip() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        wal.append(&sample_record(2)).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], sample_record(1));
        assert_eq!(records[1], sample_record(2));
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        // Write two records, then replay logs cut at every byte: the
        // first record must survive any cut at or past its end; the
        // second must never half-apply.
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        let first_len = wal.len_bytes();
        wal.append(&sample_record(2)).unwrap();
        let raw = wal.raw().unwrap();
        for cut in 0..=raw.len() {
            let records = decode_log(&raw[..cut]).unwrap();
            if cut < first_len {
                assert!(records.is_empty(), "cut={cut}");
            } else if cut < raw.len() {
                assert_eq!(records.len(), 1, "cut={cut}");
            } else {
                assert_eq!(records.len(), 2);
            }
        }
    }

    #[test]
    fn crash_injection_cuts_the_log() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        wal.crash_after_bytes(wal.len_bytes() + 10);
        let err = wal.append(&sample_record(2)).unwrap_err();
        assert!(matches!(err, WalError::Crashed { bytes_written: 10 }));
        // Recovery sees only the first record.
        assert_eq!(wal.read_all().unwrap().len(), 1);
    }

    #[test]
    fn file_backend_persists() {
        let dir = std::env::temp_dir().join(format!("mbxq-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::file(&path).unwrap();
            wal.append(&sample_record(7)).unwrap();
        }
        let wal = Wal::file(&path).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records, vec![sample_record(7)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_payload_commit() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Commit {
            txn: 1,
            ops: vec![],
        })
        .unwrap();
        assert_eq!(
            wal.read_all().unwrap(),
            vec![WalRecord::Commit {
                txn: 1,
                ops: vec![]
            }]
        );
    }
}
