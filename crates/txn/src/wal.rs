//! Write-ahead log.
//!
//! "Writing the WAL is the crucial stage in transaction commit, it
//! consists of a single I/O" (§3.2): a transaction's entire redo
//! content — its logical operations — travels in **one** commit record.
//! A record either lands completely or not at all; recovery treats a
//! torn trailing record as absent, which yields exactly the
//! committed-prefix semantics the paper's durability argument needs.
//!
//! Two backends: an in-memory buffer (tests, benchmarks) and a file
//! (durability across process restarts). Both support **crash
//! injection** — failing the append after a configured number of bytes —
//! so the recovery tests can cut the log at every possible point.

use crate::op::Op;
use crate::TxnId;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// WAL failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An injected crash (or real I/O failure) interrupted an append.
    Crashed {
        /// Bytes that made it out before the crash.
        bytes_written: usize,
    },
    /// Real I/O failure.
    Io {
        /// The OS error text.
        message: String,
    },
    /// The log contains an undecodable (non-trailing) record.
    Corrupt {
        /// Description.
        message: String,
    },
}

impl core::fmt::Display for WalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WalError::Crashed { bytes_written } => {
                write!(f, "crash injected after {bytes_written} bytes")
            }
            WalError::Io { message } => write!(f, "WAL I/O: {message}"),
            WalError::Corrupt { message } => write!(f, "WAL corrupt: {message}"),
        }
    }
}

impl std::error::Error for WalError {}

/// One WAL record. The paper's commit writes ancestor sizes, pageOffset
/// shifts and differential lists; our logical-redo equivalent carries
/// the operation list — replaying it regenerates all three.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed transaction with its redo operations.
    Commit {
        /// Transaction id.
        txn: TxnId,
        /// Redo operations in execution order.
        ops: Vec<Op>,
    },
    /// A checkpoint: the full committed document state at the moment the
    /// log was truncated. Recovery resumes from the *last* complete
    /// checkpoint instead of replaying history from genesis.
    Checkpoint {
        /// One past the highest node id allocated so far — replayed
        /// inserts must not re-issue ids of deleted nodes.
        alloc_end: u64,
        /// Used-tuple count (integrity check for the dump).
        tuples: u64,
        /// The structure-preserving tuple dump
        /// ([`mbxq_storage::PagedDoc::checkpoint_dump`] format — not XML
        /// text, which would coalesce adjacent text tuples on reparse
        /// and desynchronize node ids).
        dump: String,
    },
}

enum Backend {
    Memory(Vec<u8>),
    File(std::fs::File, std::path::PathBuf),
}

/// The write-ahead log.
pub struct Wal {
    backend: Backend,
    /// If set, log I/O fails once the *cumulative* byte count would
    /// exceed this limit — the crash-injection hook.
    crash_after_bytes: Option<usize>,
    /// Current log length.
    bytes_written: usize,
    /// Cumulative bytes of log I/O ever attempted (survives truncation,
    /// so an armed crash budget keeps counting across a checkpoint).
    io_total: usize,
    /// Set after a *real* I/O failure mid-append: some unknown prefix of
    /// the failed write may have reached the log, so any further append
    /// could land after undecodable garbage — recovery would then stop
    /// at the garbage and silently drop the later, success-reported
    /// records. A poisoned log refuses all further writes.
    poisoned: bool,
}

impl Wal {
    /// An in-memory log (tests/benchmarks).
    pub fn in_memory() -> Wal {
        Wal {
            backend: Backend::Memory(Vec::new()),
            crash_after_bytes: None,
            bytes_written: 0,
            io_total: 0,
            poisoned: false,
        }
    }

    /// A file-backed log (appends + flush per record).
    pub fn file(path: &Path) -> Result<Wal, WalError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(|e| WalError::Io {
                message: e.to_string(),
            })?;
        let bytes_written = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
        Ok(Wal {
            backend: Backend::File(file, path.to_path_buf()),
            crash_after_bytes: None,
            bytes_written,
            io_total: bytes_written,
            poisoned: false,
        })
    }

    /// Arms crash injection: the log I/O that would push the cumulative
    /// total past `limit` bytes fails — an append writes only the prefix
    /// up to the limit (a torn record at an arbitrary byte position); a
    /// checkpoint rewrite fails atomically, leaving the old log intact.
    pub fn crash_after_bytes(&mut self, limit: usize) {
        self.crash_after_bytes = Some(limit);
    }

    /// Current log length in bytes.
    pub fn len_bytes(&self) -> usize {
        self.bytes_written
    }

    /// Appends one record (the single commit I/O) — a one-record
    /// [`Wal::append_batch`], so both paths share the same crash
    /// accounting.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        self.append_batch(std::slice::from_ref(record))
            .pop()
            .expect("one record in, one result out")
    }

    /// Appends a whole group-commit batch in **one** log I/O.
    ///
    /// All records are encoded into a single buffer and written (and
    /// flushed, on the file backend) together — this is the group-commit
    /// payoff: N committers share one I/O instead of queueing for N.
    /// Returns one result per record. Crash injection cuts the buffer at
    /// the armed byte offset, exactly as it would a sequence of single
    /// appends: records that land entirely before the cut succeed, the
    /// record straddling the cut is torn (recovery drops it), and
    /// everything after fails without touching the log — so a crashed
    /// batch is never "all or nothing" at batch granularity, but always
    /// all-or-nothing **per commit record**, which is the prefix
    /// semantics recovery needs.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> Vec<Result<(), WalError>> {
        if self.poisoned {
            return records
                .iter()
                .map(|_| {
                    Err(WalError::Io {
                        message: "WAL poisoned by an earlier I/O failure; the log tail is \
                                  unknown and further appends would be unrecoverable"
                            .to_string(),
                    })
                })
                .collect();
        }
        // Encode each record separately so per-record boundaries are
        // known, then write the concatenation in one I/O. Work in raw
        // bytes throughout: a crash budget cuts at an arbitrary *byte*
        // offset, which may fall inside a multi-byte character of an
        // op's payload (slicing a `str` there would panic instead of
        // simulating the torn write).
        let encoded: Vec<Vec<u8>> = records
            .iter()
            .map(|r| encode_record(r).into_bytes())
            .collect();
        let total: usize = encoded.iter().map(Vec::len).sum();
        let allowed = match self.crash_after_bytes {
            Some(limit) => limit.saturating_sub(self.io_total).min(total),
            None => total,
        };
        let mut buf = Vec::with_capacity(allowed);
        let mut results = Vec::with_capacity(records.len());
        let mut offset = 0usize;
        for enc in &encoded {
            if offset + enc.len() <= allowed {
                buf.extend_from_slice(enc);
                results.push(Ok(()));
            } else {
                // Torn (partially within the budget) or entirely past
                // it: write whatever prefix survives, fail the record.
                let prefix = allowed.saturating_sub(offset);
                buf.extend_from_slice(&enc[..prefix]);
                results.push(Err(WalError::Crashed {
                    bytes_written: prefix,
                }));
            }
            offset += enc.len();
        }
        debug_assert_eq!(buf.len(), allowed);
        if let Err(io) = self.write_raw(&buf) {
            // A real I/O failure fails every record in the batch — none
            // of them is known durable — and poisons the log: an unknown
            // prefix of `buf` may have landed, so appending anything
            // after it could bury later (durable, success-reported)
            // records behind undecodable bytes at recovery time.
            self.poisoned = true;
            return records.iter().map(|_| Err(io.clone())).collect();
        }
        self.bytes_written += allowed;
        match self.crash_after_bytes {
            // Crash tripped: pin the cumulative counter at the limit so
            // every later append fails too, mirroring `append`.
            Some(limit) if allowed < total => self.io_total = limit,
            _ => self.io_total += total,
        }
        results
    }

    /// Atomically replaces the whole log with `record` — the checkpoint
    /// truncation. Either the new log (just the checkpoint record) or
    /// the old log survives; a crash mid-rewrite never leaves a
    /// truncated log, mirroring the write-temp-then-rename protocol the
    /// file backend actually uses.
    pub fn reset_with(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let encoded = encode_record(record);
        let bytes = encoded.as_bytes();
        if let Some(limit) = self.crash_after_bytes {
            if self.io_total + bytes.len() > limit {
                // The crash hit while writing the checkpoint's temp
                // file; the live log is untouched.
                self.io_total = limit;
                return Err(WalError::Crashed { bytes_written: 0 });
            }
        }
        match &mut self.backend {
            Backend::Memory(buf) => {
                buf.clear();
                buf.extend_from_slice(bytes);
            }
            Backend::File(f, path) => {
                let tmp = path.with_extension("wal-tmp");
                let io = |e: std::io::Error| WalError::Io {
                    message: e.to_string(),
                };
                // The temp file's *data* must be on the device before
                // the rename makes it the log: a journaled rename can
                // survive a power cut that the un-synced data blocks do
                // not, which would replace every durable record with an
                // empty/partial checkpoint — the one failure mode a
                // checkpoint must never introduce.
                let mut tmp_file = std::fs::File::create(&tmp).map_err(io)?;
                tmp_file.write_all(bytes).map_err(io)?;
                tmp_file.sync_all().map_err(io)?;
                drop(tmp_file);
                std::fs::rename(&tmp, &*path).map_err(io)?;
                // Persist the rename itself (the directory entry);
                // best-effort on platforms where directories cannot be
                // opened for sync.
                if let Some(dir) = path.parent() {
                    if let Ok(d) = std::fs::File::open(dir) {
                        let _ = d.sync_all();
                    }
                }
                *f = std::fs::OpenOptions::new()
                    .append(true)
                    .read(true)
                    .open(&*path)
                    .map_err(io)?;
            }
        }
        self.bytes_written = bytes.len();
        self.io_total += bytes.len();
        // The whole log was atomically replaced by this one record: any
        // garbage a previously failed append may have left is gone, so a
        // poisoned log becomes writable again through exactly this path
        // (Store::checkpoint is the recovery action for a sick WAL).
        self.poisoned = false;
        Ok(())
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        match &mut self.backend {
            Backend::Memory(buf) => {
                buf.extend_from_slice(bytes);
                Ok(())
            }
            Backend::File(f, _) => f
                .write_all(bytes)
                // A WAL append is only durable once the bytes reach the
                // device: fsync per log I/O. This is exactly the cost
                // group commit amortizes — one sync per *batch*.
                .and_then(|_| f.sync_data())
                .map_err(|e| WalError::Io {
                    message: e.to_string(),
                }),
        }
    }

    /// The raw log contents (what a recovery process would find on disk).
    pub fn raw(&self) -> Result<Vec<u8>, WalError> {
        match &self.backend {
            Backend::Memory(buf) => Ok(buf.clone()),
            Backend::File(_, path) => std::fs::read(path).map_err(|e| WalError::Io {
                message: e.to_string(),
            }),
        }
    }

    /// Decodes all complete records; a torn trailing record is ignored
    /// (it never committed).
    pub fn read_all(&self) -> Result<Vec<WalRecord>, WalError> {
        decode_log(&self.raw()?)
    }
}

/// Record wire format (text; payload lengths are explicit, so payloads
/// may contain anything including newlines):
///
/// ```text
/// W <txn> <op-count> <byte-len-of-payload>\n<payload>\n
/// C <alloc-end> <tuple-count> <byte-len-of-payload>\n<payload>\n
/// ```
///
/// A commit payload is the ops joined by `\x1f`; a checkpoint payload is
/// the tuple dump. The trailing `\n` completes the record; recovery only
/// accepts records whose full payload is present.
fn encode_record(record: &WalRecord) -> String {
    match record {
        WalRecord::Commit { txn, ops } => {
            let mut payload = String::new();
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    payload.push('\u{1f}');
                }
                op.encode(&mut payload);
            }
            let mut out = String::new();
            let _ = write!(out, "W {txn} {} {}\n{payload}\n", ops.len(), payload.len());
            out
        }
        WalRecord::Checkpoint {
            alloc_end,
            tuples,
            dump,
        } => {
            let mut out = String::new();
            let _ = write!(out, "C {alloc_end} {tuples} {}\n{dump}\n", dump.len());
            out
        }
    }
}

/// Decodes a log buffer into its complete records.
pub fn decode_log(raw: &[u8]) -> Result<Vec<WalRecord>, WalError> {
    let text = String::from_utf8_lossy(raw);
    let mut records = Vec::new();
    let mut rest: &str = &text;
    while !rest.is_empty() {
        let Some(nl) = rest.find('\n') else {
            break; // torn header
        };
        let header = &rest[..nl];
        let body_start = nl + 1;
        let mut it = header.split(' ');
        let (Some(tag @ ("W" | "C")), Some(a), Some(b), Some(len)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            // A torn record at the tail is fine; garbage in the middle is
            // corruption, but we cannot distinguish without consuming —
            // treat undecodable headers as the end of the valid prefix.
            break;
        };
        let (Ok(a), Ok(b), Ok(len)) = (a.parse::<u64>(), b.parse::<usize>(), len.parse::<usize>())
        else {
            break;
        };
        if rest.len() < body_start + len + 1 {
            break; // torn payload — the record never committed
        }
        let payload = &rest[body_start..body_start + len];
        if rest.as_bytes()[body_start + len] != b'\n' {
            break; // missing terminator
        }
        match tag {
            "W" => {
                let (txn, op_count) = (a, b);
                let mut ops = Vec::with_capacity(op_count);
                if !payload.is_empty() {
                    for chunk in payload.split('\u{1f}') {
                        ops.push(Op::decode(chunk).map_err(|e| WalError::Corrupt {
                            message: format!("record of txn {txn}: {e}"),
                        })?);
                    }
                }
                if ops.len() != op_count {
                    return Err(WalError::Corrupt {
                        message: format!(
                            "record of txn {txn} declares {op_count} ops but carries {}",
                            ops.len()
                        ),
                    });
                }
                records.push(WalRecord::Commit { txn, ops });
            }
            "C" => {
                records.push(WalRecord::Checkpoint {
                    alloc_end: a,
                    tuples: b as u64,
                    dump: payload.to_string(),
                });
            }
            _ => unreachable!("tag matched above"),
        }
        rest = &rest[body_start + len + 1..];
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::NodeId;

    fn sample_record(txn: TxnId) -> WalRecord {
        WalRecord::Commit {
            txn,
            ops: vec![
                Op::Delete { node: NodeId(5) },
                Op::UpdateValue {
                    node: NodeId(2),
                    value: "new text".into(),
                },
            ],
        }
    }

    #[test]
    fn append_read_round_trip() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        wal.append(&sample_record(2)).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], sample_record(1));
        assert_eq!(records[1], sample_record(2));
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        // Write two records, then replay logs cut at every byte: the
        // first record must survive any cut at or past its end; the
        // second must never half-apply.
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        let first_len = wal.len_bytes();
        wal.append(&sample_record(2)).unwrap();
        let raw = wal.raw().unwrap();
        for cut in 0..=raw.len() {
            let records = decode_log(&raw[..cut]).unwrap();
            if cut < first_len {
                assert!(records.is_empty(), "cut={cut}");
            } else if cut < raw.len() {
                assert_eq!(records.len(), 1, "cut={cut}");
            } else {
                assert_eq!(records.len(), 2);
            }
        }
    }

    #[test]
    fn crash_injection_cuts_the_log() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        wal.crash_after_bytes(wal.len_bytes() + 10);
        let err = wal.append(&sample_record(2)).unwrap_err();
        assert!(matches!(err, WalError::Crashed { bytes_written: 10 }));
        // Recovery sees only the first record.
        assert_eq!(wal.read_all().unwrap().len(), 1);
    }

    #[test]
    fn file_backend_persists() {
        let dir = std::env::temp_dir().join(format!("mbxq-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::file(&path).unwrap();
            wal.append(&sample_record(7)).unwrap();
        }
        let wal = Wal::file(&path).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records, vec![sample_record(7)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_batch_matches_sequential_appends() {
        let mut solo = Wal::in_memory();
        solo.append(&sample_record(1)).unwrap();
        solo.append(&sample_record(2)).unwrap();
        solo.append(&sample_record(3)).unwrap();
        let mut batched = Wal::in_memory();
        let results = batched.append_batch(&[sample_record(1), sample_record(2), sample_record(3)]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(batched.raw().unwrap(), solo.raw().unwrap());
        assert_eq!(batched.len_bytes(), solo.len_bytes());
    }

    #[test]
    fn append_batch_crash_is_all_or_nothing_per_record() {
        // Find the length of one record, then arm the budget so the
        // batch tears inside its second record.
        let mut probe = Wal::in_memory();
        probe.append(&sample_record(1)).unwrap();
        let one = probe.len_bytes();
        let mut wal = Wal::in_memory();
        wal.crash_after_bytes(one + 7);
        let results = wal.append_batch(&[sample_record(1), sample_record(2), sample_record(3)]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(WalError::Crashed { bytes_written: 7 })
        ));
        assert!(matches!(
            results[2],
            Err(WalError::Crashed { bytes_written: 0 })
        ));
        // Recovery: the full first record, the torn second dropped.
        assert_eq!(wal.read_all().unwrap(), vec![sample_record(1)]);
        // The crash budget stays tripped for later appends, like append.
        assert!(wal.append(&sample_record(4)).is_err());
        assert!(wal.append_batch(&[sample_record(5)])[0].is_err());
    }

    /// Regression: a crash budget may cut *inside a multi-byte UTF-8
    /// character* of a record payload; the torn write must be simulated
    /// byte-exactly, not panic on a `str` char boundary.
    #[test]
    fn crash_cut_inside_a_multibyte_character() {
        let multibyte = WalRecord::Commit {
            txn: 9,
            ops: vec![Op::UpdateValue {
                node: NodeId(1),
                value: "caffè—日本語".into(),
            }],
        };
        let mut probe = Wal::in_memory();
        probe.append(&sample_record(1)).unwrap();
        let first = probe.len_bytes();
        probe.append(&multibyte).unwrap();
        let second = probe.len_bytes() - first;
        // Probe every cut point across the multibyte record, for both
        // the solo-append and the batched path.
        for cut in 0..second {
            let mut wal = Wal::in_memory();
            wal.crash_after_bytes(first + cut);
            wal.append(&sample_record(1)).unwrap();
            assert!(wal.append(&multibyte).is_err(), "cut={cut}");
            assert_eq!(wal.read_all().unwrap(), vec![sample_record(1)]);

            let mut wal = Wal::in_memory();
            wal.crash_after_bytes(first + cut);
            let results = wal.append_batch(&[sample_record(1), multibyte.clone()]);
            assert!(results[0].is_ok() && results[1].is_err(), "cut={cut}");
            assert_eq!(wal.read_all().unwrap(), vec![sample_record(1)]);
        }
    }

    fn sample_checkpoint() -> WalRecord {
        WalRecord::Checkpoint {
            alloc_end: 17,
            tuples: 2,
            dump: "E 0 0 1:r T 2 1 9:line\none\n A 0 1:k 3:v v ".into(),
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_checkpoint()).unwrap();
        wal.append(&sample_record(3)).unwrap();
        let records = wal.read_all().unwrap();
        assert_eq!(records[0], sample_checkpoint());
        assert_eq!(records[1], sample_record(3));
    }

    /// After a real I/O failure the log refuses appends (the failed
    /// write's tail is unknown — anything appended after it could bury
    /// durable records behind garbage at recovery), and a checkpoint
    /// truncation — which atomically replaces the whole log — heals it.
    #[test]
    fn poisoned_log_refuses_appends_until_truncated() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        wal.poisoned = true; // what a failed write_raw records
        assert!(matches!(
            wal.append(&sample_record(2)),
            Err(WalError::Io { .. })
        ));
        assert!(wal.append_batch(&[sample_record(3)])[0].is_err());
        // The existing log stays readable.
        assert_eq!(wal.read_all().unwrap(), vec![sample_record(1)]);
        // Checkpoint truncation replaces the unknown tail → healthy again.
        wal.reset_with(&sample_checkpoint()).unwrap();
        assert!(!wal.poisoned);
        wal.append(&sample_record(4)).unwrap();
        assert_eq!(
            wal.read_all().unwrap(),
            vec![sample_checkpoint(), sample_record(4)]
        );
    }

    #[test]
    fn reset_with_truncates_to_one_checkpoint() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        wal.append(&sample_record(2)).unwrap();
        let before = wal.len_bytes();
        wal.reset_with(&sample_checkpoint()).unwrap();
        assert!(wal.len_bytes() < before + 100);
        assert_eq!(wal.read_all().unwrap(), vec![sample_checkpoint()]);
        wal.append(&sample_record(9)).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 2);
    }

    #[test]
    fn crashed_reset_leaves_the_old_log_intact() {
        let mut wal = Wal::in_memory();
        wal.append(&sample_record(1)).unwrap();
        wal.crash_after_bytes(wal.len_bytes() + 5);
        let err = wal.reset_with(&sample_checkpoint()).unwrap_err();
        assert!(matches!(err, WalError::Crashed { bytes_written: 0 }));
        // The pre-checkpoint history is still fully readable.
        assert_eq!(wal.read_all().unwrap(), vec![sample_record(1)]);
    }

    #[test]
    fn file_backend_reset_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("mbxq-wal-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::file(&path).unwrap();
            wal.append(&sample_record(1)).unwrap();
            wal.reset_with(&sample_checkpoint()).unwrap();
            wal.append(&sample_record(2)).unwrap();
        }
        let wal = Wal::file(&path).unwrap();
        assert_eq!(
            wal.read_all().unwrap(),
            vec![sample_checkpoint(), sample_record(2)]
        );
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn empty_payload_commit() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Commit {
            txn: 1,
            ops: vec![],
        })
        .unwrap();
        assert_eq!(
            wal.read_all().unwrap(),
            vec![WalRecord::Commit {
                txn: 1,
                ops: vec![]
            }]
        );
    }
}
