//! `mbxq-txn` — ACID transactions over the paged XML store (§3.2).
//!
//! The paper's transaction protocol (Figure 8) combines:
//!
//! * **multi-version isolation** — writers work against a copy-on-write
//!   view; readers "just acquire a global read-lock while they run". Here
//!   readers take an [`Arc`] snapshot of the committed document (the
//!   in-memory equivalent of MonetDB's copy-on-write memory maps: the
//!   snapshot shares all state until a commit installs a new version), so
//!   they never block and never see intermediate states.
//! * **strict two-phase page locking between writers** — a write
//!   transaction read-locks the pages its XPath selections touch and
//!   write-locks the pages it updates, holding all locks until commit.
//! * **commutative delta-increments for ancestor sizes** — the key trick
//!   that keeps the document root from becoming a lock bottleneck: a
//!   transaction never locks its ancestors' pages (in
//!   [`AncestorLockMode::Delta`] mode); ancestor `size` values are
//!   adjusted by *deltas* at commit, under the short global write lock,
//!   and "as delta operations are commutative, it does not matter in
//!   which order they are executed". The [`AncestorLockMode::Exclusive`]
//!   baseline write-locks the whole ancestor chain instead — the
//!   strawman the concurrency benchmark compares against.
//! * **write-ahead logging** — the commit's crucial stage is a single
//!   WAL append holding the transaction's logical redo records; recovery
//!   replays the committed prefix (module [`wal`] / [`recover`]).
//!
//! Commit applies the staged operations to the master document under the
//! global write lock and publishes a fresh `Arc` version; because node
//! ids are immutable and operations are logged logically (by node id),
//! replay order = commit order reproduces the exact same state.
//!
//! # O(touched-pages) commits
//!
//! The new version is **not** a deep copy. [`mbxq_storage::PagedDoc`]
//! stores every column as shared copy-on-write pages
//! (`mbxq_bat::CowVec`), so `clone` copies page *pointers* and each
//! staged operation privatizes exactly the column pages it writes, plus
//! the pages holding the delta-adjusted ancestor sizes. The critical
//! section is therefore proportional to the update volume, never to the
//! document: publishing swaps page pointers under the short global lock,
//! and every reader snapshot keeps sharing all untouched pages with the
//! new master — the in-memory realization of MonetDB's copy-on-write
//! memory maps from §3.2. Locks are released on *every* commit exit path
//! (success, validation failure, apply failure, WAL crash), so a failed
//! commit can never strand page locks.
//!
//! # The short-publish commit pipeline
//!
//! With the default [`CommitPipeline::Short`], the global commit lock
//! covers **only the version-stamp recheck and the pointer-swap
//! publish** — nothing else. A commit runs three phases:
//!
//! ```text
//!  phase 1 · SPECULATE   no global lock.  COW-clone the committed
//!                        version (stamp S), apply the redo ops
//!                        (privatizing only their pages), validate.
//!  phase 2 · LOG         no global lock.  Group-commit WAL append:
//!                        the first committer to arrive leads a batch
//!                        flush (one I/O for every record that queued
//!                        up meanwhile); followers wait on the flush
//!                        ticket (module [`group`]).
//!  phase 3 · PUBLISH     global lock, O(1).  Re-read the stamp: if
//!                        still S, swap the speculative version in; if
//!                        some other commit published S' > S meanwhile,
//!                        re-apply the ops onto the fresh master (page
//!                        locks guarantee the targets are untouched,
//!                        ancestor deltas commute) and swap that in.
//! ```
//!
//! Page-lock validation therefore happens at *staging* time, COW page
//! privatization at *speculation* time, and N concurrent committers
//! serialize only on an O(touched-pages) re-apply in the worst case —
//! never on log I/O. Readers never appear in this picture at all:
//! [`Store::snapshot`] clones the committed `Arc` out of a lock-free
//! [`mbxq_storage::ArcCell`] (no mutex, no rwlock), so reader latency is
//! independent of writer load. The WAL may record two *concurrent*
//! (page-disjoint, hence commutative) commits in the opposite order of
//! their publishes; replaying the log still reproduces the published
//! state exactly, which `tests/concurrent_oracle.rs` checks property-
//! style. [`CommitPipeline::LongLock`] preserves the old
//! everything-under-one-lock path as the ablation baseline for the
//! `workload` benchmark.
//!
//! # Checkpointing
//!
//! The WAL grows with every commit, and recovery replays it from
//! genesis. [`Store::checkpoint`] bounds both: under the commit lock it
//! serializes the current version (with its node ids and the id
//! allocation point) into a [`wal::WalRecord::Checkpoint`], then
//! atomically truncates the log to just that record. [`recover`] resumes
//! from the latest checkpoint instead of genesis. [`Store::vacuum`] and
//! [`Store::occupancy`] complete the maintenance surface: page
//! reorganization runs under the same commit lock and publishes like a
//! commit does.

pub mod group;
pub mod locks;
pub mod op;
pub mod recover;
pub mod wal;

pub use group::GroupCommitStats;

use mbxq_storage::{ArcCell, InsertPosition, NodeId, PagedDoc, StorageError, TreeView};
use mbxq_xml::Node;
use mbxq_xpath::XPath;
use op::Op;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;
use wal::{Wal, WalRecord};

/// How a write transaction treats the pages of its targets' ancestors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AncestorLockMode {
    /// The paper's scheme: ancestors are *not* locked; their sizes are
    /// updated by commutative delta-increments at commit.
    Delta,
    /// The strawman: write-lock every ancestor's page (the root's page is
    /// an ancestor page of every node, so all writers serialize).
    Exclusive,
}

/// Which commit pipeline the store runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPipeline {
    /// The concurrent pipeline: COW apply + validation speculate outside
    /// any global lock against a version stamp, the WAL append rides a
    /// group-commit batch, and the global lock covers only the stamp
    /// recheck + pointer-swap publish.
    Short,
    /// The serial baseline (the pre-group-commit behavior): one global
    /// lock held across apply, validation, the WAL append *and* publish,
    /// so concurrent committers serialize on log I/O. Kept for the
    /// `workload` benchmark ablation.
    LongLock,
}

/// Transaction identifiers.
pub type TxnId = u64;

/// Errors of the transaction layer.
#[derive(Debug)]
pub enum TxnError {
    /// A page lock could not be acquired in time (conflict/deadlock).
    LockTimeout {
        /// The contended logical page.
        page: usize,
    },
    /// Underlying storage failure.
    Storage(StorageError),
    /// XPath failure during selection.
    Path(mbxq_xpath::XPathError),
    /// WAL I/O failure (including injected crashes).
    Wal(wal::WalError),
    /// Commit-time validation failed; the transaction was aborted.
    ValidationFailed {
        /// What the validator reported.
        message: String,
    },
    /// A maintenance operation (vacuum) found write transactions in
    /// flight; retry when the writers have finished.
    Busy {
        /// Pages currently locked by in-flight transactions.
        locked_pages: usize,
    },
    /// A vacuum relocated tuples across logical pages after this
    /// transaction took its snapshot but before it acquired its first
    /// page lock — its page numbering (and therefore lock disjointness)
    /// would be stale. Abort and retry on a fresh snapshot.
    LayoutChanged,
}

impl core::fmt::Display for TxnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TxnError::LockTimeout { page } => write!(f, "lock timeout on logical page {page}"),
            TxnError::Storage(e) => write!(f, "storage: {e}"),
            TxnError::Path(e) => write!(f, "xpath: {e}"),
            TxnError::Wal(e) => write!(f, "wal: {e}"),
            TxnError::ValidationFailed { message } => write!(f, "validation failed: {message}"),
            TxnError::Busy { locked_pages } => {
                write!(f, "store busy: {locked_pages} pages locked by writers")
            }
            TxnError::LayoutChanged => {
                write!(
                    f,
                    "page layout reorganized since this transaction began; retry"
                )
            }
        }
    }
}

impl std::error::Error for TxnError {}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

impl From<mbxq_xpath::XPathError> for TxnError {
    fn from(e: mbxq_xpath::XPathError) -> Self {
        TxnError::Path(e)
    }
}

impl From<wal::WalError> for TxnError {
    fn from(e: wal::WalError) -> Self {
        TxnError::Wal(e)
    }
}

/// Result alias for transaction operations.
pub type Result<T> = std::result::Result<T, TxnError>;

/// Configuration of a transactional store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Ancestor locking strategy.
    pub ancestor_mode: AncestorLockMode,
    /// Lock acquisition timeout (doubles as deadlock detection).
    pub lock_timeout: Duration,
    /// Run the structural invariant checker before every commit (the
    /// "XML document validation" stage of Figure 8). Expensive; on by
    /// default in tests, off in benchmarks.
    pub validate_on_commit: bool,
    /// Commit critical-section layout ([`CommitPipeline::Short`] unless
    /// the serial baseline is explicitly requested).
    pub pipeline: CommitPipeline,
    /// Threads for morsel-parallel query execution (`0` or `1` =
    /// sequential, no pool). The store lazily spawns one shared
    /// [`mbxq_xpath::WorkerPool`] of this width on the first query and
    /// injects it into every [`Store::query_opts`] evaluation.
    pub query_threads: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_secs(5),
            validate_on_commit: false,
            pipeline: CommitPipeline::Short,
            query_threads: 0,
        }
    }
}

/// Outcome statistics of a successful commit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitInfo {
    /// Transaction id.
    pub txn: TxnId,
    /// Operations applied.
    pub ops: usize,
    /// Tuples inserted.
    pub inserted: u64,
    /// Tuples deleted.
    pub deleted: u64,
    /// Distinct ancestors that received size deltas.
    pub ancestors_touched: u64,
}

/// One published version of the document: the stamp and the document
/// pointer travel in a single `Arc`, so readers observe both atomically.
struct Version {
    /// Monotonic publish counter — bumped by every commit, checkpoint
    /// and vacuum. Speculative commits key their work on it and re-check
    /// it under the commit lock.
    stamp: u64,
    /// The committed document.
    doc: Arc<PagedDoc>,
}

/// A transactional, versioned XML document store.
pub struct Store {
    /// The committed version. Readers clone the `Arc` out of the
    /// lock-free cell (MVCC snapshot) — they never touch any lock, so
    /// snapshot latency is independent of writer traffic.
    version: ArcCell<Version>,
    /// The global write lock of Figure 8 — in the
    /// [`CommitPipeline::Short`] pipeline it is held **only** for the
    /// stamp recheck + pointer-swap publish.
    commit_lock: Mutex<()>,
    /// Commit-pipeline gate: commits hold it shared from their WAL
    /// append through their publish; [`Store::checkpoint`] takes it
    /// exclusively so the log truncation can never discard a record
    /// whose effects are still on their way to being published.
    pipeline_gate: RwLock<()>,
    wal: Mutex<Wal>,
    /// Group-commit coordinator batching concurrent WAL appends.
    group: group::GroupCommit,
    locks: locks::LockManager,
    next_txn: AtomicU64,
    /// Shared node-id allocation point: transactions reserve id ranges
    /// here at staging time, so ids are identical in the transaction's
    /// workspace, at commit replay, and during recovery.
    next_node: AtomicU64,
    /// Bumped by [`Store::vacuum`] (which relocates tuples across
    /// logical pages). Transactions verify it *after* acquiring page
    /// locks: a held lock blocks vacuum, so an unchanged epoch at that
    /// point proves the lock's page numbering is current.
    layout_epoch: AtomicU64,
    /// Compiled-plan cache for [`Store::query`], keyed by query text,
    /// with LRU eviction of single entries at the cap.
    plans: Mutex<PlanCache>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
    /// Shared morsel-execution pool (lazily spawned on first query when
    /// [`StoreConfig::query_threads`] ≥ 2). One pool per store: queries
    /// borrow it per evaluation; its workers outlive every snapshot
    /// they read because `run` blocks until all morsels finish.
    query_pool: OnceLock<mbxq_xpath::WorkerPool>,
    config: StoreConfig,
}

/// The [`Store::query`] plan cache: map + logical clock for LRU.
#[derive(Default)]
struct PlanCache {
    map: HashMap<String, CachedPlan>,
    /// Monotonic use counter; every hit/insert stamps its entry.
    tick: u64,
}

/// One [`Store::query`] cache entry: the compiled plan plus the layout
/// epoch it was compiled under. A vacuum reorganizes the page layout
/// (and re-costs every strategy surface), so an epoch bump invalidates
/// the entry and the next use recompiles.
struct CachedPlan {
    epoch: u64,
    plan: Arc<XPath>,
    /// [`PlanCache::tick`] of the most recent use (LRU victim choice).
    last_used: u64,
}

/// Counters of the per-store plan cache (see [`Store::plan_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Queries answered with an already-compiled plan.
    pub hits: u64,
    /// Queries that compiled (first use, or a stale epoch).
    pub misses: u64,
    /// Entries evicted to stay under the capacity (LRU victims and
    /// stale-epoch drops).
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

impl Store {
    /// Opens a store over an already-shredded document.
    pub fn open(doc: PagedDoc, wal: Wal, config: StoreConfig) -> Store {
        let next_node = doc.node_alloc_end();
        Store {
            version: ArcCell::new(Arc::new(Version {
                stamp: 0,
                doc: Arc::new(doc),
            })),
            commit_lock: Mutex::new(()),
            pipeline_gate: RwLock::new(()),
            wal: Mutex::new(wal),
            group: group::GroupCommit::new(),
            locks: locks::LockManager::new(),
            next_txn: AtomicU64::new(1),
            next_node: AtomicU64::new(next_node),
            layout_epoch: AtomicU64::new(0),
            plans: Mutex::new(PlanCache::default()),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_evictions: AtomicU64::new(0),
            query_pool: OnceLock::new(),
            config,
        }
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Takes a consistent read snapshot (a read-only transaction).
    /// **Lock-free**: a handful of atomic operations on the version
    /// cell, never a mutex or rwlock — see [`mbxq_storage::ArcCell`] —
    /// so readers are unaffected by writer load. The snapshot stays
    /// valid and immutable no matter what commits afterwards.
    pub fn snapshot(&self) -> Arc<PagedDoc> {
        self.version.load().doc.clone()
    }

    /// The current publish stamp (bumped by every commit, checkpoint and
    /// vacuum). Diagnostic: the concurrency tests use it to enumerate
    /// published versions.
    pub fn version_stamp(&self) -> u64 {
        self.version.load().stamp
    }

    /// Cumulative group-commit counters ([`GroupCommitStats`]); under
    /// concurrent commit load, `records` outgrowing `batches` proves
    /// committers shared flush I/Os.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.group.stats()
    }

    /// Publishes `doc` as the next version. Caller MUST hold
    /// `commit_lock` (publishes are serialized; the cell itself only
    /// protects readers).
    fn publish_locked(&self, doc: PagedDoc) {
        let stamp = self.version.load().stamp + 1;
        self.version.store(Arc::new(Version {
            stamp,
            doc: Arc::new(doc),
        }));
    }

    /// Begins a write transaction.
    pub fn begin(&self) -> WriteTxn<'_> {
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        WriteTxn {
            store: self,
            id,
            // Epoch is read BEFORE the snapshot: vacuum publishes before
            // bumping, so observing the new epoch implies the snapshot
            // read below sees the new layout (never new-epoch/old-doc).
            epoch: self.layout_epoch.load(Ordering::Acquire),
            snapshot: self.snapshot(),
            work: None,
            ops: Vec::new(),
            finished: false,
        }
    }

    /// Consumes the store, returning the current document and the WAL.
    pub fn into_parts(self) -> (PagedDoc, Wal) {
        let doc_arc = match Arc::try_unwrap(self.version.into_inner()) {
            Ok(version) => version.doc,
            Err(shared) => shared.doc.clone(),
        };
        let doc = Arc::try_unwrap(doc_arc).unwrap_or_else(|arc| (*arc).clone());
        (doc, self.wal.into_inner().unwrap())
    }

    /// Runs `f` with the committed document (convenience for queries that
    /// do not need a long-lived snapshot).
    pub fn with_doc<R>(&self, f: impl FnOnce(&PagedDoc) -> R) -> R {
        f(&self.snapshot())
    }

    /// Number of logical pages currently locked by in-flight write
    /// transactions (diagnostic; the regression tests for the
    /// commit-path lock leak assert on it).
    pub fn locked_pages(&self) -> usize {
        self.locks.locked_pages()
    }

    /// Writes a checkpoint and truncates the WAL to it.
    ///
    /// Under the commit lock (so no commit interleaves), the current
    /// version is serialized — as a structure-preserving tuple dump
    /// carrying every node id plus the id allocation point, *not* as XML
    /// text, which would coalesce adjacent text tuples on reparse — into
    /// a [`wal::WalRecord::Checkpoint`], and the log is atomically
    /// replaced by that single record. [`recover`] then resumes from the
    /// checkpoint instead of replaying history from genesis, and the log
    /// stops growing without bound. A crash during checkpointing leaves
    /// the previous log intact (write-temp-then-rename).
    pub fn checkpoint(&self) -> Result<CheckpointInfo> {
        // Exclusive pipeline gate first: a Short-pipeline commit holds
        // the gate shared from its WAL append through its publish, so
        // once the write side is granted, no commit record in the log
        // is still waiting to be published — truncating cannot lose an
        // in-flight commit. (Lock order: gate, then commit lock; the
        // commit path uses the same order.)
        let _gate = self.pipeline_gate.write().unwrap();
        let _global = self.commit_lock.lock().unwrap();
        let doc = self.snapshot();
        let record = WalRecord::Checkpoint {
            alloc_end: doc.node_alloc_end(),
            tuples: doc.used_count(),
            dump: doc.checkpoint_dump(),
        };
        let mut wal = self.wal.lock().unwrap();
        let wal_bytes_before = wal.len_bytes();
        wal.reset_with(&record)?;
        // Checkpoints double as the pool/attr-index maintenance point:
        // fold the accumulated deltas into fresh shared bases (never
        // done on the commit path, where it would cost O(document) under
        // the commit lock) and publish the compacted version. Node ids,
        // pages and interned ids are unchanged, so snapshots, staged
        // transactions and page locks are all unaffected; the stamp bump
        // makes any commit speculated against the uncompacted version
        // re-apply onto the compacted one instead of publishing the
        // compaction away.
        let mut compacted = (*doc).clone();
        compacted.pool_mut().compact();
        compacted.compact_attr_index();
        compacted.compact_name_index();
        compacted.compact_content_index();
        self.publish_locked(compacted);
        Ok(CheckpointInfo {
            nodes: doc.used_count(),
            wal_bytes_before,
            wal_bytes_after: wal.len_bytes(),
        })
    }

    /// Reorganizes the document's pages at the configured fill factor
    /// (see [`PagedDoc::vacuum`]), under the commit lock, publishing the
    /// rewritten version like a commit does.
    ///
    /// Fails with [`TxnError::Busy`] if write transactions currently
    /// hold page locks: vacuum relocates tuples across logical pages, so
    /// it must not run concurrently with writers whose lock sets name
    /// the old layout.
    pub fn vacuum(&self) -> Result<mbxq_storage::VacuumReport> {
        let _global = self.commit_lock.lock().unwrap();
        // Freeze the lock table for the whole rebuild-publish-bump
        // sequence: the freeze verifies no lock is held *and* prevents
        // any acquisition while page numbers are in flux, closing the
        // window in which a transaction could lock stale numbering with
        // a current epoch. Publish happens before the epoch bump, and
        // `begin` reads the epoch before the snapshot, so a transaction
        // observing the new epoch is guaranteed the new layout.
        self.locks
            .freeze()
            .map_err(|locked_pages| TxnError::Busy { locked_pages })?;
        let result = (|| {
            let current = self.snapshot();
            let mut new_doc = (*current).clone();
            let report = new_doc.vacuum()?;
            self.publish_locked(new_doc);
            self.layout_epoch.fetch_add(1, Ordering::AcqRel);
            Ok(report)
        })();
        self.locks.unfreeze();
        result
    }

    /// Fraction of allocated slots holding live tuples in the committed
    /// version (0.0–1.0) — the trigger metric for [`Store::vacuum`].
    pub fn occupancy(&self) -> f64 {
        self.snapshot().occupancy()
    }

    /// The current layout epoch (bumped by every [`Store::vacuum`]).
    pub fn layout_epoch(&self) -> u64 {
        self.layout_epoch.load(Ordering::Acquire)
    }

    /// Evaluates an XPath query against the committed version through
    /// the per-store **plan cache**: the first use of a query text
    /// compiles it (parse → logical plan → rewrite → physical plan),
    /// later uses reuse the compiled plan. Entries are invalidated by
    /// the layout epoch, so a [`Store::vacuum`] forces recompilation.
    /// Evaluation runs on a lock-free [`Store::snapshot`].
    pub fn query(&self, text: &str) -> Result<mbxq_xpath::Value> {
        self.query_opts(text, &mbxq_xpath::EvalOptions::default())
    }

    /// Like [`Store::query`], coerced to a node set.
    pub fn query_nodes(&self, text: &str) -> Result<Vec<NodeId>> {
        self.query_nodes_opts(text, &mbxq_xpath::EvalOptions::default())
    }

    /// [`Store::query`] with full evaluation options (axis/value
    /// strategy overrides, decision counters) — the cached plan carries
    /// no strategy decisions itself, so forced arms and live statistics
    /// both flow through one compiled plan.
    pub fn query_opts(
        &self,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<mbxq_xpath::Value> {
        let plan = self.cached_plan(text)?;
        let snapshot = self.snapshot();
        let root: Vec<u64> = snapshot.root_pre().into_iter().collect();
        let opts = self.inject_pool(*opts);
        Ok(plan.eval_opts(snapshot.as_ref(), &root, &opts)?)
    }

    /// [`Store::query_nodes`] with full evaluation options.
    pub fn query_nodes_opts(
        &self,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<Vec<NodeId>> {
        let plan = self.cached_plan(text)?;
        let snapshot = self.snapshot();
        let opts = self.inject_pool(*opts);
        let pres = plan.select_from_root_opts(snapshot.as_ref(), &opts)?;
        pres.iter()
            .map(|&p| snapshot.pre_to_node(p).map_err(TxnError::from))
            .collect()
    }

    /// The store's shared query worker pool, spawned lazily on first
    /// use; `None` when [`StoreConfig::query_threads`] < 2.
    pub fn query_pool(&self) -> Option<&mbxq_xpath::WorkerPool> {
        if self.config.query_threads < 2 {
            return None;
        }
        Some(
            self.query_pool
                .get_or_init(|| mbxq_xpath::WorkerPool::new(self.config.query_threads)),
        )
    }

    /// Adds the store's pool to `opts` unless the caller already chose
    /// one — every query evaluation funnels through here, so a store
    /// opened with `query_threads` ≥ 2 parallelizes transparently.
    fn inject_pool<'a>(&'a self, opts: mbxq_xpath::EvalOptions<'a>) -> mbxq_xpath::EvalOptions<'a> {
        match self.query_pool() {
            Some(pool) => opts.or_pool(pool),
            None => opts,
        }
    }

    /// Entries beyond which the plan cache evicts. Interpolated query
    /// texts (`…[@id="personN"]…` per request) would otherwise grow the
    /// map without bound for the store's lifetime.
    const PLAN_CACHE_CAP: usize = 1024;

    /// The compiled plan for `text`, from the cache when its epoch is
    /// current, freshly compiled (and cached) otherwise. At the cap the
    /// cache evicts **single entries, least-recently-used first** (a
    /// stale-epoch entry is preferred as the victim — it can never hit
    /// again), so a hot query survives any storm of one-shot texts.
    fn cached_plan(&self, text: &str) -> Result<Arc<XPath>> {
        let epoch = self.layout_epoch();
        {
            let mut plans = self.plans.lock().unwrap();
            plans.tick += 1;
            let tick = plans.tick;
            if let Some(entry) = plans.map.get_mut(text) {
                if entry.epoch == epoch {
                    entry.last_used = tick;
                    self.plan_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(entry.plan.clone());
                }
            }
        }
        // Compile OUTSIDE the lock: a slow compile must not serialize
        // concurrent queries for unrelated (cached) texts. Racing
        // compilers of the same text both succeed; last insert wins.
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(XPath::parse(text)?);
        let mut plans = self.plans.lock().unwrap();
        while plans.map.len() >= Self::PLAN_CACHE_CAP && !plans.map.contains_key(text) {
            // Victim: any stale-epoch entry, else the LRU one. An O(n)
            // scan over ≤ cap entries, paid only on an insert at the
            // cap — the hit path stays O(1).
            let victim = plans
                .map
                .iter()
                .min_by_key(|(_, e)| (e.epoch == epoch, e.last_used))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    plans.map.remove(&k);
                    self.plan_evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        plans.tick += 1;
        let tick = plans.tick;
        plans.map.insert(
            text.to_string(),
            CachedPlan {
                epoch,
                plan: plan.clone(),
                last_used: tick,
            },
        );
        Ok(plan)
    }

    /// Plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.plan_hits.load(Ordering::Relaxed),
            misses: self.plan_misses.load(Ordering::Relaxed),
            evictions: self.plan_evictions.load(Ordering::Relaxed),
            entries: self.plans.lock().unwrap().map.len(),
        }
    }
}

/// Outcome of [`Store::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointInfo {
    /// Live nodes captured by the checkpoint.
    pub nodes: u64,
    /// Log length before truncation.
    pub wal_bytes_before: usize,
    /// Log length after (the checkpoint record alone).
    pub wal_bytes_after: usize,
}

/// An in-flight write transaction.
///
/// Updates are *staged* (and locked) during the transaction and applied
/// to the master document only at commit — before that, no other
/// transaction (and no reader) can observe them, which is exactly the
/// isolation contract of the copy-on-write views in Figure 8.
pub struct WriteTxn<'s> {
    store: &'s Store,
    id: TxnId,
    /// The store's layout epoch at begin time (see
    /// `Store::layout_epoch`).
    epoch: u64,
    snapshot: Arc<PagedDoc>,
    /// Private working copy — the paper's copy-on-write view. Created on
    /// the first update so that later operations (and XUpdate commands)
    /// of the same transaction see earlier ones; readers and other
    /// transactions never see it.
    work: Option<Box<PagedDoc>>,
    ops: Vec<Op>,
    finished: bool,
}

impl WriteTxn<'_> {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The transaction's current view: its private workspace once it has
    /// written anything, else the begin-time snapshot.
    pub fn view(&self) -> &PagedDoc {
        match &self.work {
            Some(w) => w,
            None => &self.snapshot,
        }
    }

    /// The begin-time snapshot (ignores workspace changes).
    pub fn snapshot(&self) -> &PagedDoc {
        &self.snapshot
    }

    /// Materializes the private working copy (the copy-on-write view of
    /// Figure 8) on first write.
    fn work_mut(&mut self) -> &mut PagedDoc {
        if self.work.is_none() {
            self.work = Some(Box::new((*self.snapshot).clone()));
        }
        self.work.as_mut().expect("just materialized")
    }

    /// Evaluates an XPath selection against the transaction's view,
    /// read-locking the pages of the result nodes ("read-lock pages
    /// during XPath execution", Figure 8). Returns the targets pinned by
    /// node id.
    pub fn select(&mut self, path: &XPath) -> Result<Vec<NodeId>> {
        let pres = path.select_from_root(self.view())?;
        let shift = self.view().config().page_size.trailing_zeros();
        let mut pages = Vec::with_capacity(pres.len());
        let mut nodes = Vec::with_capacity(pres.len());
        for pre in pres {
            pages.push((pre >> shift) as usize);
            nodes.push(self.view().pre_to_node(pre)?);
        }
        for page in pages {
            self.store
                .locks
                .acquire_read(self.id, page, self.store.config.lock_timeout)
                .map_err(|page| TxnError::LockTimeout { page })?;
        }
        self.verify_layout()?;
        Ok(nodes)
    }

    /// Fails with [`TxnError::LayoutChanged`] if a vacuum relocated
    /// pages since this transaction began. Called *after* acquiring
    /// locks: vacuum refuses to run while any lock is held, so if the
    /// epoch is still ours here, no vacuum can invalidate the pages we
    /// just locked for as long as we hold them.
    fn verify_layout(&self) -> Result<()> {
        if self.store.layout_epoch.load(Ordering::Acquire) != self.epoch {
            // An epoch change implies this transaction held no locks
            // while the vacuum ran (held locks make vacuum return
            // `Busy`), so it has no staged ops either — releasing the
            // just-acquired locks cannot break 2PL, and the doomed
            // transaction stops blocking healthy writers immediately.
            self.store.locks.release_all(self.id);
            return Err(TxnError::LayoutChanged);
        }
        Ok(())
    }

    /// Stages and locally applies a structural insert (write-locking the
    /// target's page and, in [`AncestorLockMode::Exclusive`], every
    /// ancestor page).
    pub fn insert(&mut self, position: InsertPosition, subtree: &Node) -> Result<()> {
        let target = match position {
            InsertPosition::Before(n)
            | InsertPosition::After(n)
            | InsertPosition::LastChildOf(n)
            | InsertPosition::ChildAt(n, _) => n,
        };
        self.lock_for_write(target)?;
        // Reserve the id range from the shared counter so every replay
        // of this op allocates identically.
        let n = subtree.tuple_count();
        let first_node = self.store.next_node.fetch_add(n, Ordering::Relaxed);
        self.work_mut()
            .insert_with_base(position, subtree, first_node)?;
        self.ops.push(Op::Insert {
            position,
            subtree: subtree.clone(),
            first_node,
        });
        Ok(())
    }

    /// Stages and locally applies a structural delete (write-locking
    /// every page the target's region spans).
    pub fn delete(&mut self, target: NodeId) -> Result<()> {
        let pre = self.view().node_to_pre(target)?;
        let end = self.view().region_end(pre);
        let shift = self.view().config().page_size.trailing_zeros();
        for page in (pre >> shift) as usize..=(end.saturating_sub(1).max(pre) >> shift) as usize {
            self.store
                .locks
                .acquire_write(self.id, page, self.store.config.lock_timeout)
                .map_err(|page| TxnError::LockTimeout { page })?;
        }
        self.lock_ancestors_if_exclusive(target)?;
        self.verify_layout()?;
        self.work_mut().delete(target)?;
        self.ops.push(Op::Delete { node: target });
        Ok(())
    }

    /// Stages and locally applies a value update.
    pub fn update_value(&mut self, target: NodeId, value: &str) -> Result<()> {
        self.lock_for_write(target)?;
        self.work_mut().update_value(target, value)?;
        self.ops.push(Op::UpdateValue {
            node: target,
            value: value.to_string(),
        });
        Ok(())
    }

    /// Stages and locally applies an element rename.
    pub fn rename(&mut self, target: NodeId, name: &mbxq_xml::QName) -> Result<()> {
        self.lock_for_write(target)?;
        self.work_mut().rename(target, name)?;
        self.ops.push(Op::Rename {
            node: target,
            name: name.clone(),
        });
        Ok(())
    }

    /// Stages and locally applies an attribute write.
    pub fn set_attribute(
        &mut self,
        target: NodeId,
        name: &mbxq_xml::QName,
        value: &str,
    ) -> Result<()> {
        self.lock_for_write(target)?;
        self.work_mut().set_attribute(target, name, value)?;
        self.ops.push(Op::SetAttr {
            node: target,
            name: name.clone(),
            value: value.to_string(),
        });
        Ok(())
    }

    /// Stages and locally applies an attribute removal.
    pub fn remove_attribute(&mut self, target: NodeId, name: &mbxq_xml::QName) -> Result<()> {
        self.lock_for_write(target)?;
        self.work_mut().remove_attribute(target, name)?;
        self.ops.push(Op::RemoveAttr {
            node: target,
            name: name.clone(),
        });
        Ok(())
    }

    /// Number of staged operations.
    pub fn staged_ops(&self) -> usize {
        self.ops.len()
    }

    fn lock_for_write(&mut self, target: NodeId) -> Result<()> {
        let pre = self.view().node_to_pre(target)?;
        let shift = self.view().config().page_size.trailing_zeros();
        let page = (pre >> shift) as usize;
        self.store
            .locks
            .acquire_write(self.id, page, self.store.config.lock_timeout)
            .map_err(|page| TxnError::LockTimeout { page })?;
        self.lock_ancestors_if_exclusive(target)?;
        self.verify_layout()
    }

    /// In `Exclusive` mode, write-locks the page of every ancestor — the
    /// root's page included, which is what makes the root "a locking
    /// bottleneck" (§2.2). In `Delta` mode this is a no-op.
    fn lock_ancestors_if_exclusive(&mut self, target: NodeId) -> Result<()> {
        if self.store.config.ancestor_mode != AncestorLockMode::Exclusive {
            return Ok(());
        }
        let shift = self.view().config().page_size.trailing_zeros();
        let mut pre = self.view().node_to_pre(target)?;
        while let Some(parent) = self.view().parent_of(pre) {
            let page = (parent >> shift) as usize;
            self.store
                .locks
                .acquire_write(self.id, page, self.store.config.lock_timeout)
                .map_err(|page| TxnError::LockTimeout { page })?;
            pre = parent;
        }
        Ok(())
    }

    /// Commits: validation → global write lock → WAL append → carry the
    /// staged operations into the master document → publish the new
    /// version → release all locks (Figure 8, bottom half).
    ///
    /// Strict 2PL demands that the page locks are released on **every**
    /// exit path — success, validation failure, a failing staged op, or
    /// a WAL crash — otherwise a failed commit strands its locks forever
    /// and later writers die with [`TxnError::LockTimeout`]. The release
    /// therefore lives here, outside the fallible body.
    pub fn commit(mut self) -> Result<CommitInfo> {
        let store = self.store;
        let id = self.id;
        let ops = std::mem::take(&mut self.ops);
        let result = Self::commit_ops(store, id, &ops);
        self.finished = true;
        store.locks.release_all(id);
        result
    }

    /// The fallible commit body; lock release is handled by the caller.
    fn commit_ops(store: &Store, id: TxnId, ops: &[Op]) -> Result<CommitInfo> {
        if ops.is_empty() {
            return Ok(CommitInfo {
                txn: id,
                ..CommitInfo::default()
            });
        }
        match store.config.pipeline {
            CommitPipeline::Short => Self::commit_ops_short(store, id, ops),
            CommitPipeline::LongLock => Self::commit_ops_long(store, id, ops),
        }
    }

    /// Applies the redo ops to a copy-on-write clone of `base`: only the
    /// column pages the ops touch are privatized, everything else stays
    /// shared with `base` (and with every reader snapshot). Node ids pin
    /// the targets, so ops staged against the begin-time snapshot apply
    /// correctly to any later master version — other transactions'
    /// commits touched disjoint pages (their page locks guarantee it),
    /// and ancestor sizes are adjusted as *deltas* on the current values,
    /// the commutative operations of §3.2.
    fn apply_to_clone(base: &PagedDoc, id: TxnId, ops: &[Op]) -> Result<(PagedDoc, CommitInfo)> {
        let mut info = CommitInfo {
            txn: id,
            ops: ops.len(),
            ..CommitInfo::default()
        };
        let mut new_doc = base.clone();
        for op in ops {
            let (ins, del, anc) = op.apply(&mut new_doc)?;
            info.inserted += ins;
            info.deleted += del;
            info.ancestors_touched += anc;
        }
        Ok((new_doc, info))
    }

    /// Validation ("run XML document validation … if this fails, the
    /// transaction is aborted").
    fn validate(store: &Store, doc: &PagedDoc) -> Result<()> {
        if store.config.validate_on_commit {
            if let Err(e) = mbxq_storage::invariants::check_paged(doc) {
                return Err(TxnError::ValidationFailed {
                    message: e.to_string(),
                });
            }
        }
        Ok(())
    }

    /// The [`CommitPipeline::Short`] commit: speculate → group-log →
    /// stamp-checked publish (see the module docs).
    fn commit_ops_short(store: &Store, id: TxnId, ops: &[Op]) -> Result<CommitInfo> {
        // ---- phase 1: speculation, no global lock ----
        // COW page privatization and validation run against the version
        // current *now*, keyed by its stamp. Failures on this path (a
        // redo op that cannot apply, a validation veto) abort the
        // transaction before anything reached the log.
        let base = store.version.load();
        let (mut new_doc, mut info) = Self::apply_to_clone(&base.doc, id, ops)?;
        Self::validate(store, &new_doc)?;

        // ---- phase 2: group-commit WAL append, no global lock ----
        // The pipeline gate (shared) keeps a checkpoint from truncating
        // the log between this append and the publish below. The append
        // itself batches with every concurrent committer: one leader,
        // one I/O, followers wait on the flush ticket. A crash or I/O
        // failure here means the transaction never happened — the record
        // is torn (recovery drops it) and nothing was published.
        let _gate = store.pipeline_gate.read().unwrap();
        store.group.submit(
            &store.wal,
            WalRecord::Commit {
                txn: id,
                ops: ops.to_vec(),
            },
        )?;

        // ---- phase 3: the short critical section ----
        // Only the stamp recheck and the pointer swap happen under the
        // global lock. If another commit (or a checkpoint/vacuum)
        // published since speculation, re-apply the ops onto the fresh
        // master: our targets' pages are still ours (page locks are held
        // until after publish), so the re-apply reproduces exactly the
        // speculated per-page result, and ancestor deltas commute with
        // whatever committed in between.
        //
        // Past this point the commit record is DURABLE: recovery will
        // replay it no matter what this thread does next, so reporting
        // failure here would make the live store silently disagree with
        // every future recovery. Re-apply (and the merged-state
        // invariant check, in validating configurations) can only fail
        // if the disjointness/commutativity guarantee itself is broken —
        // a storage-layer bug, not an abortable transaction fault — so
        // such a failure panics loudly instead of lying about the
        // durability outcome. All *abortable* failures (inapplicable
        // ops, validation vetoes) happened in phase 1, before the log.
        let _global = store.commit_lock.lock().unwrap();
        let current = store.version.load();
        if current.stamp != base.stamp {
            let (re_doc, re_info) =
                Self::apply_to_clone(&current.doc, id, ops).unwrap_or_else(|e| {
                    panic!(
                        "txn {id}: page-disjoint re-apply failed after its WAL record \
                         became durable (2PL disjointness violated?): {e}"
                    )
                });
            Self::validate(store, &re_doc).unwrap_or_else(|e| {
                panic!(
                    "txn {id}: merged state failed validation after its WAL record \
                     became durable (commutativity violated?): {e}"
                )
            });
            new_doc = re_doc;
            info = re_info;
        }
        store.publish_locked(new_doc);
        Ok(info)
    }

    /// The [`CommitPipeline::LongLock`] baseline: the pre-group-commit
    /// behavior, everything under one global lock — apply, validation,
    /// a solo WAL append, publish. Writers serialize on log I/O here;
    /// the `workload` benchmark measures exactly that difference.
    fn commit_ops_long(store: &Store, id: TxnId, ops: &[Op]) -> Result<CommitInfo> {
        let _gate = store.pipeline_gate.read().unwrap();
        let _global = store.commit_lock.lock().unwrap();
        let current = store.version.load();
        let (new_doc, info) = Self::apply_to_clone(&current.doc, id, ops)?;
        Self::validate(store, &new_doc)?;
        store.wal.lock().unwrap().append(&WalRecord::Commit {
            txn: id,
            ops: ops.to_vec(),
        })?;
        store.publish_locked(new_doc);
        Ok(info)
    }

    /// Aborts: staged operations are simply forgotten — nothing ever
    /// touched the master document.
    pub fn abort(mut self) {
        self.finished = true;
        self.store.locks.release_all(self.id);
    }
}

impl mbxq_storage::TreeView for WriteTxn<'_> {
    fn pre_end(&self) -> u64 {
        self.view().pre_end()
    }
    fn level(&self, pre: u64) -> Option<u16> {
        self.view().level(pre)
    }
    fn size(&self, pre: u64) -> u64 {
        mbxq_storage::TreeView::size(self.view(), pre)
    }
    fn kind(&self, pre: u64) -> Option<mbxq_storage::Kind> {
        self.view().kind(pre)
    }
    fn name_id(&self, pre: u64) -> Option<mbxq_storage::QnId> {
        self.view().name_id(pre)
    }
    fn value_ref(&self, pre: u64) -> Option<mbxq_storage::ValueRef> {
        self.view().value_ref(pre)
    }
    fn node_id(&self, pre: u64) -> Option<NodeId> {
        self.view().node_id(pre)
    }
    fn back_run(&self, pre: u64) -> u64 {
        self.view().back_run(pre)
    }
    fn attributes(&self, pre: u64) -> Vec<(mbxq_storage::QnId, mbxq_storage::PropId)> {
        self.view().attributes(pre)
    }
    fn pool(&self) -> &mbxq_storage::ValuePool {
        self.view().pool()
    }
    fn used_count(&self) -> u64 {
        self.view().used_count()
    }
    fn elements_named(&self, qn: mbxq_storage::QnId) -> Option<Vec<u64>> {
        self.view().elements_named(qn)
    }
    fn elements_named_count(&self, qn: mbxq_storage::QnId) -> Option<u64> {
        self.view().elements_named_count(qn)
    }
    fn has_content_index(&self) -> bool {
        self.view().has_content_index()
    }
    fn nodes_with_attr_value(&self, attr: mbxq_storage::QnId, value: &str) -> Option<Vec<u64>> {
        self.view().nodes_with_attr_value(attr, value)
    }
    fn nodes_with_attr_value_range(
        &self,
        attr: mbxq_storage::QnId,
        range: &mbxq_storage::NumRange,
    ) -> Option<Vec<u64>> {
        self.view().nodes_with_attr_value_range(attr, range)
    }
    fn nodes_with_attr_value_count(&self, attr: mbxq_storage::QnId, value: &str) -> Option<u64> {
        self.view().nodes_with_attr_value_count(attr, value)
    }
    fn nodes_with_attr_value_range_count(
        &self,
        attr: mbxq_storage::QnId,
        range: &mbxq_storage::NumRange,
    ) -> Option<u64> {
        self.view().nodes_with_attr_value_range_count(attr, range)
    }
    fn elements_with_text(
        &self,
        qn: mbxq_storage::QnId,
        value: &str,
    ) -> Option<mbxq_storage::TextProbe> {
        self.view().elements_with_text(qn, value)
    }
    fn elements_with_text_range(
        &self,
        qn: mbxq_storage::QnId,
        range: &mbxq_storage::NumRange,
    ) -> Option<mbxq_storage::TextProbe> {
        self.view().elements_with_text_range(qn, range)
    }
    fn elements_with_text_count(&self, qn: mbxq_storage::QnId, value: &str) -> Option<u64> {
        self.view().elements_with_text_count(qn, value)
    }
    fn elements_with_text_range_count(
        &self,
        qn: mbxq_storage::QnId,
        range: &mbxq_storage::NumRange,
    ) -> Option<u64> {
        self.view().elements_with_text_range_count(qn, range)
    }
}

fn demote(e: TxnError) -> StorageError {
    match e {
        TxnError::Storage(e) => e,
        other => StorageError::Kernel(other.to_string()),
    }
}

/// Lets a whole XUpdate command script run *inside* one transaction:
/// selections and later commands see the effects of earlier ones (via
/// the private workspace), nothing is visible outside until commit.
impl mbxq_xupdate::UpdateTarget for WriteTxn<'_> {
    fn xu_insert(&mut self, position: InsertPosition, subtree: &Node) -> mbxq_storage::Result<u64> {
        let n = subtree.tuple_count();
        self.insert(position, subtree).map_err(demote)?;
        Ok(n)
    }

    fn xu_delete(&mut self, target: NodeId) -> mbxq_storage::Result<u64> {
        let pre = self.view().node_to_pre(target)?;
        let lvl = self.view().level(pre).unwrap_or(0);
        let _ = lvl;
        // Count the victims before deleting (for the summary).
        let end = self.view().region_end(pre);
        let mut count = 0u64;
        let mut p = pre;
        while let Some(q) = self.view().next_used_at_or_after(p) {
            if q >= end {
                break;
            }
            count += 1;
            p = q + 1;
        }
        self.delete(target).map_err(demote)?;
        Ok(count)
    }

    fn xu_update_value(&mut self, target: NodeId, value: &str) -> mbxq_storage::Result<()> {
        self.update_value(target, value).map_err(demote)
    }

    fn xu_rename(&mut self, target: NodeId, name: &mbxq_xml::QName) -> mbxq_storage::Result<()> {
        self.rename(target, name).map_err(demote)
    }

    fn xu_set_attribute(
        &mut self,
        target: NodeId,
        name: &mbxq_xml::QName,
        value: &str,
    ) -> mbxq_storage::Result<()> {
        self.set_attribute(target, name, value).map_err(demote)
    }

    fn xu_node_to_pre(&self, node: NodeId) -> mbxq_storage::Result<u64> {
        self.view().node_to_pre(node)
    }

    fn xu_pre_to_node(&self, pre: u64) -> mbxq_storage::Result<NodeId> {
        self.view().pre_to_node(pre)
    }
}

impl WriteTxn<'_> {
    /// Executes a parsed XUpdate script inside this transaction, with
    /// full sequential semantics (command *n+1* sees command *n*'s
    /// effects through the workspace).
    pub fn execute_xupdate(
        &mut self,
        mods: &mbxq_xupdate::Modifications,
    ) -> Result<mbxq_xupdate::ExecutionSummary> {
        mbxq_xupdate::execute(self, mods).map_err(|e| match e {
            mbxq_xupdate::XUpdateError::Storage(se) => TxnError::Storage(se),
            mbxq_xupdate::XUpdateError::Path(pe) => TxnError::Path(pe),
            other => TxnError::Storage(StorageError::Kernel(other.to_string())),
        })
    }
}

impl Drop for WriteTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.store.locks.release_all(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbxq_storage::serialize::to_xml;
    use mbxq_storage::PageConfig;
    use mbxq_xml::Document;

    /// Shreds (page size 8, fill 6) as: page 0 = site, people, person,
    /// name, text, regions; page 1 = africa + its five children; page 2 =
    /// asia + its two children. So africa and asia live on *different*
    /// pages while sharing all ancestors — the shape the delta-locking
    /// tests need.
    const DOC: &str = r#"<site><people><person id="p0"><name>Ann</name></person></people><regions><africa><m1/><m2/><m3/><m4/><m5/></africa><asia><n1/><n2/></asia></regions></site>"#;

    fn store(mode: AncestorLockMode) -> Store {
        store_with(mode, CommitPipeline::Short)
    }

    fn store_with(mode: AncestorLockMode, pipeline: CommitPipeline) -> Store {
        let doc = PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap();
        Store::open(
            doc,
            Wal::in_memory(),
            StoreConfig {
                ancestor_mode: mode,
                lock_timeout: Duration::from_millis(200),
                validate_on_commit: true,
                pipeline,
                ..StoreConfig::default()
            },
        )
    }

    #[test]
    fn commit_becomes_visible_atomically() {
        let s = store(AncestorLockMode::Delta);
        let before = s.snapshot();
        let mut t = s.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        let frag = Document::parse_fragment("<person id=\"p9\"/>").unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        // Not visible before commit — neither in old snapshots nor new.
        assert!(!to_xml(s.snapshot().as_ref()).unwrap().contains("p9"));
        let info = t.commit().unwrap();
        assert_eq!(info.inserted, 1);
        assert!(to_xml(s.snapshot().as_ref()).unwrap().contains("p9"));
        // The old snapshot is immutable (multi-version).
        assert!(!to_xml(before.as_ref()).unwrap().contains("p9"));
    }

    #[test]
    fn abort_discards_everything() {
        let s = store(AncestorLockMode::Delta);
        let before = to_xml(s.snapshot().as_ref()).unwrap();
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.delete(person[0]).unwrap();
        t.abort();
        assert_eq!(to_xml(s.snapshot().as_ref()).unwrap(), before);
        // Locks were released: a new writer can proceed.
        let mut t2 = s.begin();
        let person = t2.select(&XPath::parse("//person").unwrap()).unwrap();
        t2.delete(person[0]).unwrap();
        t2.commit().unwrap();
        assert!(!to_xml(s.snapshot().as_ref()).unwrap().contains("person"));
    }

    #[test]
    fn conflicting_writers_serialize_on_page_locks() {
        let s = store(AncestorLockMode::Delta);
        let mut t1 = s.begin();
        let p1 = t1.select(&XPath::parse("//person").unwrap()).unwrap();
        t1.update_value(
            {
                // the text node under name
                let pre = t1.snapshot().node_to_pre(p1[0]).unwrap();
                let text_pre = pre + 2;
                t1.snapshot().pre_to_node(text_pre).unwrap()
            },
            "Eve",
        )
        .unwrap();
        // Second writer wants the same page — must time out while t1
        // holds the write lock.
        let mut t2 = s.begin();
        let p2 = t2.select(&XPath::parse("//person").unwrap());
        // select read-locks the page, which already conflicts:
        assert!(matches!(p2, Err(TxnError::LockTimeout { .. })));
        drop(t2);
        t1.commit().unwrap();
        // Now t3 can proceed.
        let mut t3 = s.begin();
        assert!(t3.select(&XPath::parse("//person").unwrap()).is_ok());
        t3.abort();
    }

    #[test]
    fn delta_mode_leaves_root_page_unlocked() {
        // Two writers in *different* pages commit concurrently even
        // though they share every ancestor (the root).
        let s = store(AncestorLockMode::Delta);
        // africa and asia live on page 1 together; force them apart with
        // a bigger doc: instead verify lock sets directly.
        let mut t1 = s.begin();
        let africa = t1.select(&XPath::parse("//africa").unwrap()).unwrap();
        let frag = Document::parse_fragment("<item/>").unwrap();
        t1.insert(InsertPosition::LastChildOf(africa[0]), &frag)
            .unwrap();
        // Root lives on page 0; in Delta mode page 0 must not be
        // write-locked by t1 (africa is on page 1).
        let root_page_write_locked = s.locks.is_write_locked(0);
        assert!(!root_page_write_locked);
        t1.commit().unwrap();
        // Sizes still correct: root grew by 1.
        let d = s.snapshot();
        assert_eq!(TreeView::size(d.as_ref(), 0), 15);
    }

    #[test]
    fn exclusive_mode_blocks_on_the_root() {
        let s = store(AncestorLockMode::Exclusive);
        let mut t1 = s.begin();
        let africa = t1.select(&XPath::parse("//africa").unwrap()).unwrap();
        let frag = Document::parse_fragment("<item/>").unwrap();
        t1.insert(InsertPosition::LastChildOf(africa[0]), &frag)
            .unwrap();
        // Root page (0) is now write-locked by t1.
        assert!(s.locks.is_write_locked(0));
        // A second writer in a *disjoint* subtree still blocks.
        let mut t2 = s.begin();
        let asia = t2.select(&XPath::parse("//asia").unwrap()).unwrap();
        let res = t2.insert(InsertPosition::LastChildOf(asia[0]), &frag);
        assert!(matches!(res, Err(TxnError::LockTimeout { .. })));
        drop(t2);
        t1.commit().unwrap();
    }

    #[test]
    fn commutative_deltas_from_sequential_commits() {
        // Two transactions inserting under different parents; their
        // ancestor deltas add up regardless of commit order.
        for order in [true, false] {
            let s = store(AncestorLockMode::Delta);
            let frag2 = Document::parse_fragment("<x><y/></x>").unwrap();
            let frag3 = Document::parse_fragment("<u><v/><w/></u>").unwrap();
            let mut ta = s.begin();
            let africa = ta.select(&XPath::parse("//africa").unwrap()).unwrap();
            ta.insert(InsertPosition::LastChildOf(africa[0]), &frag2)
                .unwrap();
            let mut tb = s.begin();
            let asia = tb.select(&XPath::parse("//asia").unwrap()).unwrap();
            tb.insert(InsertPosition::LastChildOf(asia[0]), &frag3)
                .unwrap();
            if order {
                ta.commit().unwrap();
                tb.commit().unwrap();
            } else {
                tb.commit().unwrap();
                ta.commit().unwrap();
            }
            let d = s.snapshot();
            // root size: 14 original descendants + 2 + 3.
            assert_eq!(TreeView::size(d.as_ref(), 0), 19, "order={order}");
            mbxq_storage::invariants::check_paged(d.as_ref()).unwrap();
        }
    }

    /// Both pipelines must produce the same committed state (the
    /// LongLock baseline exists only for the benchmark ablation).
    #[test]
    fn pipelines_commit_identically() {
        let mut results = Vec::new();
        for pipeline in [CommitPipeline::Short, CommitPipeline::LongLock] {
            let s = store_with(AncestorLockMode::Delta, pipeline);
            let mut t = s.begin();
            let africa = t.select(&XPath::parse("//africa").unwrap()).unwrap();
            let frag = Document::parse_fragment("<item><sub/></item>").unwrap();
            t.insert(InsertPosition::LastChildOf(africa[0]), &frag)
                .unwrap();
            let info = t.commit().unwrap();
            assert_eq!(info.inserted, 2, "{pipeline:?}");
            results.push(to_xml(s.snapshot().as_ref()).unwrap());
        }
        assert_eq!(results[0], results[1]);
    }

    /// Two transactions staged against the same base version and
    /// committed concurrently: whichever publishes second must detect
    /// the stamp change and re-apply onto the fresh master, so both
    /// updates survive (page disjointness + commutative deltas).
    #[test]
    fn concurrent_commits_merge_via_stamp_recheck() {
        let s = store(AncestorLockMode::Delta);
        let stamp0 = s.version_stamp();
        let frag_a = Document::parse_fragment("<itemA/>").unwrap();
        let frag_b = Document::parse_fragment("<itemB/>").unwrap();
        // Stage both against the same base version (stamp0).
        let mut ta = s.begin();
        let africa = ta.select(&XPath::parse("//africa").unwrap()).unwrap();
        ta.insert(InsertPosition::LastChildOf(africa[0]), &frag_a)
            .unwrap();
        let mut tb = s.begin();
        let asia = tb.select(&XPath::parse("//asia").unwrap()).unwrap();
        tb.insert(InsertPosition::LastChildOf(asia[0]), &frag_b)
            .unwrap();
        // Commit them from racing threads.
        std::thread::scope(|scope| {
            let ha = scope.spawn(move || ta.commit().unwrap());
            let hb = scope.spawn(move || tb.commit().unwrap());
            ha.join().unwrap();
            hb.join().unwrap();
        });
        assert_eq!(s.version_stamp(), stamp0 + 2, "each commit publishes");
        let live = to_xml(s.snapshot().as_ref()).unwrap();
        assert!(live.contains("itemA") && live.contains("itemB"));
        let d = s.snapshot();
        assert_eq!(TreeView::size(d.as_ref(), 0), 16);
        mbxq_storage::invariants::check_paged(d.as_ref()).unwrap();
    }

    #[test]
    fn wal_records_committed_transactions() {
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        t.commit().unwrap();
        let (_, wal) = s.into_parts();
        let records = wal.read_all().unwrap();
        assert_eq!(records.len(), 1);
        match &records[0] {
            WalRecord::Commit { ops, .. } => assert_eq!(ops.len(), 1),
            other => panic!("expected a commit record, got {other:?}"),
        }
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let s = store(AncestorLockMode::Delta);
        let t = s.begin();
        let info = t.commit().unwrap();
        assert_eq!(info.ops, 0);
        let (_, wal) = s.into_parts();
        assert!(wal.read_all().unwrap().is_empty());
    }

    /// Regression for the commit-path lock leak: a staged op that fails
    /// while being applied to the master (here: a redo op naming a node
    /// that does not exist) must still release every page lock — before
    /// the fix, `finished` was set before the fallible body ran, so the
    /// `Drop` guard skipped cleanup and later writers starved.
    #[test]
    fn failed_commit_releases_all_locks() {
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        // Sabotage the redo list with an op that cannot apply.
        t.ops.push(Op::Delete {
            node: NodeId(99_999),
        });
        assert!(s.locked_pages() > 0);
        let err = t.commit().unwrap_err();
        assert!(matches!(err, TxnError::Storage(_)), "got {err}");
        assert_eq!(
            s.locked_pages(),
            0,
            "a failed commit must not strand page locks"
        );
        // Master unchanged, and later writers proceed normally.
        assert!(!to_xml(s.snapshot().as_ref()).unwrap().contains("vip"));
        let mut t2 = s.begin();
        let person = t2.select(&XPath::parse("//person").unwrap()).unwrap();
        t2.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        t2.commit().unwrap();
        assert!(to_xml(s.snapshot().as_ref()).unwrap().contains("vip"));
    }

    #[test]
    fn failed_validation_releases_all_locks() {
        // Same guarantee on the validation exit path: an op list whose
        // replay produces a different shape than the workspace (a
        // duplicate insert of the same reserved ids) trips the checker.
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        let frag = Document::parse_fragment("<person id=\"dup\"/>").unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        let dup = t.ops[0].clone();
        t.ops.push(dup);
        let err = t.commit().unwrap_err();
        assert!(
            matches!(
                err,
                TxnError::Storage(_) | TxnError::ValidationFailed { .. }
            ),
            "got {err}"
        );
        assert_eq!(s.locked_pages(), 0);
    }

    /// The commit publishes by swapping page pointers: everything but
    /// the touched pages stays physically shared with the previous
    /// version.
    #[test]
    fn commit_shares_untouched_pages_with_the_old_version() {
        let s = store(AncestorLockMode::Delta);
        let before = s.snapshot();
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        t.commit().unwrap();
        let after = s.snapshot();
        let (shared, total) = after.shared_pages_with(&before);
        assert!(
            shared > 0 && shared <= total,
            "expected structural sharing, got {shared}/{total}"
        );
        // An attribute write touches no base-table column at all: every
        // tree page stays shared.
        assert_eq!(shared, total, "attribute set must not touch tree pages");
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovery_resumes_from_it() {
        let s = store(AncestorLockMode::Delta);
        let frag = Document::parse_fragment("<person id=\"pre\"/>").unwrap();
        let mut t = s.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        t.commit().unwrap();

        let info = s.checkpoint().unwrap();
        assert!(info.wal_bytes_before > 0);
        assert_eq!(info.nodes, s.snapshot().used_count());

        // Post-checkpoint commit deletes a PRE-checkpoint node — only
        // possible if the checkpoint preserved node ids.
        let mut t = s.begin();
        let victims = t
            .select(&XPath::parse("//person[@id='pre']").unwrap())
            .unwrap();
        t.delete(victims[0]).unwrap();
        t.commit().unwrap();

        let live = to_xml(s.snapshot().as_ref()).unwrap();
        let (_, wal) = s.into_parts();
        let recovered = recover::recover(DOC, PageConfig::new(8, 75).unwrap(), &wal.raw().unwrap())
            .expect("recovery resumes from the checkpoint");
        assert_eq!(to_xml(&recovered).unwrap(), live);
        mbxq_storage::invariants::check_paged(&recovered).unwrap();
    }

    #[test]
    fn store_vacuum_publishes_and_respects_writers() {
        let s = store(AncestorLockMode::Delta);
        // Fragment the store a little.
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.delete(person[0]).unwrap();
        t.commit().unwrap();
        let occ_before = s.occupancy();

        // A writer holding locks blocks vacuum.
        let mut w = s.begin();
        let africa = w.select(&XPath::parse("//africa").unwrap()).unwrap();
        let frag = Document::parse_fragment("<m9/>").unwrap();
        w.insert(InsertPosition::LastChildOf(africa[0]), &frag)
            .unwrap();
        assert!(matches!(s.vacuum(), Err(TxnError::Busy { .. })));
        w.commit().unwrap();

        let before = to_xml(s.snapshot().as_ref()).unwrap();
        let report = s.vacuum().unwrap();
        assert!(report.tuples_moved > 0);
        assert_eq!(to_xml(s.snapshot().as_ref()).unwrap(), before);
        assert!(s.occupancy() >= occ_before);
        // The store stays fully usable after reorganization.
        let mut t = s.begin();
        let asia = t.select(&XPath::parse("//asia").unwrap()).unwrap();
        let frag = Document::parse_fragment("<n3/>").unwrap();
        t.insert(InsertPosition::LastChildOf(asia[0]), &frag)
            .unwrap();
        t.commit().unwrap();
        mbxq_storage::invariants::check_paged(s.snapshot().as_ref()).unwrap();
    }

    /// A transaction that took its snapshot before a vacuum must not be
    /// allowed to lock pages afterwards: its page numbering refers to
    /// the pre-vacuum layout, so its locks would not actually cover its
    /// targets and 2PL disjointness would silently break.
    #[test]
    fn vacuum_invalidates_transactions_begun_before_it() {
        let s = store(AncestorLockMode::Delta);
        let mut stale = s.begin(); // snapshot pinned, no locks yet
        s.vacuum().unwrap();
        let err = stale
            .select(&XPath::parse("//person").unwrap())
            .unwrap_err();
        assert!(matches!(err, TxnError::LayoutChanged), "got {err}");
        assert_eq!(
            s.locked_pages(),
            0,
            "the refused select must not keep locks"
        );
        stale.abort();
        // A fresh transaction on the new layout works.
        let mut t = s.begin();
        assert!(t.select(&XPath::parse("//person").unwrap()).is_ok());
        t.abort();
    }

    #[test]
    fn checkpoint_compacts_the_published_deltas() {
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        let frag = Document::parse_fragment("<person id=\"fresh\"/>").unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        t.commit().unwrap();
        assert!(
            s.snapshot().pool().delta_len() > 0,
            "the commit interned new values into the delta"
        );
        s.checkpoint().unwrap();
        assert_eq!(
            s.snapshot().pool().delta_len(),
            0,
            "checkpoint must fold pool deltas into the shared base"
        );
        assert!(to_xml(s.snapshot().as_ref()).unwrap().contains("fresh"));
    }

    #[test]
    fn reader_snapshot_survives_many_commits() {
        let s = store(AncestorLockMode::Delta);
        let snap = s.snapshot();
        let baseline = to_xml(snap.as_ref()).unwrap();
        for i in 0..5 {
            let mut t = s.begin();
            let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
            let frag = Document::parse_fragment(&format!("<person id=\"g{i}\"/>")).unwrap();
            t.insert(InsertPosition::LastChildOf(people[0]), &frag)
                .unwrap();
            t.commit().unwrap();
        }
        assert_eq!(to_xml(snap.as_ref()).unwrap(), baseline);
        assert_eq!(
            to_xml(s.snapshot().as_ref())
                .unwrap()
                .matches("person")
                .count(),
            baseline.matches("person").count() + 5 // 5 self-closing elements
        );
    }
}
