//! `mbxq-txn` — ACID transactions over the paged XML store (§3.2).
//!
//! The paper's transaction protocol (Figure 8) combines:
//!
//! * **multi-version isolation** — writers work against a copy-on-write
//!   view; readers "just acquire a global read-lock while they run". Here
//!   readers take an [`Arc`](std::sync::Arc) snapshot of the committed document (the
//!   in-memory equivalent of MonetDB's copy-on-write memory maps: the
//!   snapshot shares all state until a commit installs a new version), so
//!   they never block and never see intermediate states.
//! * **strict two-phase page locking between writers** — a write
//!   transaction read-locks the pages its XPath selections touch and
//!   write-locks the pages it updates, holding all locks until commit.
//! * **commutative delta-increments for ancestor sizes** — the key trick
//!   that keeps the document root from becoming a lock bottleneck: a
//!   transaction never locks its ancestors' pages (in
//!   [`AncestorLockMode::Delta`] mode); ancestor `size` values are
//!   adjusted by *deltas* at commit, under the short global write lock,
//!   and "as delta operations are commutative, it does not matter in
//!   which order they are executed". The [`AncestorLockMode::Exclusive`]
//!   baseline write-locks the whole ancestor chain instead — the
//!   strawman the concurrency benchmark compares against.
//! * **write-ahead logging** — the commit's crucial stage is a single
//!   WAL append holding the transaction's logical redo records; recovery
//!   replays the committed prefix (module [`wal`] / [`recover`]).
//!
//! Commit applies the staged operations to the master document under the
//! global write lock and publishes a fresh `Arc` version; because node
//! ids are immutable and operations are logged logically (by node id),
//! replay order = commit order reproduces the exact same state.
//!
//! # O(touched-pages) commits
//!
//! The new version is **not** a deep copy. [`mbxq_storage::PagedDoc`]
//! stores every column as shared copy-on-write pages
//! (`mbxq_bat::CowVec`), so `clone` copies page *pointers* and each
//! staged operation privatizes exactly the column pages it writes, plus
//! the pages holding the delta-adjusted ancestor sizes. The critical
//! section is therefore proportional to the update volume, never to the
//! document: publishing swaps page pointers under the short global lock,
//! and every reader snapshot keeps sharing all untouched pages with the
//! new master — the in-memory realization of MonetDB's copy-on-write
//! memory maps from §3.2. Locks are released on *every* commit exit path
//! (success, validation failure, apply failure, WAL crash), so a failed
//! commit can never strand page locks.
//!
//! # The short-publish commit pipeline
//!
//! With the default [`CommitPipeline::Short`], the global commit lock
//! covers **only the version-stamp recheck and the pointer-swap
//! publish** — nothing else. A commit runs three phases:
//!
//! ```text
//!  phase 1 · SPECULATE   no global lock.  COW-clone the committed
//!                        version (stamp S), apply the redo ops
//!                        (privatizing only their pages), validate.
//!  phase 2 · LOG         no global lock.  Group-commit WAL append:
//!                        the first committer to arrive leads a batch
//!                        flush (one I/O for every record that queued
//!                        up meanwhile); followers wait on the flush
//!                        ticket (module [`group`]).
//!  phase 3 · PUBLISH     global lock, O(1).  Re-read the stamp: if
//!                        still S, swap the speculative version in; if
//!                        some other commit published S' > S meanwhile,
//!                        re-apply the ops onto the fresh master (page
//!                        locks guarantee the targets are untouched,
//!                        ancestor deltas commute) and swap that in.
//! ```
//!
//! Page-lock validation therefore happens at *staging* time, COW page
//! privatization at *speculation* time, and N concurrent committers
//! serialize only on an O(touched-pages) re-apply in the worst case —
//! never on log I/O. Readers never appear in this picture at all:
//! [`Shard::snapshot`] clones the committed `Arc` out of a lock-free
//! [`mbxq_storage::ArcCell`] (no mutex, no rwlock), so reader latency is
//! independent of writer load. The WAL may record two *concurrent*
//! (page-disjoint, hence commutative) commits in the opposite order of
//! their publishes; replaying the log still reproduces the published
//! state exactly, which `tests/concurrent_oracle.rs` checks property-
//! style. [`CommitPipeline::LongLock`] preserves the old
//! everything-under-one-lock path as the ablation baseline for the
//! `workload` benchmark.
//!
//! # Checkpointing
//!
//! The WAL grows with every commit, and recovery replays it from
//! genesis. [`Shard::checkpoint`] bounds both: under the commit lock it
//! serializes the current version (with its node ids and the id
//! allocation point) into a [`wal::WalRecord::Checkpoint`], then
//! atomically truncates the log to just that record. [`recover`] resumes
//! from the latest checkpoint instead of genesis. [`Shard::vacuum`] and
//! [`Shard::occupancy`] complete the maintenance surface: page
//! reorganization runs under the same commit lock and publishes like a
//! commit does.

pub mod catalog;
pub mod group;
pub mod locks;
pub mod op;
pub mod pool;
pub mod recover;
pub mod shard;
pub mod wal;

pub use catalog::{Catalog, CatalogConfig, DocMatches};
pub use group::GroupCommitStats;
pub use pool::{PoolStats, QueryPool};
pub use shard::{Shard, WriteTxn};

use mbxq_storage::{PagedDoc, StorageError};
use std::time::Duration;
use wal::Wal;

/// How a write transaction treats the pages of its targets' ancestors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AncestorLockMode {
    /// The paper's scheme: ancestors are *not* locked; their sizes are
    /// updated by commutative delta-increments at commit.
    Delta,
    /// The strawman: write-lock every ancestor's page (the root's page is
    /// an ancestor page of every node, so all writers serialize).
    Exclusive,
}

/// Which commit pipeline the store runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPipeline {
    /// The concurrent pipeline: COW apply + validation speculate outside
    /// any global lock against a version stamp, the WAL append rides a
    /// group-commit batch, and the global lock covers only the stamp
    /// recheck + pointer-swap publish.
    Short,
    /// The serial baseline (the pre-group-commit behavior): one global
    /// lock held across apply, validation, the WAL append *and* publish,
    /// so concurrent committers serialize on log I/O. Kept for the
    /// `workload` benchmark ablation.
    LongLock,
}

/// Transaction identifiers.
pub type TxnId = u64;

/// Errors of the transaction layer.
#[derive(Debug)]
pub enum TxnError {
    /// A page lock could not be acquired in time (conflict/deadlock).
    LockTimeout {
        /// The contended logical page.
        page: usize,
    },
    /// Underlying storage failure.
    Storage(StorageError),
    /// XPath failure during selection.
    Path(mbxq_xpath::XPathError),
    /// WAL I/O failure (including injected crashes).
    Wal(wal::WalError),
    /// Commit-time validation failed; the transaction was aborted.
    ValidationFailed {
        /// What the validator reported.
        message: String,
    },
    /// A maintenance operation (vacuum) found write transactions in
    /// flight; retry when the writers have finished.
    Busy {
        /// Pages currently locked by in-flight transactions.
        locked_pages: usize,
    },
    /// A vacuum relocated tuples across logical pages after this
    /// transaction took its snapshot but before it acquired its first
    /// page lock — its page numbering (and therefore lock disjointness)
    /// would be stale. Abort and retry on a fresh snapshot.
    LayoutChanged,
    /// No document by that name exists in the catalog.
    UnknownDocument {
        /// The requested document name.
        name: String,
    },
    /// A document by that name already exists in the catalog.
    DuplicateDocument {
        /// The colliding document name.
        name: String,
    },
    /// The document still has live [`Catalog::shard`] handles elsewhere,
    /// so it cannot be exported out of the catalog.
    DocumentInUse {
        /// The document name.
        name: String,
    },
    /// Catalog metadata I/O failed (the manifest or a shard WAL file).
    CatalogIo {
        /// What failed, and how.
        message: String,
    },
}

impl core::fmt::Display for TxnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TxnError::LockTimeout { page } => write!(f, "lock timeout on logical page {page}"),
            TxnError::Storage(e) => write!(f, "storage: {e}"),
            TxnError::Path(e) => write!(f, "xpath: {e}"),
            TxnError::Wal(e) => write!(f, "wal: {e}"),
            TxnError::ValidationFailed { message } => write!(f, "validation failed: {message}"),
            TxnError::Busy { locked_pages } => {
                write!(f, "store busy: {locked_pages} pages locked by writers")
            }
            TxnError::LayoutChanged => {
                write!(
                    f,
                    "page layout reorganized since this transaction began; retry"
                )
            }
            TxnError::UnknownDocument { name } => write!(f, "unknown document {name:?}"),
            TxnError::DuplicateDocument { name } => {
                write!(f, "document {name:?} already exists")
            }
            TxnError::DocumentInUse { name } => {
                write!(f, "document {name:?} has live shard handles")
            }
            TxnError::CatalogIo { message } => write!(f, "catalog: {message}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

impl From<mbxq_xpath::XPathError> for TxnError {
    fn from(e: mbxq_xpath::XPathError) -> Self {
        TxnError::Path(e)
    }
}

impl From<wal::WalError> for TxnError {
    fn from(e: wal::WalError) -> Self {
        TxnError::Wal(e)
    }
}

/// Result alias for transaction operations.
pub type Result<T> = std::result::Result<T, TxnError>;

/// Configuration of a transactional store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Ancestor locking strategy.
    pub ancestor_mode: AncestorLockMode,
    /// Lock acquisition timeout (doubles as deadlock detection).
    pub lock_timeout: Duration,
    /// Run the structural invariant checker before every commit (the
    /// "XML document validation" stage of Figure 8). Expensive; on by
    /// default in tests, off in benchmarks.
    pub validate_on_commit: bool,
    /// Commit critical-section layout ([`CommitPipeline::Short`] unless
    /// the serial baseline is explicitly requested).
    pub pipeline: CommitPipeline,
    /// Threads for morsel-parallel query execution (`0` or `1` =
    /// sequential, no pool). The store lazily spawns one shared
    /// [`mbxq_xpath::WorkerPool`] of this width on the first query and
    /// injects it into every [`Shard::query_opts`] evaluation.
    pub query_threads: usize,
    /// Pins the pool's per-morsel dispatch overhead (nanoseconds) used
    /// by the executor's parallel break-even cost model. `None` (the
    /// default) measures it with a calibration loop when the pool
    /// spawns; tests pin it for deterministic cost decisions.
    pub morsel_overhead_ns: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_secs(5),
            validate_on_commit: false,
            pipeline: CommitPipeline::Short,
            query_threads: 0,
            morsel_overhead_ns: None,
        }
    }
}

/// Outcome statistics of a successful commit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitInfo {
    /// Transaction id.
    pub txn: TxnId,
    /// Operations applied.
    pub ops: usize,
    /// Tuples inserted.
    pub inserted: u64,
    /// Tuples deleted.
    pub deleted: u64,
    /// Distinct ancestors that received size deltas.
    pub ancestors_touched: u64,
}

/// Counters of the per-shard plan cache (see [`Shard::plan_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Queries answered with an already-compiled plan.
    pub hits: u64,
    /// Queries that compiled (first use, or a stale epoch).
    pub misses: u64,
    /// Entries evicted to stay under the capacity (LRU victims and
    /// stale-epoch drops).
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// Outcome of [`Shard::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointInfo {
    /// Live nodes captured by the checkpoint.
    pub nodes: u64,
    /// Log length before truncation.
    pub wal_bytes_before: usize,
    /// Log length after (the checkpoint record alone).
    pub wal_bytes_after: usize,
}

/// A transactional, versioned XML document store — the single-document
/// compatibility facade over one [`Shard`].
///
/// `Store` derefs to its shard, so the entire shard API — snapshots,
/// write transactions, queries, checkpoint/vacuum, statistics — is
/// available on it unchanged. The shard owns a private [`QueryPool`];
/// multi-document deployments use a [`Catalog`] instead, whose shards
/// all share one pool.
pub struct Store {
    shard: Shard,
}

impl Store {
    /// Opens a store over an already-shredded document.
    pub fn open(doc: PagedDoc, wal: Wal, config: StoreConfig) -> Store {
        Store {
            shard: Shard::open(doc, wal, config),
        }
    }

    /// Unwraps the compatibility facade into the [`Shard`] it holds.
    /// Consuming shard operations (like [`Shard::into_parts`]) live
    /// here, since a consuming call cannot travel through `Deref`.
    pub fn into_shard(self) -> Shard {
        self.shard
    }

    /// Tears the store down into its document and WAL.
    #[deprecated(note = "use Catalog::export for catalog documents, \
                Store::into_shard().into_parts() to keep this shape, or \
                Shard::wal_raw when only the log bytes are needed")]
    pub fn into_parts(self) -> (PagedDoc, Wal) {
        self.shard.into_parts()
    }
}

impl std::ops::Deref for Store {
    type Target = Shard;

    fn deref(&self) -> &Shard {
        &self.shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::wal::WalRecord;
    use mbxq_storage::serialize::to_xml;
    use mbxq_storage::{InsertPosition, NodeId, PageConfig, TreeView};
    use mbxq_xml::Document;
    use mbxq_xpath::XPath;

    /// Shreds (page size 8, fill 6) as: page 0 = site, people, person,
    /// name, text, regions; page 1 = africa + its five children; page 2 =
    /// asia + its two children. So africa and asia live on *different*
    /// pages while sharing all ancestors — the shape the delta-locking
    /// tests need.
    const DOC: &str = r#"<site><people><person id="p0"><name>Ann</name></person></people><regions><africa><m1/><m2/><m3/><m4/><m5/></africa><asia><n1/><n2/></asia></regions></site>"#;

    fn store(mode: AncestorLockMode) -> Store {
        store_with(mode, CommitPipeline::Short)
    }

    fn store_with(mode: AncestorLockMode, pipeline: CommitPipeline) -> Store {
        let doc = PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap();
        Store::open(
            doc,
            Wal::in_memory(),
            StoreConfig {
                ancestor_mode: mode,
                lock_timeout: Duration::from_millis(200),
                validate_on_commit: true,
                pipeline,
                ..StoreConfig::default()
            },
        )
    }

    /// The plan cache's adaptive memory: an Auto query records
    /// estimated-vs-observed cardinality for its multi-predicate step,
    /// the annotated explain renders it, later queries reuse the entry
    /// (same feedback store), and a vacuum's epoch bump discards the
    /// observations together with the compiled plan.
    #[test]
    fn plan_cache_feedback_and_annotated_explain() {
        let s = store(AncestorLockMode::Delta);
        let q = "//person[@id = \"p0\"][name = \"Ann\"]";
        assert!(s.plan_feedback(q).is_none(), "never compiled yet");
        let v = s.query(q).unwrap();
        let fb = s.plan_feedback(q).unwrap();
        assert_eq!(fb.len(), 1, "one multi-predicate step");
        assert_eq!(fb[0].observed, 1);
        assert!(fb[0].estimated >= fb[0].observed, "bound is pessimistic");
        let annotated = s.explain_query(q).unwrap();
        assert!(annotated.contains("multi-probe"), "{annotated}");
        assert!(annotated.contains("cardinality est≈"), "{annotated}");
        assert!(annotated.contains("obs=1"), "{annotated}");
        let v2 = s.query(q).unwrap();
        assert_eq!(v, v2);
        assert!(s.plan_cache_stats().hits >= 1);
        s.vacuum().unwrap();
        assert!(
            s.plan_feedback(q).is_none(),
            "vacuum must invalidate the entry and its observations"
        );
    }

    #[test]
    fn commit_becomes_visible_atomically() {
        let s = store(AncestorLockMode::Delta);
        let before = s.snapshot();
        let mut t = s.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        let frag = Document::parse_fragment("<person id=\"p9\"/>").unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        // Not visible before commit — neither in old snapshots nor new.
        assert!(!to_xml(s.snapshot().as_ref()).unwrap().contains("p9"));
        let info = t.commit().unwrap();
        assert_eq!(info.inserted, 1);
        assert!(to_xml(s.snapshot().as_ref()).unwrap().contains("p9"));
        // The old snapshot is immutable (multi-version).
        assert!(!to_xml(before.as_ref()).unwrap().contains("p9"));
    }

    #[test]
    fn abort_discards_everything() {
        let s = store(AncestorLockMode::Delta);
        let before = to_xml(s.snapshot().as_ref()).unwrap();
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.delete(person[0]).unwrap();
        t.abort();
        assert_eq!(to_xml(s.snapshot().as_ref()).unwrap(), before);
        // Locks were released: a new writer can proceed.
        let mut t2 = s.begin();
        let person = t2.select(&XPath::parse("//person").unwrap()).unwrap();
        t2.delete(person[0]).unwrap();
        t2.commit().unwrap();
        assert!(!to_xml(s.snapshot().as_ref()).unwrap().contains("person"));
    }

    #[test]
    fn conflicting_writers_serialize_on_page_locks() {
        let s = store(AncestorLockMode::Delta);
        let mut t1 = s.begin();
        let p1 = t1.select(&XPath::parse("//person").unwrap()).unwrap();
        t1.update_value(
            {
                // the text node under name
                let pre = t1.snapshot().node_to_pre(p1[0]).unwrap();
                let text_pre = pre + 2;
                t1.snapshot().pre_to_node(text_pre).unwrap()
            },
            "Eve",
        )
        .unwrap();
        // Second writer wants the same page — must time out while t1
        // holds the write lock.
        let mut t2 = s.begin();
        let p2 = t2.select(&XPath::parse("//person").unwrap());
        // select read-locks the page, which already conflicts:
        assert!(matches!(p2, Err(TxnError::LockTimeout { .. })));
        drop(t2);
        t1.commit().unwrap();
        // Now t3 can proceed.
        let mut t3 = s.begin();
        assert!(t3.select(&XPath::parse("//person").unwrap()).is_ok());
        t3.abort();
    }

    #[test]
    fn delta_mode_leaves_root_page_unlocked() {
        // Two writers in *different* pages commit concurrently even
        // though they share every ancestor (the root).
        let s = store(AncestorLockMode::Delta);
        // africa and asia live on page 1 together; force them apart with
        // a bigger doc: instead verify lock sets directly.
        let mut t1 = s.begin();
        let africa = t1.select(&XPath::parse("//africa").unwrap()).unwrap();
        let frag = Document::parse_fragment("<item/>").unwrap();
        t1.insert(InsertPosition::LastChildOf(africa[0]), &frag)
            .unwrap();
        // Root lives on page 0; in Delta mode page 0 must not be
        // write-locked by t1 (africa is on page 1).
        let root_page_write_locked = s.locks.is_write_locked(0);
        assert!(!root_page_write_locked);
        t1.commit().unwrap();
        // Sizes still correct: root grew by 1.
        let d = s.snapshot();
        assert_eq!(TreeView::size(d.as_ref(), 0), 15);
    }

    #[test]
    fn exclusive_mode_blocks_on_the_root() {
        let s = store(AncestorLockMode::Exclusive);
        let mut t1 = s.begin();
        let africa = t1.select(&XPath::parse("//africa").unwrap()).unwrap();
        let frag = Document::parse_fragment("<item/>").unwrap();
        t1.insert(InsertPosition::LastChildOf(africa[0]), &frag)
            .unwrap();
        // Root page (0) is now write-locked by t1.
        assert!(s.locks.is_write_locked(0));
        // A second writer in a *disjoint* subtree still blocks.
        let mut t2 = s.begin();
        let asia = t2.select(&XPath::parse("//asia").unwrap()).unwrap();
        let res = t2.insert(InsertPosition::LastChildOf(asia[0]), &frag);
        assert!(matches!(res, Err(TxnError::LockTimeout { .. })));
        drop(t2);
        t1.commit().unwrap();
    }

    #[test]
    fn commutative_deltas_from_sequential_commits() {
        // Two transactions inserting under different parents; their
        // ancestor deltas add up regardless of commit order.
        for order in [true, false] {
            let s = store(AncestorLockMode::Delta);
            let frag2 = Document::parse_fragment("<x><y/></x>").unwrap();
            let frag3 = Document::parse_fragment("<u><v/><w/></u>").unwrap();
            let mut ta = s.begin();
            let africa = ta.select(&XPath::parse("//africa").unwrap()).unwrap();
            ta.insert(InsertPosition::LastChildOf(africa[0]), &frag2)
                .unwrap();
            let mut tb = s.begin();
            let asia = tb.select(&XPath::parse("//asia").unwrap()).unwrap();
            tb.insert(InsertPosition::LastChildOf(asia[0]), &frag3)
                .unwrap();
            if order {
                ta.commit().unwrap();
                tb.commit().unwrap();
            } else {
                tb.commit().unwrap();
                ta.commit().unwrap();
            }
            let d = s.snapshot();
            // root size: 14 original descendants + 2 + 3.
            assert_eq!(TreeView::size(d.as_ref(), 0), 19, "order={order}");
            mbxq_storage::invariants::check_paged(d.as_ref()).unwrap();
        }
    }

    /// Both pipelines must produce the same committed state (the
    /// LongLock baseline exists only for the benchmark ablation).
    #[test]
    fn pipelines_commit_identically() {
        let mut results = Vec::new();
        for pipeline in [CommitPipeline::Short, CommitPipeline::LongLock] {
            let s = store_with(AncestorLockMode::Delta, pipeline);
            let mut t = s.begin();
            let africa = t.select(&XPath::parse("//africa").unwrap()).unwrap();
            let frag = Document::parse_fragment("<item><sub/></item>").unwrap();
            t.insert(InsertPosition::LastChildOf(africa[0]), &frag)
                .unwrap();
            let info = t.commit().unwrap();
            assert_eq!(info.inserted, 2, "{pipeline:?}");
            results.push(to_xml(s.snapshot().as_ref()).unwrap());
        }
        assert_eq!(results[0], results[1]);
    }

    /// Two transactions staged against the same base version and
    /// committed concurrently: whichever publishes second must detect
    /// the stamp change and re-apply onto the fresh master, so both
    /// updates survive (page disjointness + commutative deltas).
    #[test]
    fn concurrent_commits_merge_via_stamp_recheck() {
        let s = store(AncestorLockMode::Delta);
        let stamp0 = s.version_stamp();
        let frag_a = Document::parse_fragment("<itemA/>").unwrap();
        let frag_b = Document::parse_fragment("<itemB/>").unwrap();
        // Stage both against the same base version (stamp0).
        let mut ta = s.begin();
        let africa = ta.select(&XPath::parse("//africa").unwrap()).unwrap();
        ta.insert(InsertPosition::LastChildOf(africa[0]), &frag_a)
            .unwrap();
        let mut tb = s.begin();
        let asia = tb.select(&XPath::parse("//asia").unwrap()).unwrap();
        tb.insert(InsertPosition::LastChildOf(asia[0]), &frag_b)
            .unwrap();
        // Commit them from racing threads.
        std::thread::scope(|scope| {
            let ha = scope.spawn(move || ta.commit().unwrap());
            let hb = scope.spawn(move || tb.commit().unwrap());
            ha.join().unwrap();
            hb.join().unwrap();
        });
        assert_eq!(s.version_stamp(), stamp0 + 2, "each commit publishes");
        let live = to_xml(s.snapshot().as_ref()).unwrap();
        assert!(live.contains("itemA") && live.contains("itemB"));
        let d = s.snapshot();
        assert_eq!(TreeView::size(d.as_ref(), 0), 16);
        mbxq_storage::invariants::check_paged(d.as_ref()).unwrap();
    }

    #[test]
    fn wal_records_committed_transactions() {
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        t.commit().unwrap();
        let records = wal::decode_log(&s.wal_raw().unwrap()).unwrap();
        assert_eq!(records.len(), 1);
        match &records[0] {
            WalRecord::Commit { ops, .. } => assert_eq!(ops.len(), 1),
            other => panic!("expected a commit record, got {other:?}"),
        }
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let s = store(AncestorLockMode::Delta);
        let t = s.begin();
        let info = t.commit().unwrap();
        assert_eq!(info.ops, 0);
        assert!(wal::decode_log(&s.wal_raw().unwrap()).unwrap().is_empty());
    }

    /// Regression for the commit-path lock leak: a staged op that fails
    /// while being applied to the master (here: a redo op naming a node
    /// that does not exist) must still release every page lock — before
    /// the fix, `finished` was set before the fallible body ran, so the
    /// `Drop` guard skipped cleanup and later writers starved.
    #[test]
    fn failed_commit_releases_all_locks() {
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        // Sabotage the redo list with an op that cannot apply.
        t.ops.push(Op::Delete {
            node: NodeId(99_999),
        });
        assert!(s.locked_pages() > 0);
        let err = t.commit().unwrap_err();
        assert!(matches!(err, TxnError::Storage(_)), "got {err}");
        assert_eq!(
            s.locked_pages(),
            0,
            "a failed commit must not strand page locks"
        );
        // Master unchanged, and later writers proceed normally.
        assert!(!to_xml(s.snapshot().as_ref()).unwrap().contains("vip"));
        let mut t2 = s.begin();
        let person = t2.select(&XPath::parse("//person").unwrap()).unwrap();
        t2.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        t2.commit().unwrap();
        assert!(to_xml(s.snapshot().as_ref()).unwrap().contains("vip"));
    }

    #[test]
    fn failed_validation_releases_all_locks() {
        // Same guarantee on the validation exit path: an op list whose
        // replay produces a different shape than the workspace (a
        // duplicate insert of the same reserved ids) trips the checker.
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        let frag = Document::parse_fragment("<person id=\"dup\"/>").unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        let dup = t.ops[0].clone();
        t.ops.push(dup);
        let err = t.commit().unwrap_err();
        assert!(
            matches!(
                err,
                TxnError::Storage(_) | TxnError::ValidationFailed { .. }
            ),
            "got {err}"
        );
        assert_eq!(s.locked_pages(), 0);
    }

    /// The commit publishes by swapping page pointers: everything but
    /// the touched pages stays physically shared with the previous
    /// version.
    #[test]
    fn commit_shares_untouched_pages_with_the_old_version() {
        let s = store(AncestorLockMode::Delta);
        let before = s.snapshot();
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        t.commit().unwrap();
        let after = s.snapshot();
        let (shared, total) = after.shared_pages_with(&before);
        assert!(
            shared > 0 && shared <= total,
            "expected structural sharing, got {shared}/{total}"
        );
        // An attribute write touches no base-table column at all: every
        // tree page stays shared.
        assert_eq!(shared, total, "attribute set must not touch tree pages");
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovery_resumes_from_it() {
        let s = store(AncestorLockMode::Delta);
        let frag = Document::parse_fragment("<person id=\"pre\"/>").unwrap();
        let mut t = s.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        t.commit().unwrap();

        let info = s.checkpoint().unwrap();
        assert!(info.wal_bytes_before > 0);
        assert_eq!(info.nodes, s.snapshot().used_count());

        // Post-checkpoint commit deletes a PRE-checkpoint node — only
        // possible if the checkpoint preserved node ids.
        let mut t = s.begin();
        let victims = t
            .select(&XPath::parse("//person[@id='pre']").unwrap())
            .unwrap();
        t.delete(victims[0]).unwrap();
        t.commit().unwrap();

        let live = to_xml(s.snapshot().as_ref()).unwrap();
        let recovered =
            recover::recover(DOC, PageConfig::new(8, 75).unwrap(), &s.wal_raw().unwrap())
                .expect("recovery resumes from the checkpoint");
        assert_eq!(to_xml(&recovered).unwrap(), live);
        mbxq_storage::invariants::check_paged(&recovered).unwrap();
    }

    #[test]
    fn store_vacuum_publishes_and_respects_writers() {
        let s = store(AncestorLockMode::Delta);
        // Fragment the store a little.
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.delete(person[0]).unwrap();
        t.commit().unwrap();
        let occ_before = s.occupancy();

        // A writer holding locks blocks vacuum.
        let mut w = s.begin();
        let africa = w.select(&XPath::parse("//africa").unwrap()).unwrap();
        let frag = Document::parse_fragment("<m9/>").unwrap();
        w.insert(InsertPosition::LastChildOf(africa[0]), &frag)
            .unwrap();
        assert!(matches!(s.vacuum(), Err(TxnError::Busy { .. })));
        w.commit().unwrap();

        let before = to_xml(s.snapshot().as_ref()).unwrap();
        let report = s.vacuum().unwrap();
        assert!(report.tuples_moved > 0);
        assert_eq!(to_xml(s.snapshot().as_ref()).unwrap(), before);
        assert!(s.occupancy() >= occ_before);
        // The store stays fully usable after reorganization.
        let mut t = s.begin();
        let asia = t.select(&XPath::parse("//asia").unwrap()).unwrap();
        let frag = Document::parse_fragment("<n3/>").unwrap();
        t.insert(InsertPosition::LastChildOf(asia[0]), &frag)
            .unwrap();
        t.commit().unwrap();
        mbxq_storage::invariants::check_paged(s.snapshot().as_ref()).unwrap();
    }

    /// A transaction that took its snapshot before a vacuum must not be
    /// allowed to lock pages afterwards: its page numbering refers to
    /// the pre-vacuum layout, so its locks would not actually cover its
    /// targets and 2PL disjointness would silently break.
    #[test]
    fn vacuum_invalidates_transactions_begun_before_it() {
        let s = store(AncestorLockMode::Delta);
        let mut stale = s.begin(); // snapshot pinned, no locks yet
        s.vacuum().unwrap();
        let err = stale
            .select(&XPath::parse("//person").unwrap())
            .unwrap_err();
        assert!(matches!(err, TxnError::LayoutChanged), "got {err}");
        assert_eq!(
            s.locked_pages(),
            0,
            "the refused select must not keep locks"
        );
        stale.abort();
        // A fresh transaction on the new layout works.
        let mut t = s.begin();
        assert!(t.select(&XPath::parse("//person").unwrap()).is_ok());
        t.abort();
    }

    #[test]
    fn checkpoint_compacts_the_published_deltas() {
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        let frag = Document::parse_fragment("<person id=\"fresh\"/>").unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        t.commit().unwrap();
        assert!(
            s.snapshot().pool().delta_len() > 0,
            "the commit interned new values into the delta"
        );
        s.checkpoint().unwrap();
        assert_eq!(
            s.snapshot().pool().delta_len(),
            0,
            "checkpoint must fold pool deltas into the shared base"
        );
        assert!(to_xml(s.snapshot().as_ref()).unwrap().contains("fresh"));
    }

    #[test]
    fn reader_snapshot_survives_many_commits() {
        let s = store(AncestorLockMode::Delta);
        let snap = s.snapshot();
        let baseline = to_xml(snap.as_ref()).unwrap();
        for i in 0..5 {
            let mut t = s.begin();
            let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
            let frag = Document::parse_fragment(&format!("<person id=\"g{i}\"/>")).unwrap();
            t.insert(InsertPosition::LastChildOf(people[0]), &frag)
                .unwrap();
            t.commit().unwrap();
        }
        assert_eq!(to_xml(snap.as_ref()).unwrap(), baseline);
        assert_eq!(
            to_xml(s.snapshot().as_ref())
                .unwrap()
                .matches("person")
                .count(),
            baseline.matches("person").count() + 5 // 5 self-closing elements
        );
    }

    /// The deprecated compatibility path must keep working (and agree
    /// with the replacement) until it is removed.
    #[test]
    fn store_into_parts_compat() {
        let s = store(AncestorLockMode::Delta);
        let mut t = s.begin();
        let person = t.select(&XPath::parse("//person").unwrap()).unwrap();
        t.set_attribute(person[0], &mbxq_xml::QName::local("vip"), "yes")
            .unwrap();
        t.commit().unwrap();
        let via_shard = s.wal_raw().unwrap();
        let live = s.snapshot().used_count();
        #[allow(deprecated)]
        let (doc, wal) = s.into_parts();
        assert_eq!(wal.raw().unwrap(), via_shard);
        assert_eq!(doc.used_count(), live);

        // And the successor spelling tears down identically.
        let s2 = store(AncestorLockMode::Delta);
        let (doc2, _) = s2.into_shard().into_parts();
        assert_eq!(doc2.used_count(), doc.used_count());
    }
}
