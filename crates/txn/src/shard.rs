//! The [`Shard`]: one transactional, versioned document.
//!
//! A shard owns everything the single-document store owned before the
//! catalog split: the committed-version cell, the commit lock and
//! pipeline gate, its own WAL and group-commit queue, the page-lock
//! table, the layout epoch and the compiled-plan cache. A
//! [`crate::Catalog`] holds many shards (one per document) and injects
//! one shared [`QueryPool`] into all of them; the [`crate::Store`]
//! compatibility wrapper holds exactly one with a private pool. The
//! commit pipeline, locking protocol and maintenance operations are
//! documented in the crate-level docs.

use crate::pool::QueryPool;
use crate::wal::{Wal, WalRecord};
use crate::{
    group, locks, op::Op, AncestorLockMode, CheckpointInfo, CommitInfo, CommitPipeline,
    GroupCommitStats, PlanCacheStats, Result, StoreConfig, TxnError, TxnId,
};
use mbxq_storage::{ArcCell, InsertPosition, NodeId, PagedDoc, StorageError, TreeView};
use mbxq_xml::Node;
use mbxq_xpath::XPath;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One published version of the document: the stamp and the document
/// pointer travel in a single `Arc`, so readers observe both atomically.
struct Version {
    /// Monotonic publish counter — bumped by every commit, checkpoint
    /// and vacuum. Speculative commits key their work on it and re-check
    /// it under the commit lock.
    stamp: u64,
    /// The committed document.
    doc: Arc<PagedDoc>,
}

/// A transactional, versioned XML document store — one document of a
/// [`crate::Catalog`], or the whole store behind the [`crate::Store`]
/// compatibility wrapper.
pub struct Shard {
    /// The document name under which a catalog opened this shard
    /// (`None` for a standalone store). Stamped into checkpoint dumps
    /// so recovery can detect a WAL file swapped between shard slots.
    name: Option<String>,
    /// The committed version. Readers clone the `Arc` out of the
    /// lock-free cell (MVCC snapshot) — they never touch any lock, so
    /// snapshot latency is independent of writer traffic.
    version: ArcCell<Version>,
    /// The global write lock of Figure 8 — in the
    /// [`CommitPipeline::Short`] pipeline it is held **only** for the
    /// stamp recheck + pointer-swap publish.
    commit_lock: Mutex<()>,
    /// Commit-pipeline gate: commits hold it shared from their WAL
    /// append through their publish; [`Shard::checkpoint`] takes it
    /// exclusively so the log truncation can never discard a record
    /// whose effects are still on their way to being published.
    pipeline_gate: RwLock<()>,
    wal: Mutex<Wal>,
    /// Group-commit coordinator batching concurrent WAL appends.
    group: group::GroupCommit,
    pub(crate) locks: locks::LockManager,
    next_txn: AtomicU64,
    /// Shared node-id allocation point: transactions reserve id ranges
    /// here at staging time, so ids are identical in the transaction's
    /// workspace, at commit replay, and during recovery.
    next_node: AtomicU64,
    /// Bumped by [`Shard::vacuum`] (which relocates tuples across
    /// logical pages). Transactions verify it *after* acquiring page
    /// locks: a held lock blocks vacuum, so an unchanged epoch at that
    /// point proves the lock's page numbering is current.
    layout_epoch: AtomicU64,
    /// Compiled-plan cache for [`Shard::query`], keyed by query text,
    /// with LRU eviction of single entries at the cap.
    plans: Mutex<PlanCache>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
    /// Morsel-execution pool handle. Every shard of a catalog holds the
    /// *same* `Arc` (one set of worker threads per catalog, not per
    /// document); a standalone [`crate::Store`] gets a private one.
    /// Queries borrow the pool per evaluation; its workers outlive
    /// every snapshot they read because `run` blocks until all morsels
    /// finish.
    pool: Arc<QueryPool>,
    config: StoreConfig,
}

/// The [`Shard::query`] plan cache: map + logical clock for LRU.
#[derive(Default)]
struct PlanCache {
    map: HashMap<String, CachedPlan>,
    /// Monotonic use counter; every hit/insert stamps its entry.
    tick: u64,
}

/// One [`Shard::query`] cache entry: the compiled plan plus the layout
/// epoch it was compiled under. A vacuum reorganizes the page layout
/// (and re-costs every strategy surface), so an epoch bump invalidates
/// the entry and the next use recompiles.
struct CachedPlan {
    epoch: u64,
    plan: Arc<XPath>,
    /// Adaptive-execution memory for this entry: estimated vs observed
    /// cardinality per multi-predicate step, written by every Auto
    /// evaluation and consulted by the next one (see
    /// [`mbxq_xpath::ReplanMode`]). Dies with the entry, so a vacuum's
    /// epoch bump discards the observations along with the plan.
    feedback: Arc<mbxq_xpath::PlanFeedback>,
    /// [`PlanCache::tick`] of the most recent use (LRU victim choice).
    last_used: u64,
}

impl Shard {
    /// Opens a standalone shard over an already-shredded document, with
    /// a private query pool of [`StoreConfig::query_threads`] width.
    pub fn open(doc: PagedDoc, wal: Wal, config: StoreConfig) -> Shard {
        let pool = Arc::new(QueryPool::with_overhead(
            config.query_threads,
            config.morsel_overhead_ns,
        ));
        Shard::open_named(None, doc, wal, config, pool)
    }

    /// Opens a shard under a document name with an injected (usually
    /// catalog-shared) query pool. The name is stamped into every
    /// checkpoint this shard writes.
    pub fn open_named(
        name: Option<String>,
        doc: PagedDoc,
        wal: Wal,
        config: StoreConfig,
        pool: Arc<QueryPool>,
    ) -> Shard {
        let next_node = doc.node_alloc_end();
        Shard {
            name,
            version: ArcCell::new(Arc::new(Version {
                stamp: 0,
                doc: Arc::new(doc),
            })),
            commit_lock: Mutex::new(()),
            pipeline_gate: RwLock::new(()),
            wal: Mutex::new(wal),
            group: group::GroupCommit::new(),
            locks: locks::LockManager::new(),
            next_txn: AtomicU64::new(1),
            next_node: AtomicU64::new(next_node),
            layout_epoch: AtomicU64::new(0),
            plans: Mutex::new(PlanCache::default()),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_evictions: AtomicU64::new(0),
            pool,
            config,
        }
    }

    /// The document name this shard was opened under (`None` for a
    /// standalone store).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The shard configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Takes a consistent read snapshot (a read-only transaction).
    /// **Lock-free**: a handful of atomic operations on the version
    /// cell, never a mutex or rwlock — see [`mbxq_storage::ArcCell`] —
    /// so readers are unaffected by writer load. The snapshot stays
    /// valid and immutable no matter what commits afterwards.
    pub fn snapshot(&self) -> Arc<PagedDoc> {
        self.version.load().doc.clone()
    }

    /// The current publish stamp (bumped by every commit, checkpoint and
    /// vacuum). Diagnostic: the concurrency tests use it to enumerate
    /// published versions.
    pub fn version_stamp(&self) -> u64 {
        self.version.load().stamp
    }

    /// Cumulative group-commit counters ([`GroupCommitStats`]); under
    /// concurrent commit load, `records` outgrowing `batches` proves
    /// committers shared flush I/Os.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.group.stats()
    }

    /// Publishes `doc` as the next version. Caller MUST hold
    /// `commit_lock` (publishes are serialized; the cell itself only
    /// protects readers).
    fn publish_locked(&self, doc: PagedDoc) {
        let stamp = self.version.load().stamp + 1;
        self.version.store(Arc::new(Version {
            stamp,
            doc: Arc::new(doc),
        }));
    }

    /// Begins a write transaction.
    pub fn begin(&self) -> WriteTxn<'_> {
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        WriteTxn {
            shard: self,
            id,
            // Epoch is read BEFORE the snapshot: vacuum publishes before
            // bumping, so observing the new epoch implies the snapshot
            // read below sees the new layout (never new-epoch/old-doc).
            epoch: self.layout_epoch.load(Ordering::Acquire),
            snapshot: self.snapshot(),
            work: None,
            ops: Vec::new(),
            finished: false,
        }
    }

    /// Consumes the shard, returning the current document and the WAL.
    pub fn into_parts(self) -> (PagedDoc, Wal) {
        let doc_arc = match Arc::try_unwrap(self.version.into_inner()) {
            Ok(version) => version.doc,
            Err(shared) => shared.doc.clone(),
        };
        let doc = Arc::try_unwrap(doc_arc).unwrap_or_else(|arc| (*arc).clone());
        (doc, self.wal.into_inner().unwrap())
    }

    /// The raw WAL bytes as a recovery process would find them — what
    /// [`crate::recover::recover`] and
    /// [`crate::recover::recover_shard`] take as input. Replaces the
    /// `into_parts`-then-`raw` dance without consuming the shard.
    pub fn wal_raw(&self) -> Result<Vec<u8>> {
        Ok(self.wal.lock().unwrap().raw()?)
    }

    /// Arms WAL crash injection (see [`Wal::crash_after_bytes`]): log
    /// I/O fails once the cumulative byte count would exceed `limit`.
    /// Test hook for the crash-recovery property suites.
    pub fn wal_crash_after_bytes(&self, limit: usize) {
        self.wal.lock().unwrap().crash_after_bytes(limit);
    }

    /// Runs `f` with the committed document (convenience for queries that
    /// do not need a long-lived snapshot).
    pub fn with_doc<R>(&self, f: impl FnOnce(&PagedDoc) -> R) -> R {
        f(&self.snapshot())
    }

    /// Number of logical pages currently locked by in-flight write
    /// transactions (diagnostic; the regression tests for the
    /// commit-path lock leak assert on it).
    pub fn locked_pages(&self) -> usize {
        self.locks.locked_pages()
    }

    /// Writes a checkpoint and truncates the WAL to it.
    ///
    /// Under the commit lock (so no commit interleaves), the current
    /// version is serialized — as a structure-preserving tuple dump
    /// carrying every node id plus the id allocation point, *not* as XML
    /// text, which would coalesce adjacent text tuples on reparse — into
    /// a [`WalRecord::Checkpoint`], and the log is atomically replaced
    /// by that single record. [`crate::recover`] then resumes from the
    /// checkpoint instead of replaying history from genesis, and the log
    /// stops growing without bound. A crash during checkpointing leaves
    /// the previous log intact (write-temp-then-rename). In a catalog,
    /// this stalls **only this shard's** committers: every other
    /// document keeps its own gate, commit lock and WAL.
    pub fn checkpoint(&self) -> Result<CheckpointInfo> {
        // Exclusive pipeline gate first: a Short-pipeline commit holds
        // the gate shared from its WAL append through its publish, so
        // once the write side is granted, no commit record in the log
        // is still waiting to be published — truncating cannot lose an
        // in-flight commit. (Lock order: gate, then commit lock; the
        // commit path uses the same order.)
        let _gate = self.pipeline_gate.write().unwrap();
        let _global = self.commit_lock.lock().unwrap();
        let doc = self.snapshot();
        let record = WalRecord::Checkpoint {
            alloc_end: doc.node_alloc_end(),
            tuples: doc.used_count(),
            dump: doc.checkpoint_dump_named(self.name.as_deref()),
        };
        let mut wal = self.wal.lock().unwrap();
        let wal_bytes_before = wal.len_bytes();
        wal.reset_with(&record)?;
        // Checkpoints double as the pool/attr-index maintenance point:
        // fold the accumulated deltas into fresh shared bases (never
        // done on the commit path, where it would cost O(document) under
        // the commit lock) and publish the compacted version. Node ids,
        // pages and interned ids are unchanged, so snapshots, staged
        // transactions and page locks are all unaffected; the stamp bump
        // makes any commit speculated against the uncompacted version
        // re-apply onto the compacted one instead of publishing the
        // compaction away.
        let mut compacted = (*doc).clone();
        compacted.pool_mut().compact();
        compacted.compact_attr_index();
        compacted.compact_name_index();
        compacted.compact_content_index();
        self.publish_locked(compacted);
        Ok(CheckpointInfo {
            nodes: doc.used_count(),
            wal_bytes_before,
            wal_bytes_after: wal.len_bytes(),
        })
    }

    /// Reorganizes the document's pages at the configured fill factor
    /// (see [`PagedDoc::vacuum`]), under the commit lock, publishing the
    /// rewritten version like a commit does.
    ///
    /// Fails with [`TxnError::Busy`] if write transactions currently
    /// hold page locks: vacuum relocates tuples across logical pages, so
    /// it must not run concurrently with writers whose lock sets name
    /// the old layout. Like [`Shard::checkpoint`], this is strictly
    /// per-shard maintenance — other documents of the same catalog are
    /// untouched.
    pub fn vacuum(&self) -> Result<mbxq_storage::VacuumReport> {
        let _global = self.commit_lock.lock().unwrap();
        // Freeze the lock table for the whole rebuild-publish-bump
        // sequence: the freeze verifies no lock is held *and* prevents
        // any acquisition while page numbers are in flux, closing the
        // window in which a transaction could lock stale numbering with
        // a current epoch. Publish happens before the epoch bump, and
        // `begin` reads the epoch before the snapshot, so a transaction
        // observing the new epoch is guaranteed the new layout.
        self.locks
            .freeze()
            .map_err(|locked_pages| TxnError::Busy { locked_pages })?;
        let result = (|| {
            let current = self.snapshot();
            let mut new_doc = (*current).clone();
            let report = new_doc.vacuum()?;
            self.publish_locked(new_doc);
            self.layout_epoch.fetch_add(1, Ordering::AcqRel);
            Ok(report)
        })();
        self.locks.unfreeze();
        result
    }

    /// Fraction of allocated slots holding live tuples in the committed
    /// version (0.0–1.0) — the trigger metric for [`Shard::vacuum`].
    pub fn occupancy(&self) -> f64 {
        self.snapshot().occupancy()
    }

    /// The current layout epoch (bumped by every [`Shard::vacuum`]).
    pub fn layout_epoch(&self) -> u64 {
        self.layout_epoch.load(Ordering::Acquire)
    }

    /// Evaluates an XPath query against the committed version through
    /// the per-shard **plan cache**: the first use of a query text
    /// compiles it (parse → logical plan → rewrite → physical plan),
    /// later uses reuse the compiled plan. Entries are invalidated by
    /// the layout epoch, so a [`Shard::vacuum`] forces recompilation.
    /// Evaluation runs on a lock-free [`Shard::snapshot`].
    pub fn query(&self, text: &str) -> Result<mbxq_xpath::Value> {
        self.query_opts(text, &mbxq_xpath::EvalOptions::default())
    }

    /// Like [`Shard::query`], coerced to a node set.
    pub fn query_nodes(&self, text: &str) -> Result<Vec<NodeId>> {
        self.query_nodes_opts(text, &mbxq_xpath::EvalOptions::default())
    }

    /// [`Shard::query`] with full evaluation options (axis/value
    /// strategy overrides, decision counters) — the cached plan carries
    /// no strategy decisions itself, so forced arms and live statistics
    /// both flow through one compiled plan.
    pub fn query_opts(
        &self,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<mbxq_xpath::Value> {
        self.query_on(&self.snapshot(), text, opts)
    }

    /// [`Shard::query_nodes`] with full evaluation options.
    pub fn query_nodes_opts(
        &self,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<Vec<NodeId>> {
        self.query_nodes_on(&self.snapshot(), text, opts)
    }

    /// [`Shard::query_opts`] against a **caller-held snapshot** instead
    /// of the committed version — the repeatable-read primitive: a
    /// session that pins [`Shard::snapshot`] `Arc`s re-serves the same
    /// state across requests no matter what commits in between, while
    /// still going through this shard's plan cache and worker pool.
    /// The returned [`mbxq_xpath::Value::Nodes`] carries pre ranks of
    /// `snapshot`; callers needing stable ids map them with
    /// [`PagedDoc::pre_to_node`] on the *same* snapshot.
    pub fn query_on(
        &self,
        snapshot: &PagedDoc,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<mbxq_xpath::Value> {
        let (plan, feedback) = self.cached_plan(text)?;
        let root: Vec<u64> = snapshot.root_pre().into_iter().collect();
        let opts = self.inject_pool(*opts).or_feedback(&feedback);
        Ok(plan.eval_opts(snapshot, &root, &opts)?)
    }

    /// [`Shard::query_nodes_opts`] against a caller-held snapshot (see
    /// [`Shard::query_on`]); results are stable [`NodeId`]s mapped on
    /// that snapshot.
    pub fn query_nodes_on(
        &self,
        snapshot: &PagedDoc,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<Vec<NodeId>> {
        let (plan, feedback) = self.cached_plan(text)?;
        let opts = self.inject_pool(*opts).or_feedback(&feedback);
        let pres = plan.select_from_root_opts(snapshot, &opts)?;
        pres.iter()
            .map(|&p| snapshot.pre_to_node(p).map_err(TxnError::from))
            .collect()
    }

    /// The shared query worker pool, spawned lazily on first use;
    /// `None` when [`StoreConfig::query_threads`] < 2. All shards of a
    /// catalog return the *same* pool.
    pub fn query_pool(&self) -> Option<&mbxq_xpath::WorkerPool> {
        self.pool.get()
    }

    /// The pool handle itself (shared-ownership form of
    /// [`Shard::query_pool`]).
    pub fn pool_handle(&self) -> &Arc<QueryPool> {
        &self.pool
    }

    /// Adds the shard's pool to `opts` unless the caller already chose
    /// one — every query evaluation funnels through here, so a shard
    /// opened with `query_threads` ≥ 2 parallelizes transparently.
    fn inject_pool<'a>(&'a self, opts: mbxq_xpath::EvalOptions<'a>) -> mbxq_xpath::EvalOptions<'a> {
        match self.query_pool() {
            Some(pool) => opts.or_pool(pool),
            None => opts,
        }
    }

    /// Entries beyond which the plan cache evicts. Interpolated query
    /// texts (`…[@id="personN"]…` per request) would otherwise grow the
    /// map without bound for the shard's lifetime.
    const PLAN_CACHE_CAP: usize = 1024;

    /// The compiled plan for `text`, from the cache when its epoch is
    /// current, freshly compiled (and cached) otherwise. At the cap the
    /// cache evicts **single entries, least-recently-used first** (a
    /// stale-epoch entry is preferred as the victim — it can never hit
    /// again), so a hot query survives any storm of one-shot texts.
    fn cached_plan(&self, text: &str) -> Result<(Arc<XPath>, Arc<mbxq_xpath::PlanFeedback>)> {
        let epoch = self.layout_epoch();
        {
            let mut plans = self.plans.lock().unwrap();
            plans.tick += 1;
            let tick = plans.tick;
            if let Some(entry) = plans.map.get_mut(text) {
                if entry.epoch == epoch {
                    entry.last_used = tick;
                    self.plan_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((entry.plan.clone(), entry.feedback.clone()));
                }
            }
        }
        // Compile OUTSIDE the lock: a slow compile must not serialize
        // concurrent queries for unrelated (cached) texts. Racing
        // compilers of the same text both succeed; last insert wins.
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(XPath::parse(text)?);
        let mut plans = self.plans.lock().unwrap();
        while plans.map.len() >= Self::PLAN_CACHE_CAP && !plans.map.contains_key(text) {
            // Victim: any stale-epoch entry, else the LRU one. An O(n)
            // scan over ≤ cap entries, paid only on an insert at the
            // cap — the hit path stays O(1).
            let victim = plans
                .map
                .iter()
                .min_by_key(|(_, e)| (e.epoch == epoch, e.last_used))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    plans.map.remove(&k);
                    self.plan_evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        plans.tick += 1;
        let tick = plans.tick;
        let feedback = Arc::new(mbxq_xpath::PlanFeedback::new());
        plans.map.insert(
            text.to_string(),
            CachedPlan {
                epoch,
                plan: plan.clone(),
                feedback: feedback.clone(),
                last_used: tick,
            },
        );
        Ok((plan, feedback))
    }

    /// The recorded multi-predicate feedback for a cached query text:
    /// estimated vs observed candidate cardinality per step, in
    /// execution order. `None` when the text was never compiled (or its
    /// entry was evicted / epoch-invalidated).
    pub fn plan_feedback(&self, text: &str) -> Option<Vec<mbxq_xpath::StepFeedback>> {
        let epoch = self.layout_epoch();
        let plans = self.plans.lock().unwrap();
        let entry = plans.map.get(text)?;
        if entry.epoch != epoch {
            return None;
        }
        Some(entry.feedback.snapshot())
    }

    /// Explains the compiled physical plan for `text`, annotated with
    /// this shard's recorded estimated-vs-observed cardinalities for
    /// every multi-predicate step (compiling and caching the plan if
    /// needed) — the adaptive-execution introspection surface.
    pub fn explain_query(&self, text: &str) -> Result<String> {
        let (plan, feedback) = self.cached_plan(text)?;
        Ok(plan.explain_physical_annotated(&feedback.snapshot()))
    }

    /// Plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.plan_hits.load(Ordering::Relaxed),
            misses: self.plan_misses.load(Ordering::Relaxed),
            evictions: self.plan_evictions.load(Ordering::Relaxed),
            entries: self.plans.lock().unwrap().map.len(),
        }
    }
}

/// An in-flight write transaction.
///
/// Updates are *staged* (and locked) during the transaction and applied
/// to the master document only at commit — before that, no other
/// transaction (and no reader) can observe them, which is exactly the
/// isolation contract of the copy-on-write views in Figure 8.
pub struct WriteTxn<'s> {
    shard: &'s Shard,
    id: TxnId,
    /// The shard's layout epoch at begin time (see
    /// `Shard::layout_epoch`).
    epoch: u64,
    snapshot: Arc<PagedDoc>,
    /// Private working copy — the paper's copy-on-write view. Created on
    /// the first update so that later operations (and XUpdate commands)
    /// of the same transaction see earlier ones; readers and other
    /// transactions never see it.
    work: Option<Box<PagedDoc>>,
    pub(crate) ops: Vec<Op>,
    finished: bool,
}

impl WriteTxn<'_> {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The transaction's current view: its private workspace once it has
    /// written anything, else the begin-time snapshot.
    pub fn view(&self) -> &PagedDoc {
        match &self.work {
            Some(w) => w,
            None => &self.snapshot,
        }
    }

    /// The begin-time snapshot (ignores workspace changes).
    pub fn snapshot(&self) -> &PagedDoc {
        &self.snapshot
    }

    /// Materializes the private working copy (the copy-on-write view of
    /// Figure 8) on first write.
    fn work_mut(&mut self) -> &mut PagedDoc {
        if self.work.is_none() {
            self.work = Some(Box::new((*self.snapshot).clone()));
        }
        self.work.as_mut().expect("just materialized")
    }

    /// Evaluates an XPath selection against the transaction's view,
    /// read-locking the pages of the result nodes ("read-lock pages
    /// during XPath execution", Figure 8). Returns the targets pinned by
    /// node id.
    pub fn select(&mut self, path: &XPath) -> Result<Vec<NodeId>> {
        let pres = path.select_from_root(self.view())?;
        let shift = self.view().config().page_size.trailing_zeros();
        let mut pages = Vec::with_capacity(pres.len());
        let mut nodes = Vec::with_capacity(pres.len());
        for pre in pres {
            pages.push((pre >> shift) as usize);
            nodes.push(self.view().pre_to_node(pre)?);
        }
        for page in pages {
            self.shard
                .locks
                .acquire_read(self.id, page, self.shard.config.lock_timeout)
                .map_err(|page| TxnError::LockTimeout { page })?;
        }
        self.verify_layout()?;
        Ok(nodes)
    }

    /// Fails with [`TxnError::LayoutChanged`] if a vacuum relocated
    /// pages since this transaction began. Called *after* acquiring
    /// locks: vacuum refuses to run while any lock is held, so if the
    /// epoch is still ours here, no vacuum can invalidate the pages we
    /// just locked for as long as we hold them.
    fn verify_layout(&self) -> Result<()> {
        if self.shard.layout_epoch.load(Ordering::Acquire) != self.epoch {
            // An epoch change implies this transaction held no locks
            // while the vacuum ran (held locks make vacuum return
            // `Busy`), so it has no staged ops either — releasing the
            // just-acquired locks cannot break 2PL, and the doomed
            // transaction stops blocking healthy writers immediately.
            self.shard.locks.release_all(self.id);
            return Err(TxnError::LayoutChanged);
        }
        Ok(())
    }

    /// Stages and locally applies a structural insert (write-locking the
    /// target's page and, in [`AncestorLockMode::Exclusive`], every
    /// ancestor page).
    pub fn insert(&mut self, position: InsertPosition, subtree: &Node) -> Result<()> {
        let target = match position {
            InsertPosition::Before(n)
            | InsertPosition::After(n)
            | InsertPosition::LastChildOf(n)
            | InsertPosition::ChildAt(n, _) => n,
        };
        self.lock_for_write(target)?;
        // Reserve the id range from the shared counter so every replay
        // of this op allocates identically.
        let n = subtree.tuple_count();
        let first_node = self.shard.next_node.fetch_add(n, Ordering::Relaxed);
        self.work_mut()
            .insert_with_base(position, subtree, first_node)?;
        self.ops.push(Op::Insert {
            position,
            subtree: subtree.clone(),
            first_node,
        });
        Ok(())
    }

    /// Stages and locally applies a structural delete (write-locking
    /// every page the target's region spans).
    pub fn delete(&mut self, target: NodeId) -> Result<()> {
        let pre = self.view().node_to_pre(target)?;
        let end = self.view().region_end(pre);
        let shift = self.view().config().page_size.trailing_zeros();
        for page in (pre >> shift) as usize..=(end.saturating_sub(1).max(pre) >> shift) as usize {
            self.shard
                .locks
                .acquire_write(self.id, page, self.shard.config.lock_timeout)
                .map_err(|page| TxnError::LockTimeout { page })?;
        }
        self.lock_ancestors_if_exclusive(target)?;
        self.verify_layout()?;
        self.work_mut().delete(target)?;
        self.ops.push(Op::Delete { node: target });
        Ok(())
    }

    /// Stages and locally applies a value update.
    pub fn update_value(&mut self, target: NodeId, value: &str) -> Result<()> {
        self.lock_for_write(target)?;
        self.work_mut().update_value(target, value)?;
        self.ops.push(Op::UpdateValue {
            node: target,
            value: value.to_string(),
        });
        Ok(())
    }

    /// Stages and locally applies an element rename.
    pub fn rename(&mut self, target: NodeId, name: &mbxq_xml::QName) -> Result<()> {
        self.lock_for_write(target)?;
        self.work_mut().rename(target, name)?;
        self.ops.push(Op::Rename {
            node: target,
            name: name.clone(),
        });
        Ok(())
    }

    /// Stages and locally applies an attribute write.
    pub fn set_attribute(
        &mut self,
        target: NodeId,
        name: &mbxq_xml::QName,
        value: &str,
    ) -> Result<()> {
        self.lock_for_write(target)?;
        self.work_mut().set_attribute(target, name, value)?;
        self.ops.push(Op::SetAttr {
            node: target,
            name: name.clone(),
            value: value.to_string(),
        });
        Ok(())
    }

    /// Stages and locally applies an attribute removal.
    pub fn remove_attribute(&mut self, target: NodeId, name: &mbxq_xml::QName) -> Result<()> {
        self.lock_for_write(target)?;
        self.work_mut().remove_attribute(target, name)?;
        self.ops.push(Op::RemoveAttr {
            node: target,
            name: name.clone(),
        });
        Ok(())
    }

    /// Number of staged operations.
    pub fn staged_ops(&self) -> usize {
        self.ops.len()
    }

    fn lock_for_write(&mut self, target: NodeId) -> Result<()> {
        let pre = self.view().node_to_pre(target)?;
        let shift = self.view().config().page_size.trailing_zeros();
        let page = (pre >> shift) as usize;
        self.shard
            .locks
            .acquire_write(self.id, page, self.shard.config.lock_timeout)
            .map_err(|page| TxnError::LockTimeout { page })?;
        self.lock_ancestors_if_exclusive(target)?;
        self.verify_layout()
    }

    /// In `Exclusive` mode, write-locks the page of every ancestor — the
    /// root's page included, which is what makes the root "a locking
    /// bottleneck" (§2.2). In `Delta` mode this is a no-op.
    fn lock_ancestors_if_exclusive(&mut self, target: NodeId) -> Result<()> {
        if self.shard.config.ancestor_mode != AncestorLockMode::Exclusive {
            return Ok(());
        }
        let shift = self.view().config().page_size.trailing_zeros();
        let mut pre = self.view().node_to_pre(target)?;
        while let Some(parent) = self.view().parent_of(pre) {
            let page = (parent >> shift) as usize;
            self.shard
                .locks
                .acquire_write(self.id, page, self.shard.config.lock_timeout)
                .map_err(|page| TxnError::LockTimeout { page })?;
            pre = parent;
        }
        Ok(())
    }

    /// Commits: validation → global write lock → WAL append → carry the
    /// staged operations into the master document → publish the new
    /// version → release all locks (Figure 8, bottom half).
    ///
    /// Strict 2PL demands that the page locks are released on **every**
    /// exit path — success, validation failure, a failing staged op, or
    /// a WAL crash — otherwise a failed commit strands its locks forever
    /// and later writers die with [`TxnError::LockTimeout`]. The release
    /// therefore lives here, outside the fallible body.
    pub fn commit(mut self) -> Result<CommitInfo> {
        let shard = self.shard;
        let id = self.id;
        let ops = std::mem::take(&mut self.ops);
        let result = Self::commit_ops(shard, id, &ops);
        self.finished = true;
        shard.locks.release_all(id);
        result
    }

    /// The fallible commit body; lock release is handled by the caller.
    fn commit_ops(shard: &Shard, id: TxnId, ops: &[Op]) -> Result<CommitInfo> {
        if ops.is_empty() {
            return Ok(CommitInfo {
                txn: id,
                ..CommitInfo::default()
            });
        }
        match shard.config.pipeline {
            CommitPipeline::Short => Self::commit_ops_short(shard, id, ops),
            CommitPipeline::LongLock => Self::commit_ops_long(shard, id, ops),
        }
    }

    /// Applies the redo ops to a copy-on-write clone of `base`: only the
    /// column pages the ops touch are privatized, everything else stays
    /// shared with `base` (and with every reader snapshot). Node ids pin
    /// the targets, so ops staged against the begin-time snapshot apply
    /// correctly to any later master version — other transactions'
    /// commits touched disjoint pages (their page locks guarantee it),
    /// and ancestor sizes are adjusted as *deltas* on the current values,
    /// the commutative operations of §3.2.
    fn apply_to_clone(base: &PagedDoc, id: TxnId, ops: &[Op]) -> Result<(PagedDoc, CommitInfo)> {
        let mut info = CommitInfo {
            txn: id,
            ops: ops.len(),
            ..CommitInfo::default()
        };
        let mut new_doc = base.clone();
        for op in ops {
            let (ins, del, anc) = op.apply(&mut new_doc)?;
            info.inserted += ins;
            info.deleted += del;
            info.ancestors_touched += anc;
        }
        Ok((new_doc, info))
    }

    /// Validation ("run XML document validation … if this fails, the
    /// transaction is aborted").
    fn validate(shard: &Shard, doc: &PagedDoc) -> Result<()> {
        if shard.config.validate_on_commit {
            if let Err(e) = mbxq_storage::invariants::check_paged(doc) {
                return Err(TxnError::ValidationFailed {
                    message: e.to_string(),
                });
            }
        }
        Ok(())
    }

    /// The [`CommitPipeline::Short`] commit: speculate → group-log →
    /// stamp-checked publish (see the crate docs).
    fn commit_ops_short(shard: &Shard, id: TxnId, ops: &[Op]) -> Result<CommitInfo> {
        // ---- phase 1: speculation, no global lock ----
        // COW page privatization and validation run against the version
        // current *now*, keyed by its stamp. Failures on this path (a
        // redo op that cannot apply, a validation veto) abort the
        // transaction before anything reached the log.
        let base = shard.version.load();
        let (mut new_doc, mut info) = Self::apply_to_clone(&base.doc, id, ops)?;
        Self::validate(shard, &new_doc)?;

        // ---- phase 2: group-commit WAL append, no global lock ----
        // The pipeline gate (shared) keeps a checkpoint from truncating
        // the log between this append and the publish below. The append
        // itself batches with every concurrent committer: one leader,
        // one I/O, followers wait on the flush ticket. A crash or I/O
        // failure here means the transaction never happened — the record
        // is torn (recovery drops it) and nothing was published.
        let _gate = shard.pipeline_gate.read().unwrap();
        shard.group.submit(
            &shard.wal,
            WalRecord::Commit {
                txn: id,
                ops: ops.to_vec(),
            },
        )?;

        // ---- phase 3: the short critical section ----
        // Only the stamp recheck and the pointer swap happen under the
        // global lock. If another commit (or a checkpoint/vacuum)
        // published since speculation, re-apply the ops onto the fresh
        // master: our targets' pages are still ours (page locks are held
        // until after publish), so the re-apply reproduces exactly the
        // speculated per-page result, and ancestor deltas commute with
        // whatever committed in between.
        //
        // Past this point the commit record is DURABLE: recovery will
        // replay it no matter what this thread does next, so reporting
        // failure here would make the live shard silently disagree with
        // every future recovery. Re-apply (and the merged-state
        // invariant check, in validating configurations) can only fail
        // if the disjointness/commutativity guarantee itself is broken —
        // a storage-layer bug, not an abortable transaction fault — so
        // such a failure panics loudly instead of lying about the
        // durability outcome. All *abortable* failures (inapplicable
        // ops, validation vetoes) happened in phase 1, before the log.
        let _global = shard.commit_lock.lock().unwrap();
        let current = shard.version.load();
        if current.stamp != base.stamp {
            let (re_doc, re_info) =
                Self::apply_to_clone(&current.doc, id, ops).unwrap_or_else(|e| {
                    panic!(
                        "txn {id}: page-disjoint re-apply failed after its WAL record \
                         became durable (2PL disjointness violated?): {e}"
                    )
                });
            Self::validate(shard, &re_doc).unwrap_or_else(|e| {
                panic!(
                    "txn {id}: merged state failed validation after its WAL record \
                     became durable (commutativity violated?): {e}"
                )
            });
            new_doc = re_doc;
            info = re_info;
        }
        shard.publish_locked(new_doc);
        Ok(info)
    }

    /// The [`CommitPipeline::LongLock`] baseline: the pre-group-commit
    /// behavior, everything under one global lock — apply, validation,
    /// a solo WAL append, publish. Writers serialize on log I/O here;
    /// the `workload` benchmark measures exactly that difference.
    fn commit_ops_long(shard: &Shard, id: TxnId, ops: &[Op]) -> Result<CommitInfo> {
        let _gate = shard.pipeline_gate.read().unwrap();
        let _global = shard.commit_lock.lock().unwrap();
        let current = shard.version.load();
        let (new_doc, info) = Self::apply_to_clone(&current.doc, id, ops)?;
        Self::validate(shard, &new_doc)?;
        shard.wal.lock().unwrap().append(&WalRecord::Commit {
            txn: id,
            ops: ops.to_vec(),
        })?;
        shard.publish_locked(new_doc);
        Ok(info)
    }

    /// Aborts: staged operations are simply forgotten — nothing ever
    /// touched the master document.
    pub fn abort(mut self) {
        self.finished = true;
        self.shard.locks.release_all(self.id);
    }
}

impl mbxq_storage::TreeView for WriteTxn<'_> {
    fn pre_end(&self) -> u64 {
        self.view().pre_end()
    }
    fn level(&self, pre: u64) -> Option<u16> {
        self.view().level(pre)
    }
    fn size(&self, pre: u64) -> u64 {
        mbxq_storage::TreeView::size(self.view(), pre)
    }
    fn kind(&self, pre: u64) -> Option<mbxq_storage::Kind> {
        self.view().kind(pre)
    }
    fn name_id(&self, pre: u64) -> Option<mbxq_storage::QnId> {
        self.view().name_id(pre)
    }
    fn value_ref(&self, pre: u64) -> Option<mbxq_storage::ValueRef> {
        self.view().value_ref(pre)
    }
    fn node_id(&self, pre: u64) -> Option<NodeId> {
        self.view().node_id(pre)
    }
    fn back_run(&self, pre: u64) -> u64 {
        self.view().back_run(pre)
    }
    fn attributes(&self, pre: u64) -> Vec<(mbxq_storage::QnId, mbxq_storage::PropId)> {
        self.view().attributes(pre)
    }
    fn pool(&self) -> &mbxq_storage::ValuePool {
        self.view().pool()
    }
    fn used_count(&self) -> u64 {
        self.view().used_count()
    }
    fn elements_named(&self, qn: mbxq_storage::QnId) -> Option<Vec<u64>> {
        self.view().elements_named(qn)
    }
    fn elements_named_count(&self, qn: mbxq_storage::QnId) -> Option<u64> {
        self.view().elements_named_count(qn)
    }
    fn has_content_index(&self) -> bool {
        self.view().has_content_index()
    }
    fn nodes_with_attr_value(&self, attr: mbxq_storage::QnId, value: &str) -> Option<Vec<u64>> {
        self.view().nodes_with_attr_value(attr, value)
    }
    fn nodes_with_attr_value_range(
        &self,
        attr: mbxq_storage::QnId,
        range: &mbxq_storage::NumRange,
    ) -> Option<Vec<u64>> {
        self.view().nodes_with_attr_value_range(attr, range)
    }
    fn nodes_with_attr_value_count(&self, attr: mbxq_storage::QnId, value: &str) -> Option<u64> {
        self.view().nodes_with_attr_value_count(attr, value)
    }
    fn nodes_with_attr_value_range_count(
        &self,
        attr: mbxq_storage::QnId,
        range: &mbxq_storage::NumRange,
    ) -> Option<u64> {
        self.view().nodes_with_attr_value_range_count(attr, range)
    }
    fn elements_with_text(
        &self,
        qn: mbxq_storage::QnId,
        value: &str,
    ) -> Option<mbxq_storage::TextProbe> {
        self.view().elements_with_text(qn, value)
    }
    fn elements_with_text_range(
        &self,
        qn: mbxq_storage::QnId,
        range: &mbxq_storage::NumRange,
    ) -> Option<mbxq_storage::TextProbe> {
        self.view().elements_with_text_range(qn, range)
    }
    fn elements_with_text_count(&self, qn: mbxq_storage::QnId, value: &str) -> Option<u64> {
        self.view().elements_with_text_count(qn, value)
    }
    fn elements_with_text_range_count(
        &self,
        qn: mbxq_storage::QnId,
        range: &mbxq_storage::NumRange,
    ) -> Option<u64> {
        self.view().elements_with_text_range_count(qn, range)
    }
}

fn demote(e: TxnError) -> StorageError {
    match e {
        TxnError::Storage(e) => e,
        other => StorageError::Kernel(other.to_string()),
    }
}

/// Lets a whole XUpdate command script run *inside* one transaction:
/// selections and later commands see the effects of earlier ones (via
/// the private workspace), nothing is visible outside until commit.
impl mbxq_xupdate::UpdateTarget for WriteTxn<'_> {
    fn xu_insert(&mut self, position: InsertPosition, subtree: &Node) -> mbxq_storage::Result<u64> {
        let n = subtree.tuple_count();
        self.insert(position, subtree).map_err(demote)?;
        Ok(n)
    }

    fn xu_delete(&mut self, target: NodeId) -> mbxq_storage::Result<u64> {
        let pre = self.view().node_to_pre(target)?;
        let lvl = self.view().level(pre).unwrap_or(0);
        let _ = lvl;
        // Count the victims before deleting (for the summary).
        let end = self.view().region_end(pre);
        let mut count = 0u64;
        let mut p = pre;
        while let Some(q) = self.view().next_used_at_or_after(p) {
            if q >= end {
                break;
            }
            count += 1;
            p = q + 1;
        }
        self.delete(target).map_err(demote)?;
        Ok(count)
    }

    fn xu_update_value(&mut self, target: NodeId, value: &str) -> mbxq_storage::Result<()> {
        self.update_value(target, value).map_err(demote)
    }

    fn xu_rename(&mut self, target: NodeId, name: &mbxq_xml::QName) -> mbxq_storage::Result<()> {
        self.rename(target, name).map_err(demote)
    }

    fn xu_set_attribute(
        &mut self,
        target: NodeId,
        name: &mbxq_xml::QName,
        value: &str,
    ) -> mbxq_storage::Result<()> {
        self.set_attribute(target, name, value).map_err(demote)
    }

    fn xu_node_to_pre(&self, node: NodeId) -> mbxq_storage::Result<u64> {
        self.view().node_to_pre(node)
    }

    fn xu_pre_to_node(&self, pre: u64) -> mbxq_storage::Result<NodeId> {
        self.view().pre_to_node(pre)
    }
}

impl WriteTxn<'_> {
    /// Executes a parsed XUpdate script inside this transaction, with
    /// full sequential semantics (command *n+1* sees command *n*'s
    /// effects through the workspace).
    pub fn execute_xupdate(
        &mut self,
        mods: &mbxq_xupdate::Modifications,
    ) -> Result<mbxq_xupdate::ExecutionSummary> {
        mbxq_xupdate::execute(self, mods).map_err(|e| match e {
            mbxq_xupdate::XUpdateError::Storage(se) => TxnError::Storage(se),
            mbxq_xupdate::XUpdateError::Path(pe) => TxnError::Path(pe),
            other => TxnError::Storage(StorageError::Kernel(other.to_string())),
        })
    }
}

impl Drop for WriteTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.shard.locks.release_all(self.id);
        }
    }
}
