//! Page-granular two-phase lock manager.
//!
//! Lock units are **logical pages** — the same granularity at which the
//! paper isolates bulk updates ("write-lock all pages that need to be
//! updated", Figure 8). Shared (read) and exclusive (write) modes with
//! upgrade, blocking waits with timeout (which doubles as deadlock
//! resolution: a waiter that times out aborts its transaction).

use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::TxnId;

#[derive(Debug, Default)]
struct PageLock {
    readers: HashSet<TxnId>,
    writer: Option<TxnId>,
}

impl PageLock {
    fn can_read(&self, txn: TxnId) -> bool {
        match self.writer {
            Some(w) => w == txn,
            None => true,
        }
    }

    fn can_write(&self, txn: TxnId) -> bool {
        let other_writer = self.writer.is_some_and(|w| w != txn);
        let other_readers = self.readers.iter().any(|&r| r != txn);
        !other_writer && !other_readers
    }

    fn is_free(&self) -> bool {
        self.readers.is_empty() && self.writer.is_none()
    }
}

/// The lock table plus the vacuum freeze flag (one mutex so the
/// "no locks held and none can be acquired" state is atomic).
#[derive(Debug, Default)]
struct Table {
    locks: HashMap<usize, PageLock>,
    /// While set, no lock can be acquired — vacuum is relocating tuples
    /// across logical pages, so page numbers are in flux. Waiters block
    /// (bounded by their timeout) until the freeze lifts.
    frozen: bool,
}

/// The lock table. One condvar serves all pages — contention on the
/// condvar itself is irrelevant next to the waits it mediates.
#[derive(Debug, Default)]
pub struct LockManager {
    table: Mutex<Table>,
    released: Condvar,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires a shared lock on `page` for `txn`, waiting up to
    /// `timeout`. Err carries the page for diagnostics.
    pub fn acquire_read(
        &self,
        txn: TxnId,
        page: usize,
        timeout: Duration,
    ) -> std::result::Result<(), usize> {
        let deadline = Instant::now() + timeout;
        let mut table = self.table.lock().unwrap();
        loop {
            if !table.frozen {
                let lock = table.locks.entry(page).or_default();
                if lock.can_read(txn) {
                    lock.readers.insert(txn);
                    return Ok(());
                }
            }
            let now = Instant::now();
            if now >= deadline {
                Self::drop_if_free(&mut table, page);
                return Err(page);
            }
            table = self.released.wait_timeout(table, deadline - now).unwrap().0;
        }
    }

    /// Acquires an exclusive lock on `page` for `txn` (upgrading a read
    /// lock it already holds), waiting up to `timeout`.
    pub fn acquire_write(
        &self,
        txn: TxnId,
        page: usize,
        timeout: Duration,
    ) -> std::result::Result<(), usize> {
        let deadline = Instant::now() + timeout;
        let mut table = self.table.lock().unwrap();
        loop {
            if !table.frozen {
                let lock = table.locks.entry(page).or_default();
                if lock.can_write(txn) {
                    lock.readers.remove(&txn); // upgrade
                    lock.writer = Some(txn);
                    return Ok(());
                }
            }
            let now = Instant::now();
            if now >= deadline {
                Self::drop_if_free(&mut table, page);
                return Err(page);
            }
            table = self.released.wait_timeout(table, deadline - now).unwrap().0;
        }
    }

    /// Removes the probed lock-table entry if no transaction actually
    /// holds it, so a timed-out waiter can never strand a free
    /// `PageLock` behind and grow [`LockManager::locked_pages`]
    /// monotonically. In the loop's *current* shape this is
    /// defense-in-depth: a freshly materialized free entry always
    /// grants, so the entry present at the timeout check is held by
    /// someone (and `release_all` drops entries it frees). The sweep —
    /// pinned by `timeout_does_not_grow_the_table` and
    /// `contention_leaves_no_stale_entries` — keeps that a local
    /// argument instead of a global invariant a future reordering of
    /// the grant/wait/timeout steps could silently break.
    fn drop_if_free(table: &mut Table, page: usize) {
        if table.locks.get(&page).is_some_and(PageLock::is_free) {
            table.locks.remove(&page);
        }
    }

    /// Releases every lock `txn` holds (strict 2PL: all at end of
    /// transaction).
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.table.lock().unwrap();
        table.locks.retain(|_, lock| {
            lock.readers.remove(&txn);
            if lock.writer == Some(txn) {
                lock.writer = None;
            }
            !lock.is_free()
        });
        self.released.notify_all();
    }

    /// Atomically verifies that no lock is held and freezes the table:
    /// until [`LockManager::unfreeze`], every acquisition blocks
    /// (bounded by its own timeout). Vacuum wraps its whole
    /// rebuild-publish-epoch-bump sequence in this freeze so no
    /// transaction can lock page numbers while their meaning is
    /// changing. Errs with the held-page count if locks are in flight.
    pub fn freeze(&self) -> std::result::Result<(), usize> {
        let mut table = self.table.lock().unwrap();
        if !table.locks.is_empty() {
            return Err(table.locks.len());
        }
        table.frozen = true;
        Ok(())
    }

    /// Lifts a [`LockManager::freeze`] and wakes all waiters.
    pub fn unfreeze(&self) {
        self.table.lock().unwrap().frozen = false;
        self.released.notify_all();
    }

    /// Whether `page` is currently write-locked (test/diagnostic hook).
    pub fn is_write_locked(&self, page: usize) -> bool {
        self.table
            .lock()
            .unwrap()
            .locks
            .get(&page)
            .is_some_and(|l| l.writer.is_some())
    }

    /// Number of pages with any lock held.
    pub fn locked_pages(&self) -> usize {
        self.table.lock().unwrap().locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(50);

    #[test]
    fn readers_share() {
        let lm = LockManager::new();
        lm.acquire_read(1, 0, T).unwrap();
        lm.acquire_read(2, 0, T).unwrap();
        assert!(!lm.is_write_locked(0));
    }

    #[test]
    fn writer_excludes_others() {
        let lm = LockManager::new();
        lm.acquire_write(1, 0, T).unwrap();
        assert!(lm.acquire_read(2, 0, T).is_err());
        assert!(lm.acquire_write(2, 0, T).is_err());
        // Same txn re-enters freely.
        lm.acquire_write(1, 0, T).unwrap();
        lm.acquire_read(1, 0, T).unwrap();
    }

    #[test]
    fn upgrade_when_sole_reader() {
        let lm = LockManager::new();
        lm.acquire_read(1, 0, T).unwrap();
        lm.acquire_write(1, 0, T).unwrap();
        assert!(lm.is_write_locked(0));
        // Another reader blocks now.
        assert!(lm.acquire_read(2, 0, T).is_err());
    }

    #[test]
    fn upgrade_blocked_by_other_readers() {
        let lm = LockManager::new();
        lm.acquire_read(1, 0, T).unwrap();
        lm.acquire_read(2, 0, T).unwrap();
        assert!(lm.acquire_write(1, 0, T).is_err());
    }

    #[test]
    fn release_wakes_waiters() {
        let lm = std::sync::Arc::new(LockManager::new());
        lm.acquire_write(1, 7, T).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || lm2.acquire_write(2, 7, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(1);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.acquire_write(1, 0, T).unwrap();
        lm.acquire_read(1, 1, T).unwrap();
        assert_eq!(lm.locked_pages(), 2);
        lm.release_all(1);
        assert_eq!(lm.locked_pages(), 0);
    }

    #[test]
    fn disjoint_pages_do_not_conflict() {
        let lm = LockManager::new();
        lm.acquire_write(1, 0, T).unwrap();
        lm.acquire_write(2, 1, T).unwrap();
        assert!(lm.is_write_locked(0) && lm.is_write_locked(1));
    }

    #[test]
    fn freeze_blocks_acquisition_until_unfrozen() {
        let lm = std::sync::Arc::new(LockManager::new());
        lm.freeze().unwrap();
        // Acquisition during a freeze waits and then times out.
        assert!(lm.acquire_write(1, 0, T).is_err());
        assert_eq!(lm.locked_pages(), 0);
        // A waiter started during the freeze is woken by unfreeze.
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || lm2.acquire_write(2, 0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        lm.unfreeze();
        assert!(h.join().unwrap().is_ok());
        // Freeze refuses while locks are held.
        assert_eq!(lm.freeze(), Err(1));
        lm.release_all(2);
        lm.freeze().unwrap();
        lm.unfreeze();
    }

    #[test]
    fn timeout_does_not_grow_the_table() {
        let lm = LockManager::new();
        lm.acquire_write(1, 0, T).unwrap();
        assert_eq!(lm.locked_pages(), 1);
        for attempt in 0..5 {
            assert!(lm.acquire_read(2, 0, T).is_err());
            assert!(lm.acquire_write(3, 0, T).is_err());
            assert_eq!(lm.locked_pages(), 1, "attempt {attempt}");
        }
        lm.release_all(1);
        assert_eq!(lm.locked_pages(), 0);
    }

    /// Regression: hammer the table with racing acquires, releases and
    /// timeouts; once every transaction has released, the table must be
    /// empty — no free `PageLock` stranded by a timed-out waiter.
    #[test]
    fn contention_leaves_no_stale_entries() {
        let lm = std::sync::Arc::new(LockManager::new());
        std::thread::scope(|scope| {
            for txn in 1..=8u64 {
                let lm = lm.clone();
                scope.spawn(move || {
                    for round in 0..40usize {
                        let page = (txn as usize + round) % 3;
                        let short = Duration::from_micros(50 * (round as u64 % 7));
                        if txn % 2 == 0 {
                            let _ = lm.acquire_write(txn, page, short);
                        } else {
                            let _ = lm.acquire_read(txn, page, short);
                        }
                        if round % 3 == 0 {
                            lm.release_all(txn);
                        }
                    }
                    lm.release_all(txn);
                });
            }
        });
        assert_eq!(
            lm.locked_pages(),
            0,
            "lock table must be empty after all transactions released"
        );
    }
}
