//! Page-granular two-phase lock manager.
//!
//! Lock units are **logical pages** — the same granularity at which the
//! paper isolates bulk updates ("write-lock all pages that need to be
//! updated", Figure 8). Shared (read) and exclusive (write) modes with
//! upgrade, blocking waits with timeout (which doubles as deadlock
//! resolution: a waiter that times out aborts its transaction).

use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::TxnId;

#[derive(Debug, Default)]
struct PageLock {
    readers: HashSet<TxnId>,
    writer: Option<TxnId>,
}

impl PageLock {
    fn can_read(&self, txn: TxnId) -> bool {
        match self.writer {
            Some(w) => w == txn,
            None => true,
        }
    }

    fn can_write(&self, txn: TxnId) -> bool {
        let other_writer = self.writer.is_some_and(|w| w != txn);
        let other_readers = self.readers.iter().any(|&r| r != txn);
        !other_writer && !other_readers
    }

    fn is_free(&self) -> bool {
        self.readers.is_empty() && self.writer.is_none()
    }
}

/// The lock table. One condvar serves all pages — contention on the
/// condvar itself is irrelevant next to the waits it mediates.
#[derive(Debug, Default)]
pub struct LockManager {
    table: Mutex<HashMap<usize, PageLock>>,
    released: Condvar,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires a shared lock on `page` for `txn`, waiting up to
    /// `timeout`. Err carries the page for diagnostics.
    pub fn acquire_read(
        &self,
        txn: TxnId,
        page: usize,
        timeout: Duration,
    ) -> std::result::Result<(), usize> {
        let deadline = Instant::now() + timeout;
        let mut table = self.table.lock().unwrap();
        loop {
            let lock = table.entry(page).or_default();
            if lock.can_read(txn) {
                lock.readers.insert(txn);
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(page);
            }
            table = self.released.wait_timeout(table, deadline - now).unwrap().0;
        }
    }

    /// Acquires an exclusive lock on `page` for `txn` (upgrading a read
    /// lock it already holds), waiting up to `timeout`.
    pub fn acquire_write(
        &self,
        txn: TxnId,
        page: usize,
        timeout: Duration,
    ) -> std::result::Result<(), usize> {
        let deadline = Instant::now() + timeout;
        let mut table = self.table.lock().unwrap();
        loop {
            let lock = table.entry(page).or_default();
            if lock.can_write(txn) {
                lock.readers.remove(&txn); // upgrade
                lock.writer = Some(txn);
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(page);
            }
            table = self.released.wait_timeout(table, deadline - now).unwrap().0;
        }
    }

    /// Releases every lock `txn` holds (strict 2PL: all at end of
    /// transaction).
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.table.lock().unwrap();
        table.retain(|_, lock| {
            lock.readers.remove(&txn);
            if lock.writer == Some(txn) {
                lock.writer = None;
            }
            !lock.is_free()
        });
        self.released.notify_all();
    }

    /// Whether `page` is currently write-locked (test/diagnostic hook).
    pub fn is_write_locked(&self, page: usize) -> bool {
        self.table
            .lock()
            .unwrap()
            .get(&page)
            .is_some_and(|l| l.writer.is_some())
    }

    /// Number of pages with any lock held.
    pub fn locked_pages(&self) -> usize {
        self.table.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(50);

    #[test]
    fn readers_share() {
        let lm = LockManager::new();
        lm.acquire_read(1, 0, T).unwrap();
        lm.acquire_read(2, 0, T).unwrap();
        assert!(!lm.is_write_locked(0));
    }

    #[test]
    fn writer_excludes_others() {
        let lm = LockManager::new();
        lm.acquire_write(1, 0, T).unwrap();
        assert!(lm.acquire_read(2, 0, T).is_err());
        assert!(lm.acquire_write(2, 0, T).is_err());
        // Same txn re-enters freely.
        lm.acquire_write(1, 0, T).unwrap();
        lm.acquire_read(1, 0, T).unwrap();
    }

    #[test]
    fn upgrade_when_sole_reader() {
        let lm = LockManager::new();
        lm.acquire_read(1, 0, T).unwrap();
        lm.acquire_write(1, 0, T).unwrap();
        assert!(lm.is_write_locked(0));
        // Another reader blocks now.
        assert!(lm.acquire_read(2, 0, T).is_err());
    }

    #[test]
    fn upgrade_blocked_by_other_readers() {
        let lm = LockManager::new();
        lm.acquire_read(1, 0, T).unwrap();
        lm.acquire_read(2, 0, T).unwrap();
        assert!(lm.acquire_write(1, 0, T).is_err());
    }

    #[test]
    fn release_wakes_waiters() {
        let lm = std::sync::Arc::new(LockManager::new());
        lm.acquire_write(1, 7, T).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || lm2.acquire_write(2, 7, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(1);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn release_all_clears_table() {
        let lm = LockManager::new();
        lm.acquire_write(1, 0, T).unwrap();
        lm.acquire_read(1, 1, T).unwrap();
        assert_eq!(lm.locked_pages(), 2);
        lm.release_all(1);
        assert_eq!(lm.locked_pages(), 0);
    }

    #[test]
    fn disjoint_pages_do_not_conflict() {
        let lm = LockManager::new();
        lm.acquire_write(1, 0, T).unwrap();
        lm.acquire_write(2, 1, T).unwrap();
        assert!(lm.is_write_locked(0) && lm.is_write_locked(1));
    }
}
