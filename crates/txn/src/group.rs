//! Group commit — batched WAL flushing for concurrent committers.
//!
//! "Writing the WAL is the crucial stage in transaction commit, it
//! consists of a single I/O" (§3.2). With one global commit lock held
//! across that I/O, N concurrent committers pay N serialized log writes.
//! Group commit restores the single-I/O property *per batch*: the first
//! committer to arrive becomes the **leader**, drains every record that
//! queued up while the previous flush ran, and writes the whole batch
//! with one [`crate::wal::Wal::append_batch`] call; the other committers
//! (**followers**) park on a flush ticket and are woken with their
//! individual result. Under load the batch grows to whatever arrived
//! during one flush, so log I/Os per commit tend to *1/batch-size* —
//! writers stop serializing on the log.
//!
//! The protocol is deliberately tiny: one mutex-guarded queue plus a
//! condvar. The mutex is only ever held for queue manipulation, never
//! across the flush itself (the leader releases it before touching the
//! WAL), so enqueueing stays cheap even while a flush is in flight.

use crate::wal::{Wal, WalError, WalRecord};
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Cumulative group-commit counters (diagnostics; the workload benchmark
/// and the concurrency tests read them to prove batching happened).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Flush batches written (each is one log I/O).
    pub batches: u64,
    /// Commit records that travelled in those batches.
    pub records: u64,
    /// Largest batch observed.
    pub max_batch: u64,
}

/// Ticket-granting state shared by all committers.
#[derive(Default)]
struct State {
    /// Records waiting for the next leader, with their tickets.
    pending: Vec<(u64, WalRecord)>,
    /// Results of flushed tickets not yet picked up by their follower.
    results: HashMap<u64, Result<(), WalError>>,
    /// Next ticket number.
    next_ticket: u64,
    /// A leader is currently flushing a batch.
    leader_running: bool,
    stats: GroupCommitStats,
}

/// The group-commit coordinator. One per [`crate::Store`].
#[derive(Default)]
pub struct GroupCommit {
    state: Mutex<State>,
    /// Signaled when a batch finishes (results available, leadership
    /// open again).
    flushed: Condvar,
}

impl GroupCommit {
    /// Creates an idle coordinator.
    pub fn new() -> GroupCommit {
        GroupCommit::default()
    }

    /// Durably appends `record` to `wal`, batching with any records
    /// enqueued by concurrent callers. Returns once the record's flush
    /// completed (or failed — including a crash that tore it).
    ///
    /// The calling thread either leads a flush (draining the whole
    /// queue through one `append_batch`) or waits as a follower for the
    /// leader that covers its ticket.
    pub fn submit(&self, wal: &Mutex<Wal>, record: WalRecord) -> Result<(), WalError> {
        let ticket = {
            let mut st = self.state.lock().unwrap();
            let t = st.next_ticket;
            st.next_ticket += 1;
            st.pending.push((t, record));
            t
        };
        loop {
            let mut st = self.state.lock().unwrap();
            // A previous leader may already have flushed our record.
            if let Some(result) = st.results.remove(&ticket) {
                return result;
            }
            if !st.leader_running {
                // Become the leader: take the whole queue (ours
                // included — it can't have been flushed, or `results`
                // would have held it) and flush it in one I/O.
                st.leader_running = true;
                // The queue is owned now — split it so the records go
                // to the flush without re-cloning their op payloads.
                let (tickets, records): (Vec<u64>, Vec<WalRecord>) =
                    std::mem::take(&mut st.pending).into_iter().unzip();
                drop(st);

                let outcomes = wal.lock().unwrap().append_batch(&records);

                let mut st = self.state.lock().unwrap();
                st.stats.batches += 1;
                st.stats.records += records.len() as u64;
                st.stats.max_batch = st.stats.max_batch.max(records.len() as u64);
                let mut mine = None;
                for (t, outcome) in tickets.into_iter().zip(outcomes) {
                    if t == ticket {
                        mine = Some(outcome);
                    } else {
                        st.results.insert(t, outcome);
                    }
                }
                st.leader_running = false;
                self.flushed.notify_all();
                return mine.expect("leader's own ticket is always in the batch it drained");
            }
            // Follower: a leader is flushing (perhaps even our record).
            // Wait for it to finish, then re-check.
            let _unused = self.flushed.wait(st).unwrap();
        }
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> GroupCommitStats {
        self.state.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use mbxq_storage::NodeId;
    use std::sync::Arc;

    fn record(txn: u64) -> WalRecord {
        WalRecord::Commit {
            txn,
            ops: vec![Op::Delete { node: NodeId(txn) }],
        }
    }

    #[test]
    fn single_submit_flushes_immediately() {
        let group = GroupCommit::new();
        let wal = Mutex::new(Wal::in_memory());
        group.submit(&wal, record(1)).unwrap();
        assert_eq!(wal.lock().unwrap().read_all().unwrap(), vec![record(1)]);
        let stats = group.stats();
        assert_eq!((stats.batches, stats.records), (1, 1));
    }

    #[test]
    fn concurrent_submits_all_land_durably() {
        let group = Arc::new(GroupCommit::new());
        let wal = Arc::new(Mutex::new(Wal::in_memory()));
        std::thread::scope(|s| {
            for txn in 0..32u64 {
                let group = group.clone();
                let wal = wal.clone();
                s.spawn(move || group.submit(&wal, record(txn)).unwrap());
            }
        });
        let mut txns: Vec<u64> = wal
            .lock()
            .unwrap()
            .read_all()
            .unwrap()
            .into_iter()
            .map(|r| match r {
                WalRecord::Commit { txn, .. } => txn,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        txns.sort_unstable();
        assert_eq!(txns, (0..32).collect::<Vec<_>>());
        let stats = group.stats();
        assert_eq!(stats.records, 32);
        assert!(stats.batches <= 32);
    }

    #[test]
    fn crash_fails_exactly_the_records_past_the_cut() {
        let group = GroupCommit::new();
        let mut w = Wal::in_memory();
        // Budget: the first record fits, nothing after it does.
        w.append(&record(0)).unwrap();
        let one_len = w.len_bytes();
        let mut w = Wal::in_memory();
        w.crash_after_bytes(one_len);
        let wal = Mutex::new(w);
        group.submit(&wal, record(0)).unwrap();
        let err = group.submit(&wal, record(1)).unwrap_err();
        assert!(matches!(err, WalError::Crashed { .. }));
        // Recovery sees exactly the successful record.
        assert_eq!(wal.lock().unwrap().read_all().unwrap(), vec![record(0)]);
    }
}
