//! The multi-document [`Catalog`]: document names → [`Shard`]s.
//!
//! MonetDB/XQuery stores each document as its own set of pre-ordered
//! relational tables; the catalog is the layer that gives every
//! document its own table set here — one [`Shard`] per document, each
//! with its own WAL, group-commit pipeline, page-lock table and plan
//! cache, so commits, checkpoints and vacuums on one document never
//! stall another. On top sit two routing modes:
//!
//! * **hash routing** — [`Catalog::query`]`("name", xpath)` looks the
//!   name up in a hash map and evaluates on exactly one shard (the
//!   many-small-documents shape);
//! * **partitioning** — [`Catalog::create_partitioned`] splits one
//!   large document's root children into N contiguous ranges, stored as
//!   documents `base#0 … base#N-1` (the explicit range/subtree
//!   partition shape). Part order = creation order = child order, so
//!   the cross-document merge below reproduces original document order.
//!
//! The cross-document form [`Catalog::query_all`] fans the shard-local
//! evaluations out over the **one** worker pool all shards share and
//! merges per-document node sets in (document, document-order) —
//! deterministic by construction, since each shard's evaluation is
//! itself bit-identical to its sequential run (PR 6's morsel-merge
//! guarantee) and documents are concatenated in creation order.
//!
//! # On-disk layout and crash safety
//!
//! ```text
//! catalog-dir/
//!   manifest           "mbxq-catalog v1\n" + one "<id> <len>:<name>\n" per doc
//!   manifest.tmp       (transient; a crashed manifest rewrite)
//!   shard-<id>.wal     one WAL per document, first record = a named checkpoint
//! ```
//!
//! The manifest is the **commit point** of every create/drop/export:
//! it is rewritten via write-temp → fsync → rename → dir-fsync (the
//! same protocol as WAL truncation), so a crash leaves either the old
//! or the new document set, never a torn one. Creates write the shard
//! WAL (with its genesis checkpoint) *before* the manifest names it;
//! drops rewrite the manifest *before* deleting the WAL. Recovery
//! therefore only ever sees (a) a manifest whose every entry has a
//! replayable WAL, plus (b) possibly orphaned `shard-*.wal` files from
//! a crashed create/drop — which [`Catalog::open`] deletes. Each
//! shard's checkpoint dump carries its document name (see
//! [`mbxq_storage::checkpoint::checkpoint_dump_identity`]), so a WAL
//! file shuffled between shard slots fails recovery instead of loading
//! the wrong document.

use crate::pool::{PoolStats, QueryPool};
use crate::recover::recover_shard;
use crate::shard::Shard;
use crate::wal::{Wal, WalRecord};
use crate::{CheckpointInfo, Result, StoreConfig, TxnError};
use mbxq_storage::{NodeId, PageConfig, PagedDoc, TreeView};
use mbxq_xml::{serialize_node, Node};
use mbxq_xpath::EvalStats;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Configuration shared by every document of a catalog.
#[derive(Debug, Clone, Copy, Default)]
pub struct CatalogConfig {
    /// Per-shard transactional configuration. `query_threads` sizes the
    /// **one** worker pool all shards share.
    pub store: StoreConfig,
    /// Page layout for shredding and checkpoint loading.
    pub page: PageConfig,
}

/// One document's matches from a cross-document query, in document
/// order within the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocMatches {
    /// The document name.
    pub doc: String,
    /// Matching nodes in document order.
    pub nodes: Vec<NodeId>,
}

struct DocEntry {
    id: u64,
    name: String,
    shard: Arc<Shard>,
}

struct Inner {
    /// Creation order — the document order of [`Catalog::query_all`].
    docs: Vec<DocEntry>,
    /// Hash routing: name → index into `docs`.
    index: HashMap<String, usize>,
    next_id: u64,
}

impl Inner {
    fn reindex(&mut self) {
        self.index = self
            .docs
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.clone(), i))
            .collect();
    }
}

/// A named collection of independently-committed documents.
///
/// See the module docs for the architecture; in short: every document
/// is one [`Shard`] (own WAL, own commit pipeline, own lock table, own
/// maintenance), all shards share one lazily-spawned [`QueryPool`], and
/// the catalog routes single-document queries by name and fans
/// cross-document queries out over the pool.
pub struct Catalog {
    /// `None` = in-memory (tests, benchmarks); `Some` = durable under a
    /// manifest directory.
    dir: Option<PathBuf>,
    config: CatalogConfig,
    pool: Arc<QueryPool>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("dir", &self.dir)
            .field("docs", &self.doc_names())
            .finish_non_exhaustive()
    }
}

fn io_err(context: &str, e: impl std::fmt::Display) -> TxnError {
    TxnError::CatalogIo {
        message: format!("{context}: {e}"),
    }
}

impl Catalog {
    /// An in-memory catalog: every shard gets an in-memory WAL, nothing
    /// touches the filesystem. Crash recovery is meaningless here, but
    /// the full routing/fan-out/maintenance surface behaves identically
    /// to the durable form.
    pub fn in_memory(config: CatalogConfig) -> Catalog {
        Catalog {
            dir: None,
            config,
            pool: Arc::new(QueryPool::with_overhead(
                config.store.query_threads,
                config.store.morsel_overhead_ns,
            )),
            inner: Mutex::new(Inner {
                docs: Vec::new(),
                index: HashMap::new(),
                next_id: 0,
            }),
        }
    }

    /// Opens (or creates) a durable catalog under `dir`, recovering
    /// every manifest-listed document from its WAL: each shard WAL
    /// starts with a checkpoint record, so recovery needs no genesis
    /// XML. A leftover `manifest.tmp` (crashed rewrite) is discarded —
    /// the committed manifest is authoritative — and `shard-*.wal`
    /// files the manifest does not name (crashed creates, half-finished
    /// drops, exported documents) are deleted.
    pub fn open(dir: &Path, config: CatalogConfig) -> Result<Catalog> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create catalog dir", e))?;
        let tmp = dir.join("manifest.tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp).map_err(|e| io_err("discard manifest.tmp", e))?;
        }
        let manifest = dir.join("manifest");
        let entries = if manifest.exists() {
            let text =
                std::fs::read_to_string(&manifest).map_err(|e| io_err("read manifest", e))?;
            decode_manifest(&text)?
        } else {
            Vec::new()
        };
        let pool = Arc::new(QueryPool::with_overhead(
            config.store.query_threads,
            config.store.morsel_overhead_ns,
        ));
        let mut docs = Vec::with_capacity(entries.len());
        let mut next_id = 0u64;
        for (id, name) in entries {
            let wal_path = shard_wal_path(dir, id);
            let wal = Wal::file(&wal_path)?;
            let raw = wal.raw()?;
            let doc = recover_shard(config.page, &raw, Some(&name))?;
            docs.push(DocEntry {
                id,
                name: name.clone(),
                shard: Arc::new(Shard::open_named(
                    Some(name),
                    doc,
                    wal,
                    config.store,
                    pool.clone(),
                )),
            });
            next_id = next_id.max(id + 1);
        }
        // Orphaned WALs: files from a create that crashed before its
        // manifest commit, or a drop/export that removed the manifest
        // entry first. Either way the manifest says they are not part
        // of the catalog.
        let live: std::collections::HashSet<PathBuf> =
            docs.iter().map(|e| shard_wal_path(dir, e.id)).collect();
        if let Ok(listing) = std::fs::read_dir(dir) {
            for f in listing.flatten() {
                let p = f.path();
                let name = f.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("shard-") && name.ends_with(".wal") && !live.contains(&p) {
                    let _ = std::fs::remove_file(&p);
                }
            }
        }
        let mut inner = Inner {
            docs,
            index: HashMap::new(),
            next_id,
        };
        inner.reindex();
        Ok(Catalog {
            dir: Some(dir.to_path_buf()),
            config,
            pool,
            inner: Mutex::new(inner),
        })
    }

    /// The catalog configuration.
    pub fn config(&self) -> CatalogConfig {
        self.config
    }

    /// The catalog directory (`None` for in-memory catalogs).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Counters of the one worker pool all shards share.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Plan-cache counters summed over every document's shard — the
    /// catalog-wide view a server reports (see
    /// [`Shard::plan_cache_stats`] for the per-document form).
    pub fn plan_cache_stats(&self) -> crate::PlanCacheStats {
        let inner = self.inner.lock().unwrap();
        let mut total = crate::PlanCacheStats::default();
        for e in &inner.docs {
            let s = e.shard.plan_cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
        }
        total
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.inner.lock().unwrap().docs.len()
    }

    /// Document names in creation order (= [`Catalog::query_all`]'s
    /// document order).
    pub fn doc_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap()
            .docs
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Whether a document by that name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.lock().unwrap().index.contains_key(name)
    }

    /// The shard backing `name` (hash-routed). The returned handle
    /// stays valid — transactions, queries, maintenance — even if the
    /// document is dropped concurrently; it just stops being reachable
    /// through the catalog.
    pub fn shard(&self, name: &str) -> Option<Arc<Shard>> {
        let inner = self.inner.lock().unwrap();
        inner.index.get(name).map(|&i| inner.docs[i].shard.clone())
    }

    fn shard_or_err(&self, name: &str) -> Result<Arc<Shard>> {
        self.shard(name).ok_or_else(|| TxnError::UnknownDocument {
            name: name.to_string(),
        })
    }

    /// Creates a document from XML text under `name`. Durable catalogs
    /// write the shard WAL — whose first record is a checkpoint of the
    /// shredded document, stamped with the document name — *before*
    /// committing the manifest rewrite, so a crash between the two
    /// leaves only an orphan WAL that the next [`Catalog::open`]
    /// removes.
    ///
    /// Plain document names must be non-empty and may contain neither
    /// `#` (reserved for the `base#k` partition-part namespace of
    /// [`Catalog::create_partitioned`] — a hand-created `base#7` would
    /// silently join [`Catalog::partition_parts`]`("base")` and collide
    /// with a later partitioning of `base`) nor ASCII control
    /// characters. Parts are created through
    /// [`Catalog::create_partitioned`] / [`Catalog::create_part`],
    /// which validate the *base* name under the same rules.
    pub fn create_doc(&self, name: &str, xml: &str) -> Result<Arc<Shard>> {
        validate_plain_name(name)?;
        self.create_doc_unchecked(name, xml)
    }

    /// [`Catalog::create_doc`] minus the plain-name validation — the
    /// internal entry point partition-part creation uses for its
    /// `base#k` names (whose *base* has already been validated).
    fn create_doc_unchecked(&self, name: &str, xml: &str) -> Result<Arc<Shard>> {
        let doc = PagedDoc::parse_str(xml, self.config.page)?;
        let mut inner = self.inner.lock().unwrap();
        if inner.index.contains_key(name) {
            return Err(TxnError::DuplicateDocument {
                name: name.to_string(),
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let mut wal = match &self.dir {
            Some(dir) => {
                let path = shard_wal_path(dir, id);
                let _ = std::fs::remove_file(&path);
                Wal::file(&path)?
            }
            None => Wal::in_memory(),
        };
        // Genesis checkpoint: every shard WAL is self-contained, so
        // recovery never needs the original XML text.
        wal.reset_with(&WalRecord::Checkpoint {
            alloc_end: doc.node_alloc_end(),
            tuples: doc.used_count(),
            dump: doc.checkpoint_dump_named(Some(name)),
        })?;
        let shard = Arc::new(Shard::open_named(
            Some(name.to_string()),
            doc,
            wal,
            self.config.store,
            self.pool.clone(),
        ));
        inner.docs.push(DocEntry {
            id,
            name: name.to_string(),
            shard: shard.clone(),
        });
        let idx = inner.docs.len() - 1;
        inner.index.insert(name.to_string(), idx);
        if let Some(dir) = &self.dir {
            if let Err(e) = write_manifest(dir, &inner.docs) {
                // The manifest rewrite failed: undo the in-memory
                // registration so memory matches the durable state (the
                // WAL file is an orphan the next open will clean up).
                inner.docs.pop();
                inner.index.remove(name);
                return Err(e);
            }
        }
        Ok(shard)
    }

    /// Splits one large document across N shards by **contiguous root
    /// child ranges**: parts are created as documents `base#0 …
    /// base#N-1`, each a copy of the root element holding its slice of
    /// children, in order. `parts` is clamped to the child count (and
    /// to ≥ 1). Returns the part names in order; since part order =
    /// creation order, [`Catalog::query_all`] merges their results in
    /// original document order for any within-subtree query.
    pub fn create_partitioned(&self, base: &str, xml: &str, parts: usize) -> Result<Vec<String>> {
        validate_plain_name(base)?;
        let parsed = mbxq_xml::Document::parse(xml).map_err(|e| io_err("partition parse", e))?;
        let children = parsed.root.children();
        let parts = parts.clamp(1, children.len().max(1));
        let names: Vec<String> = (0..parts).map(|k| format!("{base}#{k}")).collect();
        for name in &names {
            if self.contains(name) {
                return Err(TxnError::DuplicateDocument { name: name.clone() });
            }
        }
        let mut created = Vec::with_capacity(parts);
        let mut start = 0usize;
        for (k, name) in names.iter().enumerate() {
            let len = (children.len() - start) / (parts - k);
            let part = match &parsed.root {
                Node::Element {
                    name: root_name,
                    attributes,
                    ..
                } => Node::Element {
                    name: root_name.clone(),
                    attributes: attributes.clone(),
                    children: children[start..start + len].to_vec(),
                },
                other => other.clone(),
            };
            let mut part_xml = String::new();
            serialize_node(&part, &mut part_xml);
            match self.create_doc_unchecked(name, &part_xml) {
                Ok(_) => created.push(name.clone()),
                Err(e) => {
                    // Roll the half-created partition back so a failed
                    // create leaves no stray parts behind.
                    for done in &created {
                        let _ = self.drop_doc(done);
                    }
                    return Err(e);
                }
            }
            start += len;
        }
        Ok(names)
    }

    /// (Re)creates one partition part `base#k` from XML text — how a
    /// dropped middle part of a [`Catalog::create_partitioned`] group
    /// is restored. Validates `base` under the plain-name rules (the
    /// composed `base#k` name itself is exempt from the `#` ban, being
    /// exactly the namespace `#` is reserved for).
    pub fn create_part(&self, base: &str, k: usize, xml: &str) -> Result<Arc<Shard>> {
        validate_plain_name(base)?;
        self.create_doc_unchecked(&format!("{base}#{k}"), xml)
    }

    /// The part documents of [`Catalog::create_partitioned`]`(base, …)`
    /// in **part order** — sorted by the numeric `#k` suffix, *not* by
    /// creation order, so a drop + [`Catalog::create_part`] recreate of
    /// a middle part leaves the enumeration (and therefore the
    /// cross-document merge order of a partition-group query) correct.
    /// Empty if `base` was never partitioned.
    pub fn partition_parts(&self, base: &str) -> Vec<String> {
        let prefix = format!("{base}#");
        let mut parts: Vec<(usize, String)> = self
            .doc_names()
            .into_iter()
            .filter_map(|n| {
                let k: usize = n.strip_prefix(&prefix)?.parse().ok()?;
                Some((k, n))
            })
            .collect();
        parts.sort_by_key(|&(k, _)| k);
        parts.into_iter().map(|(_, n)| n).collect()
    }

    /// Drops a document. The manifest rewrite (without the entry) is
    /// the commit point; the WAL file is deleted afterwards —
    /// best-effort, since once un-manifested it is an orphan the next
    /// open removes anyway. Outstanding [`Catalog::shard`] handles stay
    /// usable (MVCC-style) until their owners drop them.
    pub fn drop_doc(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let Some(&idx) = inner.index.get(name) else {
            return Err(TxnError::UnknownDocument {
                name: name.to_string(),
            });
        };
        let entry = inner.docs.remove(idx);
        inner.reindex();
        if let Some(dir) = &self.dir {
            if let Err(e) = write_manifest(dir, &inner.docs) {
                inner.docs.insert(idx, entry);
                inner.reindex();
                return Err(e);
            }
            let _ = std::fs::remove_file(shard_wal_path(dir, entry.id));
        }
        Ok(())
    }

    /// Removes a document from the catalog and hands its parts —
    /// document plus WAL — to the caller (the catalog-level replacement
    /// for the deprecated `Store::into_parts`). Fails with
    /// [`TxnError::DocumentInUse`] while other [`Catalog::shard`]
    /// handles to it are alive. On durable catalogs the manifest
    /// rewrite commits the removal; the WAL *file* is left in place for
    /// the returned [`Wal`] handle and becomes an orphan the next
    /// [`Catalog::open`] cleans up.
    pub fn export(&self, name: &str) -> Result<(PagedDoc, Wal)> {
        let mut inner = self.inner.lock().unwrap();
        let Some(&idx) = inner.index.get(name) else {
            return Err(TxnError::UnknownDocument {
                name: name.to_string(),
            });
        };
        let entry = inner.docs.remove(idx);
        inner.reindex();
        let reinsert = |inner: &mut Inner, entry: DocEntry| {
            inner.docs.insert(idx, entry);
            inner.reindex();
        };
        let shard = match Arc::try_unwrap(entry.shard) {
            Ok(shard) => shard,
            Err(arc) => {
                reinsert(
                    &mut inner,
                    DocEntry {
                        id: entry.id,
                        name: entry.name,
                        shard: arc,
                    },
                );
                return Err(TxnError::DocumentInUse {
                    name: name.to_string(),
                });
            }
        };
        if let Some(dir) = &self.dir {
            if let Err(e) = write_manifest(dir, &inner.docs) {
                reinsert(
                    &mut inner,
                    DocEntry {
                        id: entry.id,
                        name: entry.name,
                        shard: Arc::new(shard),
                    },
                );
                return Err(e);
            }
        }
        Ok(shard.into_parts())
    }

    /// Routes a query to one document's shard (see [`Shard::query`]).
    pub fn query(&self, name: &str, text: &str) -> Result<mbxq_xpath::Value> {
        self.shard_or_err(name)?.query(text)
    }

    /// [`Catalog::query`] coerced to a node set.
    pub fn query_nodes(&self, name: &str, text: &str) -> Result<Vec<NodeId>> {
        self.shard_or_err(name)?.query_nodes(text)
    }

    /// [`Catalog::query`] with full evaluation options.
    pub fn query_opts(
        &self,
        name: &str,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<mbxq_xpath::Value> {
        self.shard_or_err(name)?.query_opts(text, opts)
    }

    /// [`Catalog::query_nodes`] with full evaluation options.
    pub fn query_nodes_opts(
        &self,
        name: &str,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<Vec<NodeId>> {
        self.shard_or_err(name)?.query_nodes_opts(text, opts)
    }

    /// One document's feedback-annotated physical plan for `text` (see
    /// [`Shard::explain_query`]).
    pub fn explain_query(&self, name: &str, text: &str) -> Result<String> {
        self.shard_or_err(name)?.explain_query(text)
    }

    /// One document's recorded multi-predicate feedback for `text` (see
    /// [`Shard::plan_feedback`]).
    pub fn plan_feedback(
        &self,
        name: &str,
        text: &str,
    ) -> Result<Option<Vec<mbxq_xpath::StepFeedback>>> {
        Ok(self.shard_or_err(name)?.plan_feedback(text))
    }

    /// Evaluates `text` against **every** document, in parallel over the
    /// shared worker pool when it exists, and merges the results in
    /// (document, document-order): documents appear in creation order,
    /// nodes within each in document order — bit-identical to querying
    /// each shard sequentially, whatever the execution interleaving.
    pub fn query_all(&self, text: &str) -> Result<Vec<DocMatches>> {
        self.query_all_opts(text, &mbxq_xpath::EvalOptions::default())
    }

    /// [`Catalog::query_all`] with merged evaluation counters: each
    /// document evaluates with a private [`EvalStats`] (the cells are
    /// not `Sync`) and all of them are folded into `stats` afterwards,
    /// along with the fan-out's own morsel/steal counts.
    pub fn query_all_stats(&self, text: &str, stats: &EvalStats) -> Result<Vec<DocMatches>> {
        self.query_all_opts(text, &mbxq_xpath::EvalOptions::new().stats(stats))
    }

    /// [`Catalog::query_all`] with one [`mbxq_xpath::EvalOptions`]
    /// threaded through the whole fan-out: its `$name` bindings and
    /// axis/value/par strategy choices apply to **every** per-document
    /// evaluation, and its stats sink (if set) receives the folded
    /// per-document counters plus the fan-out's own morsel/steal
    /// counts. This is how a parameterized query runs across a
    /// partition group — the binding set is serialized once and shared.
    pub fn query_all_opts(
        &self,
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<Vec<DocMatches>> {
        let docs: Vec<(String, Arc<Shard>)> = {
            let inner = self.inner.lock().unwrap();
            inner
                .docs
                .iter()
                .map(|e| (e.name.clone(), e.shard.clone()))
                .collect()
        };
        self.query_docs(&docs, text, opts)
    }

    /// Like [`Catalog::query_all`], restricted to `names` (in the given
    /// order) — e.g. one partition group. Unknown names fail.
    pub fn query_collection(&self, names: &[String], text: &str) -> Result<Vec<DocMatches>> {
        self.query_collection_opts(names, text, &mbxq_xpath::EvalOptions::default())
    }

    /// [`Catalog::query_collection`] with full evaluation options — see
    /// [`Catalog::query_all_opts`] for how they thread the fan-out.
    pub fn query_collection_opts(
        &self,
        names: &[String],
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<Vec<DocMatches>> {
        let docs = names
            .iter()
            .map(|n| Ok((n.clone(), self.shard_or_err(n)?)))
            .collect::<Result<Vec<_>>>()?;
        self.query_docs(&docs, text, opts)
    }

    /// The fan-out core: one shard-local evaluation per document — on
    /// the shared pool when it exists and more than one document is
    /// involved, inline otherwise — merged in slot (= document) order.
    /// A nested pool use inside a shard's own evaluation falls back to
    /// inline execution (the pool's run lock is already taken), so the
    /// fan-out can never deadlock on its own workers. The caller's
    /// options are shared across workers as their `Sync` subset
    /// ([`mbxq_xpath::SharedOptions`]); each worker attaches a private
    /// [`EvalStats`] that is folded into the caller's sink afterwards.
    fn query_docs(
        &self,
        docs: &[(String, Arc<Shard>)],
        text: &str,
        opts: &mbxq_xpath::EvalOptions<'_>,
    ) -> Result<Vec<DocMatches>> {
        let shared = opts.shared();
        type Slot = Option<(Result<Vec<NodeId>>, EvalStats)>;
        let mut slots: Vec<Mutex<Slot>> = (0..docs.len()).map(|_| Mutex::new(None)).collect();
        let eval_one = |i: usize| {
            let per = EvalStats::default();
            let res = docs[i].1.query_nodes_opts(text, &shared.with_stats(&per));
            *slots[i].lock().unwrap() = Some((res, per));
        };
        let mut fan_steals = 0u64;
        match self.pool.get() {
            Some(pool) if docs.len() > 1 => {
                fan_steals = pool.run(docs.len(), &eval_one);
            }
            _ => {
                for i in 0..docs.len() {
                    eval_one(i);
                }
            }
        }
        let stats = opts.stats_ref();
        if let Some(s) = stats {
            s.morsels.set(s.morsels.get() + docs.len() as u64);
            s.steals.set(s.steals.get() + fan_steals);
        }
        let mut out = Vec::with_capacity(docs.len());
        for ((name, _), slot) in docs.iter().zip(slots.iter_mut()) {
            let (res, per) = slot
                .get_mut()
                .unwrap()
                .take()
                .expect("every document slot filled");
            if let Some(s) = stats {
                s.absorb(&per);
            }
            out.push(DocMatches {
                doc: name.clone(),
                nodes: res?,
            });
        }
        Ok(out)
    }

    /// Checkpoints one document (see [`Shard::checkpoint`]): truncates
    /// *its* WAL only — maintenance never crosses shard boundaries.
    pub fn checkpoint(&self, name: &str) -> Result<CheckpointInfo> {
        self.shard_or_err(name)?.checkpoint()
    }

    /// Vacuums one document (see [`Shard::vacuum`]).
    pub fn vacuum(&self, name: &str) -> Result<mbxq_storage::VacuumReport> {
        self.shard_or_err(name)?.vacuum()
    }

    /// One document's live-tuple occupancy (see [`Shard::occupancy`]).
    pub fn occupancy(&self, name: &str) -> Result<f64> {
        Ok(self.shard_or_err(name)?.occupancy())
    }
}

fn shard_wal_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("shard-{id}.wal"))
}

/// The rules for *plain* (non-part) document names: non-empty, no `#`
/// (the partition-part namespace — a plain `base#7` would pollute
/// `partition_parts("base")` and collide with a later
/// `create_partitioned("base", …)`), no ASCII control characters (the
/// manifest is line-oriented only for readability, but names with
/// embedded newlines make every log line and error message ambiguous).
fn validate_plain_name(name: &str) -> Result<()> {
    if name.is_empty() {
        return Err(io_err("create document", "empty document name"));
    }
    if name.contains('#') {
        return Err(io_err(
            "create document",
            format!("name {name:?} contains '#', reserved for partition parts"),
        ));
    }
    if name.chars().any(|c| c.is_ascii_control()) {
        return Err(io_err(
            "create document",
            format!("name {name:?} contains ASCII control characters"),
        ));
    }
    Ok(())
}

/// Serializes and atomically installs the manifest: write `manifest.tmp`,
/// fsync its data, rename over `manifest`, fsync the directory — the
/// rename is the commit point, exactly like a WAL truncation.
fn write_manifest(dir: &Path, docs: &[DocEntry]) -> Result<()> {
    let mut out = String::from("mbxq-catalog v1\n");
    for e in docs {
        out.push_str(&format!("{} {}:{}\n", e.id, e.name.len(), e.name));
    }
    let tmp = dir.join("manifest.tmp");
    let path = dir.join("manifest");
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("write manifest.tmp", e))?;
    f.write_all(out.as_bytes())
        .map_err(|e| io_err("write manifest.tmp", e))?;
    f.sync_all().map_err(|e| io_err("sync manifest.tmp", e))?;
    drop(f);
    std::fs::rename(&tmp, &path).map_err(|e| io_err("install manifest", e))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Parses the manifest into `(id, name)` entries in creation order.
fn decode_manifest(text: &str) -> Result<Vec<(u64, String)>> {
    let corrupt = |message: &str| TxnError::CatalogIo {
        message: format!("manifest corrupt: {message}"),
    };
    let rest = text
        .strip_prefix("mbxq-catalog v1\n")
        .ok_or_else(|| corrupt("bad header"))?;
    let mut entries = Vec::new();
    let mut rest = rest;
    let mut seen = std::collections::HashSet::new();
    while !rest.is_empty() {
        let sp = rest.find(' ').ok_or_else(|| corrupt("entry lacks id"))?;
        let id: u64 = rest[..sp].parse().map_err(|_| corrupt("bad id"))?;
        rest = &rest[sp + 1..];
        let colon = rest
            .find(':')
            .ok_or_else(|| corrupt("entry lacks name length"))?;
        let len: usize = rest[..colon]
            .parse()
            .map_err(|_| corrupt("bad name length"))?;
        rest = &rest[colon + 1..];
        if rest.len() < len + 1 {
            return Err(corrupt("truncated name"));
        }
        let name = rest[..len].to_string();
        if rest.as_bytes()[len] != b'\n' {
            return Err(corrupt("missing entry terminator"));
        }
        if !seen.insert(id) {
            return Err(corrupt("duplicate shard id"));
        }
        rest = &rest[len + 1..];
        entries.push((id, name));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CatalogConfig {
        CatalogConfig {
            store: StoreConfig {
                lock_timeout: std::time::Duration::from_millis(200),
                validate_on_commit: true,
                ..StoreConfig::default()
            },
            page: PageConfig::new(8, 75).unwrap(),
        }
    }

    #[test]
    fn manifest_round_trips_awkward_names() {
        let names = ["plain", "with space", "uni-cødé", "hash#0", "nl\nname"];
        let docs: Vec<DocEntry> = names
            .iter()
            .enumerate()
            .map(|(i, n)| DocEntry {
                id: i as u64 * 3,
                name: n.to_string(),
                shard: Arc::new(Shard::open(
                    PagedDoc::parse_str("<r/>", PageConfig::default()).unwrap(),
                    Wal::in_memory(),
                    StoreConfig::default(),
                )),
            })
            .collect();
        let mut out = String::from("mbxq-catalog v1\n");
        for e in &docs {
            out.push_str(&format!("{} {}:{}\n", e.id, e.name.len(), e.name));
        }
        let back = decode_manifest(&out).unwrap();
        assert_eq!(
            back,
            names
                .iter()
                .enumerate()
                .map(|(i, n)| (i as u64 * 3, n.to_string()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_manifests_are_rejected() {
        assert!(decode_manifest("not a manifest").is_err());
        assert!(decode_manifest("mbxq-catalog v1\n0 5:ab\n").is_err()); // short name
        assert!(decode_manifest("mbxq-catalog v1\n0 2:ab").is_err()); // no terminator
        assert!(decode_manifest("mbxq-catalog v1\nx 2:ab\n").is_err()); // bad id
        assert!(decode_manifest("mbxq-catalog v1\n0 2:ab\n0 1:c\n").is_err()); // dup id
        assert!(decode_manifest("mbxq-catalog v1\n0 2:ab\n1 1:c\n").is_ok());
    }

    #[test]
    fn routing_create_drop_and_duplicate_names() {
        let cat = Catalog::in_memory(cfg());
        cat.create_doc("a", "<a><x/></a>").unwrap();
        cat.create_doc("b", "<b><x/><x/></b>").unwrap();
        assert!(matches!(
            cat.create_doc("a", "<a/>"),
            Err(TxnError::DuplicateDocument { .. })
        ));
        assert_eq!(cat.doc_names(), ["a", "b"]);
        assert_eq!(cat.query_nodes("a", "//x").unwrap().len(), 1);
        assert_eq!(cat.query_nodes("b", "//x").unwrap().len(), 2);
        assert!(matches!(
            cat.query_nodes("c", "//x"),
            Err(TxnError::UnknownDocument { .. })
        ));
        cat.drop_doc("a").unwrap();
        assert!(!cat.contains("a"));
        assert!(matches!(
            cat.drop_doc("a"),
            Err(TxnError::UnknownDocument { .. })
        ));
    }

    #[test]
    fn query_all_merges_in_doc_then_document_order() {
        let cat = Catalog::in_memory(cfg());
        cat.create_doc("one", "<r><x i=\"1\"/><x i=\"2\"/></r>")
            .unwrap();
        cat.create_doc("two", "<r><x i=\"3\"/></r>").unwrap();
        let all = cat.query_all("//x").unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].doc, "one");
        assert_eq!(all[0].nodes.len(), 2);
        assert_eq!(all[1].doc, "two");
        assert_eq!(all[1].nodes.len(), 1);
        // Per-document results are bit-identical to direct shard queries.
        assert_eq!(all[0].nodes, cat.query_nodes("one", "//x").unwrap());
        assert_eq!(all[1].nodes, cat.query_nodes("two", "//x").unwrap());
    }

    #[test]
    fn partitioning_preserves_child_ranges_in_order() {
        let cat = Catalog::in_memory(cfg());
        let xml =
            "<site a=\"v\"><c i=\"0\"/><c i=\"1\"/><c i=\"2\"/><c i=\"3\"/><c i=\"4\"/></site>";
        let parts = cat.create_partitioned("big", xml, 2).unwrap();
        assert_eq!(parts, ["big#0", "big#1"]);
        assert_eq!(cat.partition_parts("big"), parts);
        // All five children present, split 2/3, original order preserved.
        let all = cat.query_collection(&parts, "//c").unwrap();
        let counts: Vec<usize> = all.iter().map(|m| m.nodes.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert_eq!(counts, [2, 3]);
        // Root attributes survive on every part.
        for p in &parts {
            assert_eq!(cat.query_nodes(p, "/site[@a=\"v\"]").unwrap().len(), 1);
        }
        // More parts than children clamps.
        let tiny = cat.create_partitioned("tiny", "<r><only/></r>", 4).unwrap();
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn plain_names_reject_hash_and_control_characters() {
        let cat = Catalog::in_memory(cfg());
        for bad in [
            "",
            "base#7",
            "#",
            "a#b#c",
            "nl\nname",
            "tab\tname",
            "\u{1}x",
        ] {
            assert!(
                matches!(cat.create_doc(bad, "<r/>"), Err(TxnError::CatalogIo { .. })),
                "{bad:?} must be rejected"
            );
            assert!(!cat.contains(bad));
        }
        // Pollution direction: if "base#7" had been accepted it would
        // enumerate as a part of a never-partitioned "base".
        assert!(cat.partition_parts("base").is_empty());
        // Collision direction: partitioning "base" now succeeds — no
        // hand-created squatter occupies the base#k namespace.
        let parts = cat
            .create_partitioned("base", "<r><c/><c/></r>", 2)
            .unwrap();
        assert_eq!(parts, ["base#0", "base#1"]);
        // The base of a partitioning is held to the same rules.
        assert!(matches!(
            cat.create_partitioned("ba#se", "<r><c/></r>", 1),
            Err(TxnError::CatalogIo { .. })
        ));
        // Non-ASCII (and spaces) stay legal.
        cat.create_doc("uni-cødé name", "<r/>").unwrap();
    }

    #[test]
    fn partition_parts_sorts_by_suffix_not_creation_order() {
        let cat = Catalog::in_memory(cfg());
        let xml = "<r><c i=\"0\"/><c i=\"1\"/><c i=\"2\"/></r>";
        let parts = cat.create_partitioned("base", xml, 3).unwrap();
        assert_eq!(parts, ["base#0", "base#1", "base#2"]);
        // Drop the middle part and recreate it *last*: enumeration must
        // still come back in part order, not creation order.
        cat.drop_doc("base#1").unwrap();
        assert_eq!(cat.partition_parts("base"), ["base#0", "base#2"]);
        cat.create_part("base", 1, "<r><c i=\"1\"/></r>").unwrap();
        assert_eq!(
            cat.partition_parts("base"),
            ["base#0", "base#1", "base#2"],
            "recreated middle part must sort back into place"
        );
        // create_part validates the *base* name.
        assert!(matches!(
            cat.create_part("ba#d", 0, "<r/>"),
            Err(TxnError::CatalogIo { .. })
        ));
        // Non-numeric suffixes never looked like parts and still don't.
        assert!(cat.partition_parts("bas").is_empty());
    }

    #[test]
    fn query_opts_thread_bindings_through_the_fanout() {
        let cat = Catalog::in_memory(cfg());
        let xml = "<r><c i=\"1\"/><c i=\"2\"/><c i=\"3\"/><c i=\"4\"/></r>";
        let parts = cat.create_partitioned("p", xml, 2).unwrap();
        let mut b = mbxq_xpath::Bindings::new();
        b.set("want", mbxq_xpath::Value::Str("3".into()));
        let stats = EvalStats::default();
        let opts = mbxq_xpath::EvalOptions::new().bindings(&b).stats(&stats);
        let hits = cat
            .query_collection_opts(&parts, "//c[@i = $want]", &opts)
            .unwrap();
        let total: usize = hits.iter().map(|m| m.nodes.len()).sum();
        assert_eq!(total, 1);
        assert_eq!(hits[0].nodes.len() + hits[1].nodes.len(), 1);
        assert!(stats.morsels.get() >= 2, "fan-out morsels counted");
        // query_all_opts sees the same bindings across every document.
        let all = cat.query_all_opts("//c[@i = $want]", &opts).unwrap();
        assert_eq!(all.iter().map(|m| m.nodes.len()).sum::<usize>(), 1);
    }

    #[test]
    fn export_hands_out_parts_and_respects_live_handles() {
        let cat = Catalog::in_memory(cfg());
        cat.create_doc("d", "<d><x/></d>").unwrap();
        let held = cat.shard("d").unwrap();
        assert!(matches!(
            cat.export("d"),
            Err(TxnError::DocumentInUse { .. })
        ));
        assert!(cat.contains("d"), "failed export must not drop the doc");
        drop(held);
        let (doc, wal) = cat.export("d").unwrap();
        assert_eq!(doc.used_count(), 2);
        assert!(!wal.read_all().unwrap().is_empty(), "genesis checkpoint");
        assert!(!cat.contains("d"));
    }

    #[test]
    fn shards_share_one_query_pool() {
        let mut c = cfg();
        c.store.query_threads = 2;
        let cat = Catalog::in_memory(c);
        let a = cat.create_doc("a", "<r><x/></r>").unwrap();
        let b = cat.create_doc("b", "<r><y/></r>").unwrap();
        assert!(!cat.pool_stats().spawned, "pool is lazy");
        let pa = a.query_pool().unwrap() as *const _;
        let pb = b.query_pool().unwrap() as *const _;
        assert_eq!(pa, pb, "one pool for every shard");
        assert!(cat.pool_stats().spawned);
        assert_eq!(cat.pool_stats().threads, 2);
    }
}
