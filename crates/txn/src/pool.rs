//! Shared morsel-execution pool.
//!
//! A [`QueryPool`] wraps one lazily-spawned [`mbxq_xpath::WorkerPool`]
//! behind an `Arc`, so **every shard of a catalog shares the same
//! worker threads**: N documents must not mean N thread pools. The pool
//! spawns on the first query that can use it (configured width ≥ 2) and
//! stays idle-cheap before that — a catalog holding a thousand
//! documents that are never queried in parallel owns zero extra
//! threads.

use std::sync::OnceLock;

/// A lazily-spawned, shareable query worker pool.
///
/// Construction is free; the underlying [`mbxq_xpath::WorkerPool`] (and
/// its `threads - 1` OS threads) appears on the first [`QueryPool::get`]
/// when the configured width is at least 2. A width of 0 or 1 means
/// sequential execution: `get` returns `None` forever and nothing is
/// ever spawned.
pub struct QueryPool {
    threads: usize,
    overhead_ns: Option<u64>,
    inner: OnceLock<mbxq_xpath::WorkerPool>,
}

impl std::fmt::Debug for QueryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPool")
            .field("threads", &self.threads)
            .field("spawned", &self.spawned())
            .finish()
    }
}

impl QueryPool {
    /// A pool of `threads` total execution threads (`threads - 1`
    /// spawned workers plus the submitting thread), not yet spawned.
    /// Per-morsel overhead is measured by a calibration loop at spawn.
    pub fn new(threads: usize) -> QueryPool {
        QueryPool::with_overhead(threads, None)
    }

    /// Like [`QueryPool::new`] but with the per-morsel dispatch
    /// overhead pinned (`Some(ns)`) instead of calibrated at spawn —
    /// see [`StoreConfig::morsel_overhead_ns`](crate::StoreConfig).
    pub fn with_overhead(threads: usize, overhead_ns: Option<u64>) -> QueryPool {
        QueryPool {
            threads,
            overhead_ns,
            inner: OnceLock::new(),
        }
    }

    /// The configured width (what [`QueryPool::get`] would spawn).
    pub fn configured_threads(&self) -> usize {
        self.threads
    }

    /// Whether the worker threads have been spawned yet.
    pub fn spawned(&self) -> bool {
        self.inner.get().is_some()
    }

    /// The shared worker pool, spawning it on first use; `None` when
    /// the configured width is below 2 (sequential execution).
    pub fn get(&self) -> Option<&mbxq_xpath::WorkerPool> {
        if self.threads < 2 {
            return None;
        }
        Some(self.inner.get_or_init(|| {
            mbxq_xpath::WorkerPool::with_overhead_ns(self.threads, self.overhead_ns)
        }))
    }

    /// A live snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            spawned: self.spawned(),
            steals: self
                .inner
                .get()
                .map_or(0, mbxq_xpath::WorkerPool::steals_total),
            morsel_overhead_ns: self
                .inner
                .get()
                .map_or(0, mbxq_xpath::WorkerPool::morsel_overhead_ns),
        }
    }
}

/// Counters of a [`QueryPool`] (see [`QueryPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured total execution threads.
    pub threads: usize,
    /// Whether the worker threads exist yet (lazily spawned).
    pub spawned: bool,
    /// Cumulative cross-queue morsel steals since spawn.
    pub steals: u64,
    /// The pool's per-morsel dispatch overhead (calibrated or pinned at
    /// spawn; `0` before the pool exists) feeding the executor's
    /// parallel break-even cost model.
    pub morsel_overhead_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_pools_never_spawn() {
        for threads in [0, 1] {
            let pool = QueryPool::new(threads);
            assert!(pool.get().is_none());
            assert!(!pool.spawned());
            assert_eq!(
                pool.stats(),
                PoolStats {
                    threads,
                    spawned: false,
                    steals: 0,
                    morsel_overhead_ns: 0
                }
            );
        }
    }

    #[test]
    fn wide_pool_spawns_once_and_is_shared() {
        let pool = QueryPool::new(2);
        assert!(!pool.spawned(), "construction must not spawn");
        let a = pool.get().unwrap() as *const _;
        let b = pool.get().unwrap() as *const _;
        assert_eq!(a, b, "one pool, reused");
        assert!(pool.spawned());
        assert_eq!(pool.stats().threads, 2);
        assert!(
            pool.stats().morsel_overhead_ns > 0,
            "spawn must calibrate a nonzero morsel overhead"
        );
    }

    #[test]
    fn pinned_overhead_passes_through_to_the_worker_pool() {
        let pool = QueryPool::with_overhead(2, Some(750));
        assert_eq!(pool.get().unwrap().morsel_overhead_ns(), 750);
        assert_eq!(pool.stats().morsel_overhead_ns, 750);
    }
}
