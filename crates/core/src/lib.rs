//! `mbxq-core` — the public facade of the MonetDB/XQuery pre/post-plane
//! reproduction.
//!
//! This crate ties the subsystems together into the API a downstream
//! user works with: a [`Database`] that holds named XML documents in
//! either the **read-only** schema (dense pre/size/level, Figure 5) or
//! the **updateable** schema (paged pos/size/level + pageOffset +
//! node→pos, Figure 6, with the full ACID machinery of Figure 8), and
//! runs XPath queries and XUpdate scripts against them.
//!
//! ```
//! use mbxq_core::{Database, StorageMode};
//!
//! let mut db = Database::new();
//! db.load(
//!     "docs",
//!     r#"<library><book year="2005"><title>Pre/Post Plane</title></book></library>"#,
//!     StorageMode::default_updatable(),
//! )
//! .unwrap();
//!
//! // Query.
//! let titles = db.query("docs", "/library/book/title").unwrap();
//! assert_eq!(titles.items, vec!["<title>Pre/Post Plane</title>"]);
//!
//! // Update (ACID auto-commit transaction), then query again.
//! db.update(
//!     "docs",
//!     r#"<xupdate:modifications version="1.0">
//!          <xupdate:append select="/library">
//!            <xupdate:element name="book"><title>Staircase Join</title></xupdate:element>
//!          </xupdate:append>
//!        </xupdate:modifications>"#,
//! )
//! .unwrap();
//! assert_eq!(db.query("docs", "count(/library/book)").unwrap().items, vec!["2"]);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

pub use mbxq_axes::{step, Axis, NodeTest};
pub use mbxq_storage::{
    InsertPosition, Kind, NaiveDoc, NodeId, PageConfig, PagedDoc, PagedStats, ReadOnlyDoc,
    StorageError, TreeView,
};
pub use mbxq_txn::{
    wal::Wal, AncestorLockMode, Catalog, CatalogConfig, CommitInfo, CommitPipeline, DocMatches,
    GroupCommitStats, PoolStats, QueryPool, Shard, Store, StoreConfig, TxnError, WriteTxn,
};
pub use mbxq_xml::{Document as XmlDocument, Node, QName};
pub use mbxq_xpath::{Value, XPath, XPathError};
pub use mbxq_xupdate::{parse_modifications, ExecutionSummary, Modifications, XUpdateError};

/// Which storage schema a document uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// The dense read-only schema — fastest queries, no updates.
    ReadOnly,
    /// The paged updateable schema with ACID transactions.
    Updatable {
        /// Logical-page layout.
        page: PageConfig,
        /// Ancestor locking strategy (paper default: delta increments).
        ancestors: AncestorLockMode,
    },
}

impl StorageMode {
    /// The paper's updateable configuration: logical pages with ~20 %
    /// unused tuples and commutative-delta ancestor maintenance.
    pub fn default_updatable() -> StorageMode {
        StorageMode::Updatable {
            page: PageConfig::default(),
            ancestors: AncestorLockMode::Delta,
        }
    }
}

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum DbError {
    /// No document with that name.
    NoSuchDocument {
        /// The requested name.
        name: String,
    },
    /// The operation needs the updateable schema.
    ReadOnlyDocument {
        /// The document name.
        name: String,
    },
    /// Parse/shred failure.
    Storage(StorageError),
    /// XPath failure.
    Path(XPathError),
    /// XUpdate failure.
    Update(XUpdateError),
    /// Transaction failure.
    Txn(TxnError),
}

impl core::fmt::Display for DbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DbError::NoSuchDocument { name } => write!(f, "no document named '{name}'"),
            DbError::ReadOnlyDocument { name } => {
                write!(
                    f,
                    "document '{name}' is stored read-only; reload it as updatable"
                )
            }
            DbError::Storage(e) => write!(f, "{e}"),
            DbError::Path(e) => write!(f, "{e}"),
            DbError::Update(e) => write!(f, "{e}"),
            DbError::Txn(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<XPathError> for DbError {
    fn from(e: XPathError) -> Self {
        DbError::Path(e)
    }
}

impl From<XUpdateError> for DbError {
    fn from(e: XUpdateError) -> Self {
        DbError::Update(e)
    }
}

impl From<TxnError> for DbError {
    fn from(e: TxnError) -> Self {
        DbError::Txn(e)
    }
}

/// Result alias for facade operations.
pub type Result<T> = std::result::Result<T, DbError>;

enum DocHandle {
    ReadOnly(Arc<ReadOnlyDoc>),
    Updatable(Arc<Store>),
}

/// The result of a query: each item serialized to text (elements as XML,
/// attributes and scalars as their string value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// Serialized result items in document order.
    pub items: Vec<String>,
}

/// A collection of named XML documents.
#[derive(Default)]
pub struct Database {
    docs: HashMap<String, DocHandle>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Loads (shreds) a document from XML text under `name`, replacing
    /// any previous document of that name.
    pub fn load(&mut self, name: &str, xml: &str, mode: StorageMode) -> Result<()> {
        let handle = match mode {
            StorageMode::ReadOnly => DocHandle::ReadOnly(Arc::new(ReadOnlyDoc::parse_str(xml)?)),
            StorageMode::Updatable { page, ancestors } => {
                let doc = PagedDoc::parse_str(xml, page)?;
                let store = Store::open(
                    doc,
                    Wal::in_memory(),
                    StoreConfig {
                        ancestor_mode: ancestors,
                        ..StoreConfig::default()
                    },
                );
                DocHandle::Updatable(Arc::new(store))
            }
        };
        self.docs.insert(name.to_string(), handle);
        Ok(())
    }

    /// Loads an updateable document with a caller-supplied WAL and store
    /// configuration (e.g. a file-backed WAL for durability).
    pub fn load_with_wal(
        &mut self,
        name: &str,
        xml: &str,
        page: PageConfig,
        wal: Wal,
        config: StoreConfig,
    ) -> Result<()> {
        let doc = PagedDoc::parse_str(xml, page)?;
        self.docs.insert(
            name.to_string(),
            DocHandle::Updatable(Arc::new(Store::open(doc, wal, config))),
        );
        Ok(())
    }

    /// Registers an already-open transactional store under `name`.
    pub fn attach_store(&mut self, name: &str, store: Arc<Store>) {
        self.docs
            .insert(name.to_string(), DocHandle::Updatable(store));
    }

    /// The names of all loaded documents.
    pub fn document_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.docs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    fn handle(&self, name: &str) -> Result<&DocHandle> {
        self.docs.get(name).ok_or_else(|| DbError::NoSuchDocument {
            name: name.to_string(),
        })
    }

    /// Evaluates an XPath expression against the document's committed
    /// state and serializes the result items.
    pub fn query(&self, name: &str, xpath: &str) -> Result<QueryOutput> {
        let path = XPath::parse(xpath)?;
        match self.handle(name)? {
            DocHandle::ReadOnly(doc) => eval_output(doc.as_ref(), &path),
            DocHandle::Updatable(store) => eval_output(store.snapshot().as_ref(), &path),
        }
    }

    /// Runs `f` against the document's committed state (zero-copy access
    /// for engine-level code like the XMark query plans).
    pub fn with_view<R>(&self, name: &str, f: impl FnOnce(&dyn TreeView) -> R) -> Result<R> {
        match self.handle(name)? {
            DocHandle::ReadOnly(doc) => Ok(f(doc.as_ref())),
            DocHandle::Updatable(store) => Ok(f(store.snapshot().as_ref())),
        }
    }

    /// Applies an XUpdate script in one auto-committed ACID transaction.
    pub fn update(&self, name: &str, xupdate: &str) -> Result<ExecutionSummary> {
        let mods = parse_modifications(xupdate)?;
        match self.handle(name)? {
            DocHandle::ReadOnly(_) => Err(DbError::ReadOnlyDocument {
                name: name.to_string(),
            }),
            DocHandle::Updatable(store) => {
                let mut txn = store.begin();
                let summary = txn.execute_xupdate(&mods)?;
                txn.commit()?;
                Ok(summary)
            }
        }
    }

    /// Access to the transactional store of an updateable document, for
    /// explicit multi-operation transactions.
    pub fn store(&self, name: &str) -> Result<Arc<Store>> {
        match self.handle(name)? {
            DocHandle::ReadOnly(_) => Err(DbError::ReadOnlyDocument {
                name: name.to_string(),
            }),
            DocHandle::Updatable(store) => Ok(store.clone()),
        }
    }

    /// Serializes the document's committed state back to XML.
    pub fn serialize(&self, name: &str) -> Result<String> {
        match self.handle(name)? {
            DocHandle::ReadOnly(doc) => Ok(mbxq_storage::serialize::to_xml(doc.as_ref())?),
            DocHandle::Updatable(store) => {
                Ok(mbxq_storage::serialize::to_xml(store.snapshot().as_ref())?)
            }
        }
    }

    /// Occupancy statistics (updateable documents only).
    pub fn stats(&self, name: &str) -> Result<PagedStats> {
        match self.handle(name)? {
            DocHandle::ReadOnly(_) => Err(DbError::ReadOnlyDocument {
                name: name.to_string(),
            }),
            DocHandle::Updatable(store) => Ok(store.snapshot().stats()),
        }
    }
}

fn eval_output<V: TreeView>(view: &V, path: &XPath) -> Result<QueryOutput> {
    let root: Vec<u64> = view.root_pre().into_iter().collect();
    let value = path.eval(view, &root)?;
    let items = match value {
        Value::Nodes(nodes) => {
            let mut out = Vec::with_capacity(nodes.len());
            for pre in nodes {
                let tree = mbxq_storage::serialize::subtree_to_node(view, pre)?;
                let mut s = String::new();
                mbxq_xml::serialize_node(&tree, &mut s);
                out.push(s);
            }
            out
        }
        Value::Attrs(attrs) => attrs
            .iter()
            .filter_map(|&(owner, qn)| {
                view.attributes(owner)
                    .into_iter()
                    .find(|&(n, _)| n == qn)
                    .and_then(|(_, p)| view.pool().prop(p).map(str::to_string))
            })
            .collect(),
        // XPath string() rendering (integers without a decimal point,
        // NaN/±Infinity spelled out) — one implementation, in mbxq-xpath.
        Value::Number(n) => vec![Value::Number(n).to_str(view)],
        Value::Boolean(b) => vec![b.to_string()],
        Value::Str(s) => vec![s],
    };
    Ok(QueryOutput { items })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<site><people><person id="p0"><name>Ann</name></person></people></site>"#;

    #[test]
    fn load_query_readonly() {
        let mut db = Database::new();
        db.load("d", DOC, StorageMode::ReadOnly).unwrap();
        let out = db.query("d", "//person/name").unwrap();
        assert_eq!(out.items, vec!["<name>Ann</name>"]);
        let count = db.query("d", "count(//person)").unwrap();
        assert_eq!(count.items, vec!["1"]);
    }

    #[test]
    fn readonly_rejects_updates() {
        let mut db = Database::new();
        db.load("d", DOC, StorageMode::ReadOnly).unwrap();
        let err = db
            .update("d", r#"<xupdate:remove select="//person"/>"#)
            .unwrap_err();
        assert!(matches!(err, DbError::ReadOnlyDocument { .. }));
    }

    #[test]
    fn updatable_full_cycle() {
        let mut db = Database::new();
        db.load("d", DOC, StorageMode::default_updatable()).unwrap();
        db.update(
            "d",
            r#"<xupdate:append select="/site/people">
                 <xupdate:element name="person">
                   <xupdate:attribute name="id">p1</xupdate:attribute>
                   <name>Bob</name>
                 </xupdate:element>
               </xupdate:append>"#,
        )
        .unwrap();
        assert_eq!(db.query("d", "count(//person)").unwrap().items, vec!["2"]);
        assert!(db.serialize("d").unwrap().contains("Bob"));
        let stats = db.stats("d").unwrap();
        assert_eq!(stats.used, 8);
    }

    #[test]
    fn sequential_script_semantics_inside_one_txn() {
        // The second command selects the element the first one created.
        let mut db = Database::new();
        db.load("d", DOC, StorageMode::default_updatable()).unwrap();
        db.update(
            "d",
            r#"<xupdate:modifications version="1.0">
                 <xupdate:append select="/site">
                   <xupdate:element name="log"/>
                 </xupdate:append>
                 <xupdate:append select="/site/log">
                   <xupdate:element name="entry"/>
                 </xupdate:append>
               </xupdate:modifications>"#,
        )
        .unwrap();
        assert_eq!(
            db.query("d", "count(/site/log/entry)").unwrap().items,
            vec!["1"]
        );
    }

    #[test]
    fn explicit_transactions_via_store() {
        let mut db = Database::new();
        db.load("d", DOC, StorageMode::default_updatable()).unwrap();
        let store = db.store("d").unwrap();
        let mut t = store.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        let frag = XmlDocument::parse_fragment("<person id=\"tx\"/>").unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        // Uncommitted: invisible through the facade.
        assert_eq!(db.query("d", "count(//person)").unwrap().items, vec!["1"]);
        t.commit().unwrap();
        assert_eq!(db.query("d", "count(//person)").unwrap().items, vec!["2"]);
    }

    #[test]
    fn unknown_document_errors() {
        let db = Database::new();
        assert!(matches!(
            db.query("nope", "/x"),
            Err(DbError::NoSuchDocument { .. })
        ));
    }

    #[test]
    fn attribute_query_output() {
        let mut db = Database::new();
        db.load("d", DOC, StorageMode::ReadOnly).unwrap();
        let out = db.query("d", "//person/@id").unwrap();
        assert_eq!(out.items, vec!["p0"]);
    }

    #[test]
    fn doc_names_listed() {
        let mut db = Database::new();
        db.load("b", DOC, StorageMode::ReadOnly).unwrap();
        db.load("a", DOC, StorageMode::ReadOnly).unwrap();
        assert_eq!(db.document_names(), vec!["a", "b"]);
    }
}
