//! Umbrella crate for the MonetDB/XQuery pre/post-plane reproduction.
//!
//! Re-exports the public facade from [`mbxq_core`] so examples and
//! integration tests can use a single dependency.
pub use mbxq_core::*;
