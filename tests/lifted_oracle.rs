//! Loop-lifted vs per-node oracle: for every axis, on randomly generated
//! trees, `step_lifted` over a lifted context (one iteration per context
//! node) must agree group-by-group with evaluating `step` once per node,
//! and a single-iteration context must agree with the flat set-at-a-time
//! `step` — on both the read-only and the paged storage schema.

mod common;

use common::{rand_tree, TestRng};
use mbxq::{step, Axis, NodeTest, PageConfig, PagedDoc, ReadOnlyDoc, TreeView};
use mbxq_axes::{step_lifted, ContextSeq};

const ALL_AXES: [Axis; 11] = [
    Axis::SelfAxis,
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
    Axis::Following,
    Axis::Preceding,
];

fn used_pres<V: TreeView>(view: &V) -> Vec<u64> {
    let mut out = Vec::new();
    let mut p = 0;
    while let Some(q) = view.next_used_at_or_after(p) {
        out.push(q);
        p = q + 1;
    }
    out
}

/// A random sorted, duplicate-free context subset.
fn random_context(rng: &mut TestRng, pres: &[u64]) -> Vec<u64> {
    let mut ctx: Vec<u64> = pres.iter().copied().filter(|_| rng.chance(1, 2)).collect();
    if ctx.is_empty() {
        ctx.push(pres[rng.below(pres.len())]);
    }
    ctx
}

fn check_view<V: TreeView>(view: &V, rng: &mut TestRng, label: &str) {
    let pres = used_pres(view);
    assert!(!pres.is_empty());
    let tests = [
        NodeTest::AnyNode,
        NodeTest::AnyElement,
        NodeTest::Name(mbxq::QName::local("a")),
    ];
    for _ in 0..3 {
        let ctx = random_context(rng, &pres);
        for axis in ALL_AXES {
            for test in &tests {
                // Lifted with one iteration per context node ≡ per-node.
                let lifted = step_lifted(view, &ContextSeq::lift(&ctx), axis, test);
                for (i, &c) in ctx.iter().enumerate() {
                    let per_node = step(view, &[c], axis, test);
                    assert_eq!(
                        lifted.pres_of_iter(i as u32),
                        per_node.as_slice(),
                        "{label}: axis {axis:?} iteration {i} diverged"
                    );
                }
                // Single iteration ≡ flat set-at-a-time step.
                let single = step_lifted(view, &ContextSeq::single_iter(ctx.clone()), axis, test);
                let flat = step(view, &ctx, axis, test);
                assert_eq!(
                    single.pres, flat,
                    "{label}: axis {axis:?} single-iteration diverged from flat step"
                );
                assert!(single.iters.iter().all(|&i| i == 0));
            }
        }
    }
}

#[test]
fn lifted_step_matches_per_node_step_on_random_trees() {
    for case in 0..16u64 {
        let mut rng = TestRng::new(0x11F7ED + case);
        let tree = rand_tree(&mut rng, 3, 4);
        let ro = ReadOnlyDoc::from_tree(&tree).expect("shred ro");
        check_view(&ro, &mut rng, "readonly");
        for cfg in [
            PageConfig::new(4, 50).unwrap(),
            PageConfig::new(16, 75).unwrap(),
        ] {
            let up = PagedDoc::from_tree(&tree, cfg).expect("shred paged");
            check_view(&up, &mut rng, "paged");
        }
    }
}

/// The same equivalence after updates punch holes into the paged view.
#[test]
fn lifted_step_matches_per_node_after_deletes() {
    for case in 0..12u64 {
        let mut rng = TestRng::new(0x11F7ED00 + case);
        let tree = rand_tree(&mut rng, 3, 4);
        let mut up = PagedDoc::from_tree(&tree, PageConfig::new(8, 75).unwrap()).expect("shred");
        let pres = used_pres(&up);
        if pres.len() > 1 {
            let victim_pre = pres[1 + rng.below(pres.len() - 1)];
            let victim = up.pre_to_node(victim_pre).unwrap();
            up.delete(victim).expect("delete succeeds");
        }
        check_view(&up, &mut rng, "paged-after-delete");
    }
}
