//! Plan-pipeline oracle: the compiled/rewritten/cost-chosen execution
//! must be observably identical to the reference interpreter.
//!
//! Seeded property test over random trees and a generated query
//! corpus. Every query runs through both arms on three storage schemas
//! (naive, read-only, paged) and under all three axis-strategy choices
//! (cost-chosen, forced staircase, forced index); multi-predicate
//! queries additionally cross every forced multi-probe strategy
//! (scan / best-probe / intersect / cost) with every replan mode over
//! a shared feedback store. The planned result must equal the
//! interpreter's on the same view — same node sets, same values, or
//! both failing. Afterwards, random update batches hit the paged view
//! and the comparison repeats, with the element-name index and the
//! per-index degree statistics cross-checked against a full scan (both
//! must stay consistent under inserts, deletes and renames).

mod common;

use common::{rand_name, rand_text, rand_tree, TestRng};
use mbxq::{
    InsertPosition, Kind, NaiveDoc, Node, PageConfig, PagedDoc, QName, ReadOnlyDoc, TreeView,
};
use mbxq_xpath::{
    AxisChoice, Bindings, EvalOptions, MultiChoice, PlanFeedback, ReplanMode, Value, ValueChoice,
    XPath,
};

/// NaN-tolerant value equality (`NaN != NaN` under `PartialEq`, but the
/// oracle wants "both NaN" to count as agreement).
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x == y || (x.is_nan() && y.is_nan()),
        _ => a == b,
    }
}

/// One comparison: planned (under every strategy-override combination)
/// vs interpreted, same view.
fn check_query<V: TreeView>(view: &V, xp: &XPath, bindings: &Bindings, seed_info: &str) {
    let root: Vec<u64> = view.root_pre().into_iter().collect();
    let want = xp.eval_interpreted_with(view, &root, bindings);
    for (axis, value) in [
        (AxisChoice::Auto, ValueChoice::Auto),
        (AxisChoice::Auto, ValueChoice::ForceScan),
        (AxisChoice::Auto, ValueChoice::ForceProbe),
        (AxisChoice::ForceStaircase, ValueChoice::ForceScan),
        (AxisChoice::ForceIndex, ValueChoice::ForceProbe),
    ] {
        let opts = EvalOptions::new()
            .bindings(bindings)
            .axis(axis)
            .value(value);
        let got = xp.eval_opts(view, &root, &opts);
        match (&want, &got) {
            (Ok(w), Ok(g)) => assert!(
                values_equal(w, g),
                "{seed_info}: '{}' under {axis:?}/{value:?}\n  interpreter: {w:?}\n  \
                 planned:     {g:?}\nlogical plan:\n{}physical plan:\n{}",
                xp.source(),
                xp.explain(),
                xp.explain_physical()
            ),
            (Err(_), Err(_)) => {}
            (w, g) => panic!(
                "{seed_info}: '{}' under {axis:?}/{value:?} diverged in failure: \
                 interpreter {w:?} vs planned {g:?}",
                xp.source()
            ),
        }
    }
    // Multi-predicate steps: cross every forced strategy with every
    // replan mode, sharing one feedback store so the Skip/Force modes
    // really reuse (or re-derive) what an earlier Auto run recorded.
    if !xp.explain_physical().contains("multi-probe") {
        return;
    }
    let feedback = PlanFeedback::new();
    for (multi, replan) in [
        (MultiChoice::ForceScan, ReplanMode::Default),
        (MultiChoice::ForceBestProbe, ReplanMode::Default),
        (MultiChoice::ForceIntersect, ReplanMode::Default),
        (MultiChoice::Auto, ReplanMode::Default),
        (MultiChoice::Auto, ReplanMode::Skip),
        (MultiChoice::Auto, ReplanMode::Force),
    ] {
        let opts = EvalOptions::new()
            .bindings(bindings)
            .multi(multi)
            .replan(replan)
            .feedback(&feedback);
        let got = xp.eval_opts(view, &root, &opts);
        match (&want, &got) {
            (Ok(w), Ok(g)) => assert!(
                values_equal(w, g),
                "{seed_info}: '{}' under {multi:?}/{replan:?}\n  interpreter: {w:?}\n  \
                 planned:     {g:?}\nphysical plan:\n{}",
                xp.source(),
                xp.explain_physical()
            ),
            (Err(_), Err(_)) => {}
            (w, g) => panic!(
                "{seed_info}: '{}' under {multi:?}/{replan:?} diverged in failure: \
                 interpreter {w:?} vs planned {g:?}",
                xp.source()
            ),
        }
    }
}

/// The generated query corpus: paths over the small shared name
/// alphabet with axes, predicates, aggregates and variables.
fn query_corpus(rng: &mut TestRng) -> Vec<String> {
    let mut queries = vec![
        // Fixed shapes covering every rewrite rule.
        "//item".to_string(),
        "//item[1]".to_string(),
        "//item[last()]".to_string(),
        "(//item)[1]".to_string(),
        "(//item)[last()]".to_string(),
        "//a[b]".to_string(),
        "//a[not(b)]".to_string(),
        "//a[count(b) > 0]".to_string(),
        "//a[count(b) = 0]".to_string(),
        "//a[count(.//item) >= 1]/name".to_string(),
        "count(//a/b)".to_string(),
        "sum(//item)".to_string(),
        "//a[@x = \"t\"]".to_string(),
        "//a[b or c]".to_string(),
        "//a[b and c][2]".to_string(),
        "//a/b | //c".to_string(),
        "/a//b[position() = 1]".to_string(),
        "//b/ancestor::a".to_string(),
        "//b/following-sibling::*[1]".to_string(),
        "//a[.//b]".to_string(),
        "//item/@x".to_string(),
        "string(//a[1])".to_string(),
        "//a[name(..) = \"a\"]".to_string(),
        "//a[$v]".to_string(),
        "//a[@x = $want]".to_string(),
        "$set/b".to_string(),
        // Value predicates — the content-index lowering corpus.
        "//a[@x = \"t\"]/b".to_string(),
        "//item[. = \"t\"]".to_string(),
        "//a[. = \"x < y\"]".to_string(),
        "//a[b = \"t\"]".to_string(),
        "//a[name = \"uni—code\"]".to_string(),
        "//item[. = 7]".to_string(),
        "//item[. > 3]".to_string(),
        "//a[b >= 5]".to_string(),
        "//a[b < 10]/c".to_string(),
        "//a[7 <= b]".to_string(),
        "//*[@x = \"t\"]".to_string(),
        "//a[@x > 2]".to_string(),
        "//a[@x = \"\"]".to_string(),
        "//item[. = \"\"]".to_string(),
        "count(//a[b = \"t\"])".to_string(),
        "//a[@x = \"t\"][b]".to_string(),
        "//a[normalize-space() = \"t\"]".to_string(),
        "//a[string-length() = 1]".to_string(),
        // Multi-predicate steps — the join-order-search corpus: mixed
        // exact + numeric-range, attr + child-text, 2–3 predicates.
        "//a[@x = \"t\"][b = \"t\"]".to_string(),
        "//a[b = \"t\"][c = \"t\"]".to_string(),
        "//a[b > 2][b < 8]".to_string(),
        "//item[. > 3][. < 9]".to_string(),
        "//a[@x = \"t\"][b > 2]".to_string(),
        "//a[@x > 2][@x < 9]".to_string(),
        "//a[@x = \"t\"][@y = \"t\"]".to_string(),
        "//a[b = \"t\"][c > 1][@x = \"t\"]".to_string(),
        "//a[b = 5][c = \"t\"]".to_string(),
        "//a[name = \"t\"][b < 10]".to_string(),
        "//item[. = 7][@x = \"t\"]".to_string(),
        "//a[@x = \"\"][b = \"t\"]".to_string(),
    ];
    // Random simple paths: 1-3 steps, optional predicate.
    for _ in 0..6 {
        let mut q = String::from("//");
        q.push_str(&rand_name(rng));
        if rng.chance(1, 2) {
            q.push('[');
            match rng.below(4) {
                0 => q.push_str(&rand_name(rng)),
                1 => q.push('1'),
                2 => {
                    q.push('@');
                    q.push_str(&rand_name(rng));
                }
                _ => q.push_str("last()"),
            }
            q.push(']');
        }
        if rng.chance(1, 2) {
            q.push('/');
            q.push_str(&rand_name(rng));
        }
        queries.push(q);
    }
    queries
}

fn paged_from_tree(tree: &Node, cfg: PageConfig) -> PagedDoc {
    PagedDoc::from_tree(tree, cfg).unwrap()
}

#[test]
fn planned_execution_matches_interpreter_across_schemas() {
    for seed in 0..25u64 {
        let mut rng = TestRng::new(0x91a6 ^ seed);
        let tree = rand_tree(&mut rng, 4, 4);
        let ro = ReadOnlyDoc::from_tree(&tree).unwrap();
        let nv = NaiveDoc::from_tree(&tree).unwrap();
        let cfg = *rng.pick(&common::page_configs());
        let up = paged_from_tree(&tree, cfg);

        let mut bindings = Bindings::new();
        bindings.set("v", Value::Str("t".into()));
        bindings.set("want", Value::Str("x < y".into()));
        bindings.set(
            "set",
            Value::Nodes(ro.root_pre().into_iter().collect::<Vec<u64>>()),
        );

        for q in query_corpus(&mut rng) {
            let xp = match XPath::parse(&q) {
                Ok(xp) => xp,
                Err(e) => panic!("corpus query '{q}' failed to parse: {e}"),
            };
            check_query(&ro, &xp, &bindings, &format!("seed {seed} (ro)"));
            check_query(&nv, &xp, &bindings, &format!("seed {seed} (naive)"));
            // Paged: `$set` holds *ro* pres, which differ from paged
            // pres — use a paged-local binding instead.
            let mut up_bindings = bindings.clone();
            up_bindings.set(
                "set",
                Value::Nodes(up.root_pre().into_iter().collect::<Vec<u64>>()),
            );
            check_query(&up, &xp, &up_bindings, &format!("seed {seed} (paged)"));
        }
    }
}

/// The paged comparison repeated across random update batches, with the
/// name index verified against a scan after every batch.
#[test]
fn planned_execution_survives_update_batches() {
    for seed in 0..12u64 {
        let mut rng = TestRng::new(0xba7c4 ^ (seed << 8));
        let tree = rand_tree(&mut rng, 4, 4);
        let cfg = *rng.pick(&common::page_configs());
        let mut up = paged_from_tree(&tree, cfg);
        let bindings = Bindings::new();
        let queries: Vec<XPath> = [
            "//item",
            "//a",
            "//a/b",
            "//item[1]",
            "//a[b]",
            "count(//b)",
            "//name | //x",
            "//a[@x]",
            // Value predicates must stay index ≡ scan across updates.
            "//a[@x = \"t\"]",
            "//a[@x = \"fresh\"]",
            "//item[. = \"t\"]",
            "//a[b = \"t\"]",
            "//item[. > 3]",
            "//a[@x = 7]",
            // Multi-predicate steps: the intersection and its degree
            // statistics must stay consistent under COW deltas
            // (`check_paged` cross-checks the stats after each batch).
            "//a[@x = \"t\"][b = \"t\"]",
            "//a[b > 2][b < 8]",
            "//a[@x = 7][b = \"t\"]",
            "//item[. > 3][. < 9]",
            "//a[@x = \"t\"][b > 2][c = \"t\"]",
        ]
        .iter()
        .map(|q| XPath::parse(q).unwrap())
        .collect();

        for batch in 0..6 {
            // Random batch of structural + name + value updates.
            for _ in 0..3 {
                let used: Vec<u64> = {
                    let mut v = Vec::new();
                    let mut p = 0;
                    while let Some(q) = up.next_used_at_or_after(p) {
                        v.push(q);
                        p = q + 1;
                    }
                    v
                };
                let target_pre = *rng.pick(&used);
                let node = up.pre_to_node(target_pre).unwrap();
                match rng.below(6) {
                    0 => {
                        let sub = rand_tree(&mut rng, 2, 3);
                        let _ = up.insert(InsertPosition::LastChildOf(node), &sub);
                    }
                    1 => {
                        // Deleting the root is rejected; that's fine.
                        let _ = up.delete(node);
                    }
                    2 => {
                        let _ = up.rename(node, &QName::local(rand_name(&mut rng)));
                    }
                    3 => {
                        let value = if rng.chance(1, 2) {
                            rand_text(&mut rng)
                        } else {
                            format!("{}", rng.below(10))
                        };
                        let _ = up.set_attribute(node, &QName::local(rand_name(&mut rng)), &value);
                    }
                    _ => {
                        // Text edit on a random text node (numeric half
                        // the time, to exercise the sorted arm).
                        let texts: Vec<u64> = used
                            .iter()
                            .copied()
                            .filter(|&p| up.kind(p) == Some(Kind::Text))
                            .collect();
                        if !texts.is_empty() {
                            let t = *rng.pick(&texts);
                            let tnode = up.pre_to_node(t).unwrap();
                            let value = if rng.chance(1, 2) {
                                rand_text(&mut rng)
                            } else {
                                format!("{}", rng.below(10))
                            };
                            let _ = up.update_value(tnode, &value);
                        }
                    }
                }
            }
            // The invariant checker includes the index ≡ scan check.
            mbxq_storage::invariants::check_paged(&up)
                .unwrap_or_else(|e| panic!("seed {seed} batch {batch}: {e}"));
            for xp in &queries {
                check_query(&up, xp, &bindings, &format!("seed {seed} batch {batch}"));
            }
        }
    }
}
