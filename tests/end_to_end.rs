//! Cross-crate end-to-end tests: the full pipeline from XMark generation
//! through both schemas, queries, transactional updates, WAL recovery
//! and serialization.

mod common;

use mbxq::{
    Database, InsertPosition, PageConfig, PagedDoc, StorageMode, Store, StoreConfig, TreeView, Wal,
    XPath,
};
use mbxq_txn::recover::recover;
use mbxq_xmark::{generate, run_query, XMarkConfig, QUERY_COUNT};
use mbxq_xml::Document;

#[test]
fn xmark_pipeline_agrees_across_schemas() {
    let xml = generate(&XMarkConfig::scaled(0.002, 99));
    let ro = mbxq::ReadOnlyDoc::parse_str(&xml).unwrap();
    let up = PagedDoc::parse_str(&xml, PageConfig::new(256, 80).unwrap()).unwrap();
    for q in 1..=QUERY_COUNT {
        assert_eq!(
            run_query(&ro, q).unwrap(),
            run_query(&up, q).unwrap(),
            "Q{q} diverged"
        );
    }
}

#[test]
fn queries_survive_update_storms() {
    // Queries on the paged schema must keep matching the read-only
    // shredding of the *serialized current state*, after many updates.
    let xml = generate(&XMarkConfig::tiny(5));
    let db = {
        let mut db = Database::new();
        db.load("x", &xml, StorageMode::default_updatable())
            .unwrap();
        db
    };
    for i in 0..10 {
        db.update(
            "x",
            &format!(
                r#"<xupdate:append select="/site/people">
                     <xupdate:element name="person">
                       <xupdate:attribute name="id">storm{i}</xupdate:attribute>
                       <name>Storm {i}</name>
                     </xupdate:element>
                   </xupdate:append>"#
            ),
        )
        .unwrap();
        if i % 3 == 0 {
            db.update("x", r#"<xupdate:remove select="//person[1]/watches"/>"#)
                .unwrap();
        }
    }
    let current = db.serialize("x").unwrap();
    let ro = mbxq::ReadOnlyDoc::parse_str(&current).unwrap();
    let store = db.store("x").unwrap();
    let up = store.snapshot();
    for q in 1..=QUERY_COUNT {
        assert_eq!(
            run_query(&ro, q).unwrap(),
            run_query(up.as_ref(), q).unwrap(),
            "Q{q} diverged after update storm"
        );
    }
    mbxq_storage::invariants::check_paged(up.as_ref()).unwrap();
}

#[test]
fn recovery_equals_live_state() {
    // Drive a store through a mixed workload with a file-backed WAL,
    // then prove recover(checkpoint, wal) == live document.
    let checkpoint = generate(&XMarkConfig::tiny(13));
    let cfg = PageConfig::new(64, 80).unwrap();
    let dir = std::env::temp_dir().join(format!("mbxq-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("e2e.wal");
    let _ = std::fs::remove_file(&wal_path);

    let store = Store::open(
        PagedDoc::parse_str(&checkpoint, cfg).unwrap(),
        Wal::file(&wal_path).unwrap(),
        StoreConfig::default(),
    );
    let person_path = XPath::parse("/site/people/person[1]").unwrap();
    for i in 0..6 {
        let mut t = store.begin();
        let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
        let frag =
            Document::parse_fragment(&format!("<person id=\"rec{i}\"><name>R{i}</name></person>"))
                .unwrap();
        t.insert(InsertPosition::LastChildOf(people[0]), &frag)
            .unwrap();
        if i == 3 {
            let victim = t.select(&person_path).unwrap()[0];
            t.delete(victim).unwrap();
        }
        t.commit().unwrap();
    }
    let live = mbxq_storage::serialize::to_xml(store.snapshot().as_ref()).unwrap();

    let wal_bytes = std::fs::read(&wal_path).unwrap();
    let recovered = recover(&checkpoint, cfg, &wal_bytes).unwrap();
    assert_eq!(mbxq_storage::serialize::to_xml(&recovered).unwrap(), live);
    mbxq_storage::invariants::check_paged(&recovered).unwrap();
    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn concurrent_transactions_with_threads() {
    // Disjoint-subtree writers under the delta scheme commit in parallel
    // (no root serialization); final state must account exactly.
    let mut xml = String::from("<site><regions>");
    for w in 0..4 {
        xml.push_str(&format!("<region{w}>"));
        for i in 0..400 {
            xml.push_str(&format!("<item id=\"c{w}i{i}\"/>"));
        }
        xml.push_str(&format!("</region{w}>"));
    }
    xml.push_str("</regions></site>");
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(256, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig::default(),
    );
    let baseline = store.snapshot().used_count();
    std::thread::scope(|s| {
        for w in 0..4 {
            let store = &store;
            s.spawn(move || {
                let path = XPath::parse(&format!("/site/regions/region{w}")).unwrap();
                let frag = Document::parse_fragment("<item/>").unwrap();
                for _ in 0..25 {
                    let mut t = store.begin();
                    let target = t.select(&path).unwrap()[0];
                    t.insert(InsertPosition::LastChildOf(target), &frag)
                        .unwrap();
                    t.commit().unwrap();
                }
            });
        }
    });
    let final_doc = store.snapshot();
    assert_eq!(final_doc.used_count(), baseline + 100);
    assert_eq!(
        mbxq::TreeView::size(final_doc.as_ref(), 0),
        baseline + 100 - 1
    );
    mbxq_storage::invariants::check_paged(final_doc.as_ref()).unwrap();
}

#[test]
fn facade_round_trip_with_xmark() {
    let xml = generate(&XMarkConfig::tiny(21));
    let mut db = Database::new();
    db.load("ro", &xml, StorageMode::ReadOnly).unwrap();
    db.load("up", &xml, StorageMode::default_updatable())
        .unwrap();
    for path in [
        "count(//item)",
        "count(/site/people/person)",
        "/site/people/person[1]/name",
        "count(//bidder)",
    ] {
        assert_eq!(
            db.query("ro", path).unwrap(),
            db.query("up", path).unwrap(),
            "facade query {path} diverged"
        );
    }
    // Serializations parse to identical documents.
    let a = Document::parse(&db.serialize("ro").unwrap()).unwrap();
    let b = Document::parse(&db.serialize("up").unwrap()).unwrap();
    assert_eq!(a, b);
}
