//! Morsel-parallel oracle: parallel execution must be observably
//! identical to sequential execution, which must match the reference
//! interpreter — same node sets, same values, same order.
//!
//! Seeded property test over random trees, the generated query corpus
//! and all three storage schemas (naive, read-only, paged). Every query
//! runs three ways on the same view:
//!
//! * the reference interpreter (no plans, no parallelism);
//! * the planned executor forced sequential;
//! * the planned executor forced parallel on a shared worker pool with
//!   `morsel_rows(1)` — every context row becomes its own morsel, so
//!   the merge-in-morsel-order path is exercised maximally and any
//!   ordering bug in the split/merge shows up even on tiny documents.
//!
//! Afterwards random update batches (inserts, deletes, renames,
//! attribute writes, text edits) hit the paged view and the three-way
//! comparison repeats — parallel scans must stay oracle-identical on
//! COW-patched pages, not just on freshly shredded documents.

mod common;

use common::{rand_name, rand_text, rand_tree, TestRng};
use mbxq::{InsertPosition, Kind, NaiveDoc, PagedDoc, QName, ReadOnlyDoc, TreeView};
use mbxq_axes::{in_range_mask, scan_range_arm, KernelArm, NodeTest};
use mbxq_storage::NumRange;
use mbxq_xpath::{Bindings, EvalOptions, KernelChoice, ParChoice, Value, WorkerPool, XPath};

/// NaN-tolerant value equality (`NaN != NaN` under `PartialEq`, but the
/// oracle wants "both NaN" to count as agreement).
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x == y || (x.is_nan() && y.is_nan()),
        _ => a == b,
    }
}

/// One comparison: interpreter vs forced-sequential vs forced-parallel
/// (single-row morsels on `pool`), same view.
fn check_query<V: TreeView>(
    view: &V,
    xp: &XPath,
    bindings: &Bindings,
    pool: &WorkerPool,
    seed_info: &str,
) {
    let root: Vec<u64> = view.root_pre().into_iter().collect();
    let want = xp.eval_interpreted_with(view, &root, bindings);
    let seq = xp.eval_opts(
        view,
        &root,
        &EvalOptions::new()
            .bindings(bindings)
            .par(ParChoice::ForceSequential),
    );
    let par = xp.eval_opts(
        view,
        &root,
        &EvalOptions::new()
            .bindings(bindings)
            .pool(pool)
            .par(ParChoice::ForceParallel)
            .morsel_rows(1),
    );
    for (arm, got) in [("sequential", &seq), ("parallel", &par)] {
        match (&want, got) {
            (Ok(w), Ok(g)) => assert!(
                values_equal(w, g),
                "{seed_info}: '{}' {arm} arm\n  interpreter: {w:?}\n  planned:     {g:?}",
                xp.source()
            ),
            (Err(_), Err(_)) => {}
            (w, g) => panic!(
                "{seed_info}: '{}' {arm} arm diverged in failure: \
                 interpreter {w:?} vs planned {g:?}",
                xp.source()
            ),
        }
    }
    // The two planned arms must agree bit-for-bit, including errors.
    match (&seq, &par) {
        (Ok(s), Ok(p)) => assert!(
            values_equal(s, p),
            "{seed_info}: '{}' sequential vs parallel\n  seq: {s:?}\n  par: {p:?}",
            xp.source()
        ),
        (Err(_), Err(_)) => {}
        (s, p) => panic!(
            "{seed_info}: '{}' seq/par diverged in failure: {s:?} vs {p:?}",
            xp.source()
        ),
    }
    // Kernel equivalence: both forced chunk-kernel arms must reproduce
    // the auto-dispatched sequential result bit-for-bit (with the
    // `simd` feature off, ForceSimd exercises the unrolled twin).
    for (arm, kernel) in [
        ("scalar-kernel", KernelChoice::ForceScalar),
        ("simd-kernel", KernelChoice::ForceSimd),
    ] {
        let got = xp.eval_opts(
            view,
            &root,
            &EvalOptions::new()
                .bindings(bindings)
                .par(ParChoice::ForceSequential)
                .kernel(kernel),
        );
        match (&seq, &got) {
            (Ok(s), Ok(g)) => assert!(
                values_equal(s, g),
                "{seed_info}: '{}' {arm} arm\n  auto:   {s:?}\n  forced: {g:?}",
                xp.source()
            ),
            (Err(_), Err(_)) => {}
            (s, g) => panic!(
                "{seed_info}: '{}' {arm} arm diverged in failure: {s:?} vs {g:?}",
                xp.source()
            ),
        }
    }
}

/// The oracle's query corpus: axis steps that hit every parallel hook
/// site (staircase scans, descendant region splits, semijoins, value
/// probes) plus shapes that must *not* parallelize (positional
/// predicates, aggregates over tiny contexts).
fn query_corpus(rng: &mut TestRng) -> Vec<String> {
    let mut queries = vec![
        "//item".to_string(),
        "//a".to_string(),
        "//a/b".to_string(),
        "//a//b".to_string(),
        "/*//item".to_string(),
        "//a/b/c".to_string(),
        "//item[1]".to_string(),
        "//item[last()]".to_string(),
        "//a[b]".to_string(),
        "//a[not(b)]".to_string(),
        "//a[.//b]".to_string(),
        "//b/ancestor::a".to_string(),
        "//b/following-sibling::*[1]".to_string(),
        "count(//a/b)".to_string(),
        "sum(//item)".to_string(),
        "//a[@x = \"t\"]".to_string(),
        "//a[b = \"t\"]".to_string(),
        "//item[. > 3]".to_string(),
        "//a[@x > 2]".to_string(),
        "//a/b | //c".to_string(),
        "string(//a[1])".to_string(),
    ];
    for _ in 0..5 {
        let mut q = String::from("//");
        q.push_str(&rand_name(rng));
        if rng.chance(1, 2) {
            q.push('/');
            q.push_str(&rand_name(rng));
        } else if rng.chance(1, 2) {
            q.push_str("//");
            q.push_str(&rand_name(rng));
        }
        queries.push(q);
    }
    queries
}

#[test]
fn parallel_execution_matches_interpreter_across_schemas() {
    let pool = WorkerPool::new(3);
    for seed in 0..20u64 {
        let mut rng = TestRng::new(0x9a41 ^ seed);
        let tree = rand_tree(&mut rng, 4, 4);
        let ro = ReadOnlyDoc::from_tree(&tree).unwrap();
        let nv = NaiveDoc::from_tree(&tree).unwrap();
        let cfg = *rng.pick(&common::page_configs());
        let up = PagedDoc::from_tree(&tree, cfg).unwrap();
        let bindings = Bindings::new();

        for q in query_corpus(&mut rng) {
            let xp = match XPath::parse(&q) {
                Ok(xp) => xp,
                Err(e) => panic!("corpus query '{q}' failed to parse: {e}"),
            };
            check_query(&ro, &xp, &bindings, &pool, &format!("seed {seed} (ro)"));
            check_query(&nv, &xp, &bindings, &pool, &format!("seed {seed} (naive)"));
            check_query(&up, &xp, &bindings, &pool, &format!("seed {seed} (paged)"));
        }
    }
}

/// The paged three-way comparison repeated across random update
/// batches: parallel scans over COW-patched pages must stay identical
/// to the interpreter as the page set diverges from the shredded
/// original.
#[test]
fn parallel_execution_survives_update_batches() {
    let pool = WorkerPool::new(3);
    for seed in 0..10u64 {
        let mut rng = TestRng::new(0x75a0c ^ (seed << 8));
        let tree = rand_tree(&mut rng, 4, 4);
        let cfg = *rng.pick(&common::page_configs());
        let mut up = PagedDoc::from_tree(&tree, cfg).unwrap();
        let bindings = Bindings::new();
        let queries: Vec<XPath> = [
            "//item",
            "//a",
            "//a//b",
            "//a/b",
            "//item[1]",
            "//a[b]",
            "count(//b)",
            "//a[@x = \"t\"]",
            "//item[. > 3]",
            "//b/ancestor::a",
        ]
        .iter()
        .map(|q| XPath::parse(q).unwrap())
        .collect();

        for batch in 0..5 {
            for _ in 0..3 {
                let used: Vec<u64> = {
                    let mut v = Vec::new();
                    let mut p = 0;
                    while let Some(q) = up.next_used_at_or_after(p) {
                        v.push(q);
                        p = q + 1;
                    }
                    v
                };
                let target_pre = *rng.pick(&used);
                let node = up.pre_to_node(target_pre).unwrap();
                match rng.below(6) {
                    0 => {
                        let sub = rand_tree(&mut rng, 2, 3);
                        let _ = up.insert(InsertPosition::LastChildOf(node), &sub);
                    }
                    1 => {
                        let _ = up.delete(node);
                    }
                    2 => {
                        let _ = up.rename(node, &QName::local(rand_name(&mut rng)));
                    }
                    3 => {
                        let value = if rng.chance(1, 2) {
                            rand_text(&mut rng)
                        } else {
                            format!("{}", rng.below(10))
                        };
                        let _ = up.set_attribute(node, &QName::local(rand_name(&mut rng)), &value);
                    }
                    _ => {
                        let texts: Vec<u64> = used
                            .iter()
                            .copied()
                            .filter(|&p| up.kind(p) == Some(Kind::Text))
                            .collect();
                        if !texts.is_empty() {
                            let t = *rng.pick(&texts);
                            let tnode = up.pre_to_node(t).unwrap();
                            let value = if rng.chance(1, 2) {
                                rand_text(&mut rng)
                            } else {
                                format!("{}", rng.below(10))
                            };
                            let _ = up.update_value(tnode, &value);
                        }
                    }
                }
            }
            mbxq_storage::invariants::check_paged(&up)
                .unwrap_or_else(|e| panic!("seed {seed} batch {batch}: {e}"));
            for xp in &queries {
                check_query(
                    &up,
                    xp,
                    &bindings,
                    &pool,
                    &format!("seed {seed} batch {batch}"),
                );
            }
        }
    }
}

/// Per-pre reference for the chunk scan kernels: walk used slots one at
/// a time and apply the node test — no chunks, no vectorization.
fn scan_reference(view: &dyn TreeView, lo: u64, hi: u64, test: &NodeTest) -> Vec<u64> {
    let mut out = Vec::new();
    let mut p = lo;
    while let Some(q) = view.next_used_at_or_after(p) {
        if q >= hi {
            break;
        }
        if test.matches(view, q) {
            out.push(q);
        }
        p = q + 1;
    }
    out
}

/// The chunk kernels (scalar and vector arm) must agree with the
/// per-node reference on arbitrary `[lo, hi)` slices of the pre plane —
/// misaligned starts, partial tails shorter than one vector lane, empty
/// slices, and slices crossing page boundaries and deletion holes all
/// occur across the seeds.
#[test]
fn chunk_kernels_agree_on_random_slice_offsets() {
    for seed in 0..25u64 {
        let mut rng = TestRng::new(0xc4a2 ^ (seed << 5));
        let tree = rand_tree(&mut rng, 4, 5);
        let ro = ReadOnlyDoc::from_tree(&tree).unwrap();
        let cfg = *rng.pick(&common::page_configs());
        let mut up = PagedDoc::from_tree(&tree, cfg).unwrap();
        // Punch holes in the paged pre plane so slices cross unused
        // slots, not just page boundaries.
        for _ in 0..3 {
            let used: Vec<u64> = {
                let mut v = Vec::new();
                let mut p = 1; // keep the root
                while let Some(q) = up.next_used_at_or_after(p) {
                    v.push(q);
                    p = q + 1;
                }
                v
            };
            if used.is_empty() {
                break;
            }
            let target = *rng.pick(&used);
            if let Ok(node) = up.pre_to_node(target) {
                let _ = up.delete(node);
            }
        }
        let tests = [
            NodeTest::AnyNode,
            NodeTest::AnyElement,
            NodeTest::Text,
            NodeTest::Name(QName::local("a")),
            NodeTest::Name(QName::local(rand_name(&mut rng))),
        ];
        let views: [&dyn TreeView; 2] = [&ro, &up];
        for view in views {
            let end = view.pre_end();
            for test in &tests {
                for _ in 0..8 {
                    let lo = rng.below(end as usize + 2) as u64;
                    let hi = lo.max((lo + rng.below(end as usize + 2) as u64).min(end));
                    let want = scan_reference(view, lo, hi, test);
                    for arm in [KernelArm::Scalar, KernelArm::Simd] {
                        let mut got = Vec::new();
                        scan_range_arm(view, lo, hi, test, arm, &mut got);
                        assert_eq!(
                            got, want,
                            "seed {seed}: [{lo}, {hi}) {test:?} on the {arm:?} arm"
                        );
                    }
                }
            }
        }
    }
}

/// Guard for the feature chain: when the workspace is tested with
/// `--features simd` on x86_64, the flag must actually reach the axes
/// crate and light up the vector arm — a broken forward in any
/// intermediate `Cargo.toml` would silently demote every "simd" run of
/// this suite to the scalar twin.
#[test]
fn umbrella_simd_feature_reaches_the_kernels() {
    if cfg!(all(feature = "simd", target_arch = "x86_64")) {
        assert!(
            mbxq_axes::simd_compiled(),
            "umbrella simd feature did not propagate to mbxq-axes"
        );
        assert_eq!(mbxq_axes::simd_width(), 16);
    } else {
        assert_eq!(mbxq_axes::simd_width(), 1);
    }
}

/// The numeric range-mask kernels must agree with [`NumRange::contains`]
/// element-wise on random value columns — NaN (unparsable strings),
/// infinities, exact bounds, inverted ranges, and odd lengths that leave
/// a partial vector tail.
#[test]
fn range_mask_kernels_agree_on_random_values() {
    let bounds = [f64::NEG_INFINITY, -5.0, 0.0, 1.25, 7.0, f64::INFINITY];
    for seed in 0..40u64 {
        let mut rng = TestRng::new(0x3f91 ^ (seed * 131));
        let n = rng.below(70);
        let vals: Vec<f64> = (0..n)
            .map(|_| match rng.below(8) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                _ => rng.below(40) as f64 - 20.0 + rng.below(4) as f64 * 0.25,
            })
            .collect();
        let range = NumRange {
            lo: *rng.pick(&bounds),
            hi: *rng.pick(&bounds),
            lo_incl: rng.chance(1, 2),
            hi_incl: rng.chance(1, 2),
        };
        let want: Vec<bool> = vals.iter().map(|&v| range.contains(v)).collect();
        for arm in [KernelArm::Scalar, KernelArm::Simd] {
            let mut keep = Vec::new();
            in_range_mask(&vals, &range, arm, &mut keep);
            assert_eq!(keep, want, "seed {seed}: {range:?} on the {arm:?} arm");
        }
    }
}
