//! Morsel-parallel oracle: parallel execution must be observably
//! identical to sequential execution, which must match the reference
//! interpreter — same node sets, same values, same order.
//!
//! Seeded property test over random trees, the generated query corpus
//! and all three storage schemas (naive, read-only, paged). Every query
//! runs three ways on the same view:
//!
//! * the reference interpreter (no plans, no parallelism);
//! * the planned executor forced sequential;
//! * the planned executor forced parallel on a shared worker pool with
//!   `morsel_rows(1)` — every context row becomes its own morsel, so
//!   the merge-in-morsel-order path is exercised maximally and any
//!   ordering bug in the split/merge shows up even on tiny documents.
//!
//! Afterwards random update batches (inserts, deletes, renames,
//! attribute writes, text edits) hit the paged view and the three-way
//! comparison repeats — parallel scans must stay oracle-identical on
//! COW-patched pages, not just on freshly shredded documents.

mod common;

use common::{rand_name, rand_text, rand_tree, TestRng};
use mbxq::{InsertPosition, Kind, NaiveDoc, PagedDoc, QName, ReadOnlyDoc, TreeView};
use mbxq_xpath::{Bindings, EvalOptions, ParChoice, Value, WorkerPool, XPath};

/// NaN-tolerant value equality (`NaN != NaN` under `PartialEq`, but the
/// oracle wants "both NaN" to count as agreement).
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x == y || (x.is_nan() && y.is_nan()),
        _ => a == b,
    }
}

/// One comparison: interpreter vs forced-sequential vs forced-parallel
/// (single-row morsels on `pool`), same view.
fn check_query<V: TreeView>(
    view: &V,
    xp: &XPath,
    bindings: &Bindings,
    pool: &WorkerPool,
    seed_info: &str,
) {
    let root: Vec<u64> = view.root_pre().into_iter().collect();
    let want = xp.eval_interpreted_with(view, &root, bindings);
    let seq = xp.eval_opts(
        view,
        &root,
        &EvalOptions::new()
            .bindings(bindings)
            .par(ParChoice::ForceSequential),
    );
    let par = xp.eval_opts(
        view,
        &root,
        &EvalOptions::new()
            .bindings(bindings)
            .pool(pool)
            .par(ParChoice::ForceParallel)
            .morsel_rows(1),
    );
    for (arm, got) in [("sequential", &seq), ("parallel", &par)] {
        match (&want, got) {
            (Ok(w), Ok(g)) => assert!(
                values_equal(w, g),
                "{seed_info}: '{}' {arm} arm\n  interpreter: {w:?}\n  planned:     {g:?}",
                xp.source()
            ),
            (Err(_), Err(_)) => {}
            (w, g) => panic!(
                "{seed_info}: '{}' {arm} arm diverged in failure: \
                 interpreter {w:?} vs planned {g:?}",
                xp.source()
            ),
        }
    }
    // The two planned arms must agree bit-for-bit, including errors.
    match (&seq, &par) {
        (Ok(s), Ok(p)) => assert!(
            values_equal(s, p),
            "{seed_info}: '{}' sequential vs parallel\n  seq: {s:?}\n  par: {p:?}",
            xp.source()
        ),
        (Err(_), Err(_)) => {}
        (s, p) => panic!(
            "{seed_info}: '{}' seq/par diverged in failure: {s:?} vs {p:?}",
            xp.source()
        ),
    }
}

/// The oracle's query corpus: axis steps that hit every parallel hook
/// site (staircase scans, descendant region splits, semijoins, value
/// probes) plus shapes that must *not* parallelize (positional
/// predicates, aggregates over tiny contexts).
fn query_corpus(rng: &mut TestRng) -> Vec<String> {
    let mut queries = vec![
        "//item".to_string(),
        "//a".to_string(),
        "//a/b".to_string(),
        "//a//b".to_string(),
        "/*//item".to_string(),
        "//a/b/c".to_string(),
        "//item[1]".to_string(),
        "//item[last()]".to_string(),
        "//a[b]".to_string(),
        "//a[not(b)]".to_string(),
        "//a[.//b]".to_string(),
        "//b/ancestor::a".to_string(),
        "//b/following-sibling::*[1]".to_string(),
        "count(//a/b)".to_string(),
        "sum(//item)".to_string(),
        "//a[@x = \"t\"]".to_string(),
        "//a[b = \"t\"]".to_string(),
        "//item[. > 3]".to_string(),
        "//a[@x > 2]".to_string(),
        "//a/b | //c".to_string(),
        "string(//a[1])".to_string(),
    ];
    for _ in 0..5 {
        let mut q = String::from("//");
        q.push_str(&rand_name(rng));
        if rng.chance(1, 2) {
            q.push('/');
            q.push_str(&rand_name(rng));
        } else if rng.chance(1, 2) {
            q.push_str("//");
            q.push_str(&rand_name(rng));
        }
        queries.push(q);
    }
    queries
}

#[test]
fn parallel_execution_matches_interpreter_across_schemas() {
    let pool = WorkerPool::new(3);
    for seed in 0..20u64 {
        let mut rng = TestRng::new(0x9a41 ^ seed);
        let tree = rand_tree(&mut rng, 4, 4);
        let ro = ReadOnlyDoc::from_tree(&tree).unwrap();
        let nv = NaiveDoc::from_tree(&tree).unwrap();
        let cfg = *rng.pick(&common::page_configs());
        let up = PagedDoc::from_tree(&tree, cfg).unwrap();
        let bindings = Bindings::new();

        for q in query_corpus(&mut rng) {
            let xp = match XPath::parse(&q) {
                Ok(xp) => xp,
                Err(e) => panic!("corpus query '{q}' failed to parse: {e}"),
            };
            check_query(&ro, &xp, &bindings, &pool, &format!("seed {seed} (ro)"));
            check_query(&nv, &xp, &bindings, &pool, &format!("seed {seed} (naive)"));
            check_query(&up, &xp, &bindings, &pool, &format!("seed {seed} (paged)"));
        }
    }
}

/// The paged three-way comparison repeated across random update
/// batches: parallel scans over COW-patched pages must stay identical
/// to the interpreter as the page set diverges from the shredded
/// original.
#[test]
fn parallel_execution_survives_update_batches() {
    let pool = WorkerPool::new(3);
    for seed in 0..10u64 {
        let mut rng = TestRng::new(0x75a0c ^ (seed << 8));
        let tree = rand_tree(&mut rng, 4, 4);
        let cfg = *rng.pick(&common::page_configs());
        let mut up = PagedDoc::from_tree(&tree, cfg).unwrap();
        let bindings = Bindings::new();
        let queries: Vec<XPath> = [
            "//item",
            "//a",
            "//a//b",
            "//a/b",
            "//item[1]",
            "//a[b]",
            "count(//b)",
            "//a[@x = \"t\"]",
            "//item[. > 3]",
            "//b/ancestor::a",
        ]
        .iter()
        .map(|q| XPath::parse(q).unwrap())
        .collect();

        for batch in 0..5 {
            for _ in 0..3 {
                let used: Vec<u64> = {
                    let mut v = Vec::new();
                    let mut p = 0;
                    while let Some(q) = up.next_used_at_or_after(p) {
                        v.push(q);
                        p = q + 1;
                    }
                    v
                };
                let target_pre = *rng.pick(&used);
                let node = up.pre_to_node(target_pre).unwrap();
                match rng.below(6) {
                    0 => {
                        let sub = rand_tree(&mut rng, 2, 3);
                        let _ = up.insert(InsertPosition::LastChildOf(node), &sub);
                    }
                    1 => {
                        let _ = up.delete(node);
                    }
                    2 => {
                        let _ = up.rename(node, &QName::local(rand_name(&mut rng)));
                    }
                    3 => {
                        let value = if rng.chance(1, 2) {
                            rand_text(&mut rng)
                        } else {
                            format!("{}", rng.below(10))
                        };
                        let _ = up.set_attribute(node, &QName::local(rand_name(&mut rng)), &value);
                    }
                    _ => {
                        let texts: Vec<u64> = used
                            .iter()
                            .copied()
                            .filter(|&p| up.kind(p) == Some(Kind::Text))
                            .collect();
                        if !texts.is_empty() {
                            let t = *rng.pick(&texts);
                            let tnode = up.pre_to_node(t).unwrap();
                            let value = if rng.chance(1, 2) {
                                rand_text(&mut rng)
                            } else {
                                format!("{}", rng.below(10))
                            };
                            let _ = up.update_value(tnode, &value);
                        }
                    }
                }
            }
            mbxq_storage::invariants::check_paged(&up)
                .unwrap_or_else(|e| panic!("seed {seed} batch {batch}: {e}"));
            for xp in &queries {
                check_query(
                    &up,
                    xp,
                    &bindings,
                    &pool,
                    &format!("seed {seed} batch {batch}"),
                );
            }
        }
    }
}
