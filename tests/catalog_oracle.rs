//! Cross-document query oracle for the catalog's fan-out path.
//!
//! **Property:** [`Catalog::query_all`] — shard-local plans fanned out
//! over the shared worker pool, merged in (document, document-order) —
//! is *bit-identical* to querying every shard sequentially and
//! concatenating, whatever the execution interleaving and whatever
//! per-shard maintenance (checkpoint, vacuum) is racing on other
//! shards. The node ids it returns are the stable logical ids, so even
//! a vacuum that relocates tuples between the parallel and the
//! sequential evaluation must not change a single bit of the answer.
//!
//! A second deterministic test pins the per-shard maintenance
//! guarantee: a writer holding page locks on one document makes *that*
//! document's vacuum report Busy, while checkpoints, vacuums and
//! commits on every other document proceed — maintenance never crosses
//! shard boundaries.

use mbxq::{Catalog, CatalogConfig, PageConfig, StoreConfig, TxnError, XPath};
use mbxq_xmark::XMarkConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn config(query_threads: usize) -> CatalogConfig {
    CatalogConfig {
        store: StoreConfig {
            lock_timeout: Duration::from_millis(300),
            validate_on_commit: true,
            query_threads,
            ..StoreConfig::default()
        },
        page: PageConfig::new(64, 75).unwrap(),
    }
}

#[test]
fn query_all_is_bit_identical_to_sequential_under_racing_maintenance() {
    let cat = Catalog::in_memory(config(4));
    // One XMark document partitioned across three shards, plus an
    // unrelated standalone document — both routing shapes at once.
    let xml = mbxq_xmark::generate(&XMarkConfig::tiny(11));
    let parts = cat.create_partitioned("auctions", &xml, 3).unwrap();
    cat.create_doc("side", "<site><extra><keyword>zzz</keyword></extra></site>")
        .unwrap();
    assert_eq!(parts, ["auctions#0", "auctions#1", "auctions#2"]);

    let queries = ["//item", "//person", "//keyword", "//bidder", "/site"];
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Maintenance races on a SUBSET of the shards: the first two
        // parts get checkpointed and vacuumed in a tight loop (Busy is
        // fine — it means a concurrent query pinned nothing, vacuum just
        // found the store momentarily unquiesced; content never changes).
        for name in &parts[..2] {
            let stop = &stop;
            let cat = &cat;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = cat.checkpoint(name);
                    match cat.vacuum(name) {
                        Ok(_) | Err(TxnError::Busy { .. }) => {}
                        Err(e) => panic!("vacuum on {name}: {e}"),
                    }
                }
            });
        }

        for round in 0..40 {
            for q in queries {
                let all = cat.query_all(q).unwrap();
                let names = cat.doc_names();
                assert_eq!(
                    all.iter().map(|m| m.doc.as_str()).collect::<Vec<_>>(),
                    names.iter().map(String::as_str).collect::<Vec<_>>(),
                    "round {round}: {q}: document order must be creation order"
                );
                for m in &all {
                    let seq = cat.query_nodes(&m.doc, q).unwrap();
                    assert_eq!(
                        m.nodes, seq,
                        "round {round}: {q} on {}: fan-out diverged from sequential",
                        m.doc
                    );
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // The partition preserved the whole document: parts' matches
    // concatenated count exactly the original document's matches.
    let whole = {
        let solo = Catalog::in_memory(config(0));
        solo.create_doc("w", &xml).unwrap();
        solo.query_nodes("w", "//item").unwrap().len()
    };
    let split: usize = cat
        .query_collection(&parts, "//item")
        .unwrap()
        .iter()
        .map(|m| m.nodes.len())
        .sum();
    assert_eq!(split, whole, "partitioning lost or invented items");

    // The fan-out ran on the one shared pool and merged its counters.
    assert!(
        cat.pool_stats().spawned,
        "4-thread catalog must spawn its pool"
    );
    let stats = mbxq_xpath::EvalStats::default();
    let all = cat.query_all_stats("//keyword", &stats).unwrap();
    assert_eq!(all.len(), cat.doc_count());
    assert!(
        stats.morsels.get() >= all.len() as u64,
        "merged stats must count at least one morsel per document"
    );
}

#[test]
fn maintenance_on_one_shard_never_stalls_the_others() {
    let cat = Catalog::in_memory(config(0));
    cat.create_doc("a", "<r><x/><x/></r>").unwrap();
    cat.create_doc("b", "<r><y/><y/></r>").unwrap();
    let a = cat.shard("a").unwrap();
    let b = cat.shard("b").unwrap();

    // A writer stages (and locks) on document B and stays open.
    let mut held = b.begin();
    let ys = held.select(&XPath::parse("//y").unwrap()).unwrap();
    let frag = mbxq::XmlDocument::parse_fragment("<held/>").unwrap();
    held.insert(mbxq::InsertPosition::LastChildOf(ys[0]), &frag)
        .unwrap();

    // B's own vacuum correctly reports the in-flight writer...
    assert!(matches!(cat.vacuum("b"), Err(TxnError::Busy { .. })));
    // ...while A's maintenance and A's writers are completely unaffected.
    cat.checkpoint("a").unwrap();
    cat.vacuum("a").unwrap();
    let mut t = a.begin();
    let xs = t.select(&XPath::parse("//x").unwrap()).unwrap();
    t.delete(xs[1]).unwrap();
    t.commit().unwrap();
    assert_eq!(cat.query_nodes("a", "//x").unwrap().len(), 1);

    // Releasing B's writer frees B's maintenance too.
    held.commit().unwrap();
    cat.vacuum("b").unwrap();
    assert_eq!(cat.query_nodes("b", "//held").unwrap().len(), 1);
}

#[test]
fn dropped_docs_vanish_from_query_all_but_held_handles_survive() {
    let cat = Catalog::in_memory(config(2));
    cat.create_doc("keep", "<r><k/></r>").unwrap();
    cat.create_doc("gone", "<r><g/></r>").unwrap();
    let held = cat.shard("gone").unwrap();
    cat.drop_doc("gone").unwrap();

    let all = cat.query_all("//*").unwrap();
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].doc, "keep");
    // The outstanding handle still serves queries and even commits.
    assert_eq!(held.query_nodes("//g").unwrap().len(), 1);
    let mut t = held.begin();
    let gs = t.select(&XPath::parse("//g").unwrap()).unwrap();
    t.delete(gs[0]).unwrap();
    t.commit().unwrap();
    assert_eq!(held.query_nodes("//g").unwrap().len(), 0);
}
