//! Transaction-layer stress: conflicting writers, aborts, timeouts and
//! reader snapshots racing over one document, followed by exact
//! accounting and an invariant check. Uses std's scoped threads to
//! coordinate the phases.

use mbxq::{
    AncestorLockMode, InsertPosition, PageConfig, PagedDoc, Store, StoreConfig, TreeView, Wal,
    XPath,
};
use mbxq_txn::recover::recover;
use mbxq_xml::Document;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn build_xml(sections: usize, per: usize) -> String {
    let mut xml = String::from("<root>");
    for s in 0..sections {
        xml.push_str(&format!("<s{s}>"));
        for i in 0..per {
            xml.push_str(&format!("<p id=\"s{s}p{i}\"/>"));
        }
        xml.push_str(&format!("</s{s}>"));
    }
    xml.push_str("</root>");
    xml
}

#[test]
fn conflicting_writers_all_conflicts_resolve() {
    // All workers target the SAME section: page write locks force full
    // serialization; every transaction must eventually commit or time
    // out cleanly (no deadlock, no corruption).
    let xml = build_xml(1, 100);
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(64, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(1200),
            validate_on_commit: false,
        },
    );
    let committed = AtomicU64::new(0);
    let timed_out = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let store = &store;
            let committed = &committed;
            let timed_out = &timed_out;
            scope.spawn(move || {
                let path = XPath::parse("/root/s0").unwrap();
                let frag = Document::parse_fragment("<p/>").unwrap();
                for _ in 0..5 {
                    let mut t = store.begin();
                    let target = match t.select(&path) {
                        Ok(v) => v[0],
                        Err(_) => {
                            timed_out.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    match t
                        .insert(InsertPosition::LastChildOf(target), &frag)
                        .and_then(|()| t.commit().map(|_| ()))
                    {
                        Ok(()) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            timed_out.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let committed = committed.load(Ordering::Relaxed);
    let doc = store.snapshot();
    assert_eq!(doc.used_count(), 102 + committed);
    mbxq_storage::invariants::check_paged(doc.as_ref()).unwrap();
    // With serialized access and generous timeouts, most should commit.
    assert!(committed > 0, "at least some transactions must commit");
}

#[test]
fn mixed_workload_matches_recovery_under_concurrency() {
    // Disjoint writers + WAL; afterwards, recovery from the WAL must
    // reproduce the exact final document even though commit order was
    // decided by the races.
    let xml = build_xml(4, 120);
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(128, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_secs(10),
            validate_on_commit: false,
        },
    );
    std::thread::scope(|scope| {
        for w in 0..4usize {
            let store = &store;
            scope.spawn(move || {
                let path = XPath::parse(&format!("/root/s{w}")).unwrap();
                for i in 0..15 {
                    let mut t = store.begin();
                    let target = t.select(&path).unwrap()[0];
                    if i % 4 == 3 {
                        // Delete the section's first paragraph.
                        let victim_path = XPath::parse(&format!("/root/s{w}/p[1]")).unwrap();
                        let victims = t.select(&victim_path).unwrap();
                        t.delete(victims[0]).unwrap();
                    } else {
                        let frag =
                            Document::parse_fragment(&format!("<p id=\"w{w}gen{i}\"/>")).unwrap();
                        t.insert(InsertPosition::LastChildOf(target), &frag)
                            .unwrap();
                    }
                    t.commit().unwrap();
                }
            });
        }
    });
    let live = mbxq_storage::serialize::to_xml(store.snapshot().as_ref()).unwrap();
    mbxq_storage::invariants::check_paged(store.snapshot().as_ref()).unwrap();

    let (_, wal) = store.into_parts();
    let recovered = recover(&xml, PageConfig::new(128, 80).unwrap(), &wal.raw().unwrap())
        .expect("recovery succeeds");
    assert_eq!(
        mbxq_storage::serialize::to_xml(&recovered).unwrap(),
        live,
        "recovery must reproduce the concurrent outcome"
    );
}

#[test]
fn aborts_release_locks_for_others() {
    let xml = build_xml(1, 50);
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(64, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(300),
            validate_on_commit: false,
        },
    );
    let path = XPath::parse("/root/s0").unwrap();
    let frag = Document::parse_fragment("<p/>").unwrap();
    for _ in 0..20 {
        // Writer A stages and aborts.
        let mut a = store.begin();
        let ta = a.select(&path).unwrap()[0];
        a.insert(InsertPosition::LastChildOf(ta), &frag).unwrap();
        a.abort();
        // Writer B must proceed immediately.
        let mut b = store.begin();
        let tb = b.select(&path).unwrap()[0];
        b.insert(InsertPosition::LastChildOf(tb), &frag).unwrap();
        b.commit().unwrap();
    }
    assert_eq!(store.snapshot().used_count(), 52 + 20);
}
