//! Transaction-layer stress: conflicting writers, aborts, timeouts and
//! reader snapshots racing over one document, followed by exact
//! accounting and an invariant check. Uses std's scoped threads to
//! coordinate the phases.

mod common;

use common::sectioned_xml;
use mbxq::{
    AncestorLockMode, InsertPosition, PageConfig, PagedDoc, Store, StoreConfig, TreeView, Wal,
    XPath,
};
use mbxq_txn::recover::recover;
use mbxq_xml::Document;
use mbxq_xpath::{EvalOptions, ParChoice};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

#[test]
fn conflicting_writers_all_conflicts_resolve() {
    // All workers target the SAME section: page write locks force full
    // serialization; every transaction must eventually commit or time
    // out cleanly (no deadlock, no corruption).
    let xml = sectioned_xml(1, 100, "");
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(64, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(1200),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    );
    let committed = AtomicU64::new(0);
    let timed_out = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let store = &store;
            let committed = &committed;
            let timed_out = &timed_out;
            scope.spawn(move || {
                let path = XPath::parse("/root/s0").unwrap();
                let frag = Document::parse_fragment("<p/>").unwrap();
                for _ in 0..5 {
                    let mut t = store.begin();
                    let target = match t.select(&path) {
                        Ok(v) => v[0],
                        Err(_) => {
                            timed_out.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    match t
                        .insert(InsertPosition::LastChildOf(target), &frag)
                        .and_then(|()| t.commit().map(|_| ()))
                    {
                        Ok(()) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            timed_out.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let committed = committed.load(Ordering::Relaxed);
    let doc = store.snapshot();
    assert_eq!(doc.used_count(), 102 + committed);
    mbxq_storage::invariants::check_paged(doc.as_ref()).unwrap();
    // With serialized access and generous timeouts, most should commit.
    assert!(committed > 0, "at least some transactions must commit");
}

#[test]
fn mixed_workload_matches_recovery_under_concurrency() {
    // Disjoint writers + WAL; afterwards, recovery from the WAL must
    // reproduce the exact final document even though commit order was
    // decided by the races.
    let xml = sectioned_xml(4, 120, "");
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(128, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_secs(10),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    );
    std::thread::scope(|scope| {
        for w in 0..4usize {
            let store = &store;
            scope.spawn(move || {
                let path = XPath::parse(&format!("/root/s{w}")).unwrap();
                for i in 0..15 {
                    let mut t = store.begin();
                    let target = t.select(&path).unwrap()[0];
                    if i % 4 == 3 {
                        // Delete the section's first paragraph.
                        let victim_path = XPath::parse(&format!("/root/s{w}/p[1]")).unwrap();
                        let victims = t.select(&victim_path).unwrap();
                        t.delete(victims[0]).unwrap();
                    } else {
                        let frag =
                            Document::parse_fragment(&format!("<p id=\"w{w}gen{i}\"/>")).unwrap();
                        t.insert(InsertPosition::LastChildOf(target), &frag)
                            .unwrap();
                    }
                    t.commit().unwrap();
                }
            });
        }
    });
    let live = mbxq_storage::serialize::to_xml(store.snapshot().as_ref()).unwrap();
    mbxq_storage::invariants::check_paged(store.snapshot().as_ref()).unwrap();

    let recovered = recover(
        &xml,
        PageConfig::new(128, 80).unwrap(),
        &store.wal_raw().unwrap(),
    )
    .expect("recovery succeeds");
    assert_eq!(
        mbxq_storage::serialize::to_xml(&recovered).unwrap(),
        live,
        "recovery must reproduce the concurrent outcome"
    );
}

/// Lock-table hygiene under a storm: 8 threads hammer overlapping
/// sections with a short lock timeout, producing an arbitrary mix of
/// successful commits, timed-out selections/updates, staged-then-aborted
/// transactions and commit-time failures. Once the storm subsides, the
/// lock table must be **empty** — `locked_pages() == 0` — and the store
/// fully usable: no execution path (timeout, abort, upgrade deadlock,
/// empty commit, drop-without-finish) may strand a page lock or a free
/// lock-table entry.
#[test]
fn lock_storm_leaves_an_empty_lock_table() {
    let xml = sectioned_xml(3, 80, "");
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(32, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(30),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    );
    let committed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for thread in 0..8u64 {
            let store = &store;
            let committed = &committed;
            let failed = &failed;
            scope.spawn(move || {
                let frag = mbxq_xml::Document::parse_fragment("<p/>").unwrap();
                for round in 0..25u64 {
                    // Threads rotate over 3 shared sections → constant
                    // read/write overlap and upgrade deadlocks.
                    let section = (thread + round) % 3;
                    let path = XPath::parse(&format!("/root/s{section}")).unwrap();
                    let all = XPath::parse(&format!("/root/s{section}/p")).unwrap();
                    let mut t = store.begin();
                    let staged = (|| {
                        let target = t
                            .select(&path)
                            .map_err(|_| ())?
                            .first()
                            .copied()
                            .ok_or(())?;
                        match round % 3 {
                            0 => t
                                .insert(InsertPosition::LastChildOf(target), &frag)
                                .map_err(|_| ())?,
                            1 => {
                                let ps = t.select(&all).map_err(|_| ())?;
                                if let Some(&p) = ps.get(round as usize % ps.len().max(1)) {
                                    t.delete(p).map_err(|_| ())?;
                                }
                            }
                            _ => {
                                let ps = t.select(&all).map_err(|_| ())?;
                                if let Some(&p) = ps.first() {
                                    t.set_attribute(
                                        p,
                                        &mbxq::QName::local("touched"),
                                        &format!("t{thread}r{round}"),
                                    )
                                    .map_err(|_| ())?;
                                }
                            }
                        }
                        Ok::<(), ()>(())
                    })();
                    match staged {
                        Err(()) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            if round % 2 == 0 {
                                t.abort();
                            } else {
                                drop(t); // the Drop guard must clean up too
                            }
                        }
                        Ok(()) => {
                            if round % 7 == 6 {
                                t.abort(); // staged work thrown away
                            } else if t.commit().is_ok() {
                                committed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        store.locked_pages(),
        0,
        "the lock table must be empty after the storm \
         ({} commits, {} failures)",
        committed.load(Ordering::Relaxed),
        failed.load(Ordering::Relaxed)
    );
    assert!(
        committed.load(Ordering::Relaxed) > 0 && failed.load(Ordering::Relaxed) > 0,
        "the storm must produce both successes and failures to mean anything \
         ({} commits, {} failures)",
        committed.load(Ordering::Relaxed),
        failed.load(Ordering::Relaxed)
    );
    // The table being empty must also mean every page is acquirable: one
    // transaction locks a node in each section back-to-back.
    let mut sweep = store.begin();
    for s in 0..3 {
        let path = XPath::parse(&format!("/root/s{s}")).unwrap();
        let target = sweep.select(&path).unwrap()[0];
        let frag = mbxq_xml::Document::parse_fragment("<p id=\"sweep\"/>").unwrap();
        sweep
            .insert(InsertPosition::LastChildOf(target), &frag)
            .unwrap();
    }
    sweep.commit().unwrap();
    assert_eq!(store.locked_pages(), 0);
    mbxq_storage::invariants::check_paged(store.snapshot().as_ref()).unwrap();
}

/// Morsel-parallel queries racing the full maintenance surface: three
/// query threads run forced-parallel tiny-morsel scans on the store's
/// shared worker pool while two writers commit bursts and a maintenance
/// thread alternates checkpoints and vacuums. Every parallel scan pins
/// a snapshot and is checked against the sequential scan of the *same*
/// snapshot — publication, page reclamation and pool scheduling must
/// never let a morsel see a different document than the coordinator.
/// Afterwards the lock table must be empty and the store fully usable.
#[test]
fn parallel_queries_race_commits_checkpoint_and_vacuum() {
    let xml = sectioned_xml(4, 120, "");
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(64, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(150),
            validate_on_commit: false,
            query_threads: 3,
            ..StoreConfig::default()
        },
    );
    let stop = AtomicBool::new(false);
    let queries_run = AtomicU64::new(0);
    let commits = AtomicU64::new(0);
    let maintenance = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for r in 0..3usize {
            let store = &store;
            let stop = &stop;
            let queries_run = &queries_run;
            scope.spawn(move || {
                let paths = ["/root/s0/p", "//p", "/root/*", "//p[@touched]"];
                let pool = store.query_pool().expect("query_threads is configured");
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let xp = XPath::parse(paths[i % paths.len()]).unwrap();
                    let snap = store.snapshot();
                    let par = xp
                        .select_from_root_opts(
                            snap.as_ref(),
                            &EvalOptions::new()
                                .pool(pool)
                                .par(ParChoice::ForceParallel)
                                .morsel_rows(1),
                        )
                        .unwrap();
                    let seq = xp
                        .select_from_root_opts(
                            snap.as_ref(),
                            &EvalOptions::new().par(ParChoice::ForceSequential),
                        )
                        .unwrap();
                    assert_eq!(par, seq, "parallel scan diverged on a pinned snapshot");
                    queries_run.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        for w in 0..2usize {
            let store = &store;
            let stop = &stop;
            let commits = &commits;
            scope.spawn(move || {
                let path = XPath::parse(&format!("/root/s{w}")).unwrap();
                let all = XPath::parse(&format!("/root/s{w}/p")).unwrap();
                let frag = Document::parse_fragment("<p/>").unwrap();
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    let mut t = store.begin();
                    let staged = (|| {
                        let target = t
                            .select(&path)
                            .map_err(|_| ())?
                            .first()
                            .copied()
                            .ok_or(())?;
                        match round % 3 {
                            0 => t
                                .insert(InsertPosition::LastChildOf(target), &frag)
                                .map_err(|_| ())?,
                            1 => {
                                let ps = t.select(&all).map_err(|_| ())?;
                                if ps.len() > 40 {
                                    t.delete(ps[round as usize % ps.len()]).map_err(|_| ())?;
                                }
                            }
                            _ => {
                                let ps = t.select(&all).map_err(|_| ())?;
                                if let Some(&p) = ps.first() {
                                    t.set_attribute(
                                        p,
                                        &mbxq::QName::local("touched"),
                                        &format!("w{w}r{round}"),
                                    )
                                    .map_err(|_| ())?;
                                }
                            }
                        }
                        Ok::<(), ()>(())
                    })();
                    if staged.is_ok() && t.commit().is_ok() {
                        commits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        {
            let store = &store;
            let stop = &stop;
            let maintenance = &maintenance;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if store.checkpoint().is_ok() {
                        maintenance.fetch_add(1, Ordering::Relaxed);
                    }
                    if store.vacuum().is_ok() {
                        maintenance.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        store.locked_pages(),
        0,
        "the lock table must be empty after the storm \
         ({} queries, {} commits, {} maintenance passes)",
        queries_run.load(Ordering::Relaxed),
        commits.load(Ordering::Relaxed),
        maintenance.load(Ordering::Relaxed)
    );
    assert!(
        queries_run.load(Ordering::Relaxed) > 0 && commits.load(Ordering::Relaxed) > 0,
        "the storm must include both parallel queries and commits \
         ({} queries, {} commits)",
        queries_run.load(Ordering::Relaxed),
        commits.load(Ordering::Relaxed)
    );
    // The store must be fully usable afterwards: a sweep transaction
    // touches every section, then the invariants are re-checked.
    let mut sweep = store.begin();
    for s in 0..4 {
        let path = XPath::parse(&format!("/root/s{s}")).unwrap();
        let target = sweep.select(&path).unwrap()[0];
        let frag = Document::parse_fragment("<p id=\"sweep\"/>").unwrap();
        sweep
            .insert(InsertPosition::LastChildOf(target), &frag)
            .unwrap();
    }
    sweep.commit().unwrap();
    assert_eq!(store.locked_pages(), 0);
    mbxq_storage::invariants::check_paged(store.snapshot().as_ref()).unwrap();
}

#[test]
fn aborts_release_locks_for_others() {
    let xml = sectioned_xml(1, 50, "");
    let store = Store::open(
        PagedDoc::parse_str(&xml, PageConfig::new(64, 80).unwrap()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(300),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    );
    let path = XPath::parse("/root/s0").unwrap();
    let frag = Document::parse_fragment("<p/>").unwrap();
    for _ in 0..20 {
        // Writer A stages and aborts.
        let mut a = store.begin();
        let ta = a.select(&path).unwrap()[0];
        a.insert(InsertPosition::LastChildOf(ta), &frag).unwrap();
        a.abort();
        // Writer B must proceed immediately.
        let mut b = store.begin();
        let tb = b.select(&path).unwrap()[0];
        b.insert(InsertPosition::LastChildOf(tb), &frag).unwrap();
        b.commit().unwrap();
    }
    assert_eq!(store.snapshot().used_count(), 52 + 20);
}
