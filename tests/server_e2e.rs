//! End-to-end tests of the network server: a real TCP server in front
//! of one shared catalog, concurrent clients doing parameterized
//! queries, streamed cursor reads and write bursts — with every
//! client-observed result **bit-identical** to the same operation
//! issued directly against the [`Catalog`]. Node ids are the stable
//! logical ids, so equality of `Vec<NodeId>` really is bit-equality of
//! the result relation.

use mbxq::{Catalog, CatalogConfig, NodeId, PageConfig, StoreConfig};
use mbxq_server::{Client, QueryReply, QuerySpec, QueryTarget, Server, ServerConfig};
use mbxq_xmark::XMarkConfig;
use mbxq_xpath::{Bindings, EvalOptions, Value};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn config() -> CatalogConfig {
    CatalogConfig {
        store: StoreConfig {
            lock_timeout: Duration::from_secs(5),
            validate_on_commit: true,
            query_threads: 4,
            ..StoreConfig::default()
        },
        page: PageConfig::new(64, 75).unwrap(),
    }
}

const DOCS: [&str; 2] = ["auction0", "auction1"];

fn xmark_catalog() -> Arc<Catalog> {
    let cat = Arc::new(Catalog::in_memory(config()));
    for (i, name) in DOCS.iter().enumerate() {
        let xml = mbxq_xmark::generate(&XMarkConfig::tiny(11 + i as u64));
        cat.create_doc(name, &xml).unwrap();
    }
    cat
}

/// The acceptance scenario: 4 concurrent clients over 2 XMark
/// documents, mixing parameterized point queries, streamed fan-out
/// reads and write bursts. Every client writes only its own uniquely
/// named marker elements, so the shared query classes stay fixed node
/// sets (stable ids survive inserts) and every observation can be
/// checked bit-for-bit — during the storm against precomputed direct
/// results, and afterwards against the catalog's steady state.
#[test]
fn concurrent_clients_match_direct_catalog() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 6;
    let cat = xmark_catalog();
    let server = Server::start(
        cat.clone(),
        ServerConfig {
            workers: CLIENTS + 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Direct-catalog expectations, computed before any writer starts.
    let expected_param: Vec<Vec<NodeId>> = (0..CLIENTS)
        .map(|c| {
            let mut b = Bindings::new();
            b.set("id", Value::Str(format!("item{c}")));
            cat.query_nodes_opts(
                DOCS[c % 2],
                "//item[@id = $id]",
                &EvalOptions::new().bindings(&b),
            )
            .unwrap()
        })
        .collect();
    let expected_person: Vec<(String, Vec<NodeId>)> = cat
        .query_all("/site/people/person")
        .unwrap()
        .into_iter()
        .map(|m| (m.doc, m.nodes))
        .collect();
    assert!(
        expected_person.iter().map(|(_, n)| n.len()).sum::<usize>() > 0,
        "XMark documents must have people"
    );

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let expected_param = expected_param[c].clone();
            let expected_person = expected_person.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let doc = DOCS[c % 2];
                let mut cl = Client::connect(addr).unwrap();
                barrier.wait();
                for round in 0..ROUNDS {
                    // Parameterized point query, served through a cursor.
                    let mut b = Bindings::new();
                    b.set("id", Value::Str(format!("item{c}")));
                    let got = cl.query_nodes(doc, "//item[@id = $id]", Some(&b)).unwrap();
                    assert_eq!(got, expected_param, "client {c} round {round}");
                    // Cross-document fan-out read, streamed back.
                    let got_all = cl.query_all("/site/people/person", None).unwrap();
                    assert_eq!(got_all, expected_person, "client {c} round {round}");
                    // Write burst: one client-unique marker element.
                    let summary = cl
                        .xupdate(
                            doc,
                            &format!(
                                r#"<xupdate:modifications version="1.0">
                                     <xupdate:append select="/site">
                                       <xupdate:element name="mark{c}">
                                         <xupdate:attribute name="r">{round}</xupdate:attribute>
                                       </xupdate:element>
                                     </xupdate:append>
                                   </xupdate:modifications>"#
                            ),
                        )
                        .unwrap();
                    assert!(summary.nodes_inserted >= 1, "client {c} round {round}");
                    // Read-own-writes: this client is the only writer of
                    // its marker name, and its requests are sequential.
                    let mine = cl.query_nodes(doc, &format!("//mark{c}"), None).unwrap();
                    assert_eq!(mine.len(), round + 1, "client {c} round {round}");
                }
                cl.goodbye().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Steady state: every query class, server versus direct catalog,
    // bit-identical — including the marker elements the storm created.
    let mut cl = Client::connect(addr).unwrap();
    for doc in DOCS {
        for q in [
            "//item",
            "/site/people/person",
            "//open_auction",
            "//mark0",
            "//mark1",
            "//mark2",
            "//mark3",
        ] {
            assert_eq!(
                cl.query_nodes(doc, q, None).unwrap(),
                cat.query_nodes(doc, q).unwrap(),
                "{doc} {q}"
            );
        }
    }
    // Parameterized fan-out: the bindings thread through the catalog's
    // parallel fan-out on both sides.
    let mut b = Bindings::new();
    b.set("id", Value::Str("item1".to_string()));
    let direct: Vec<(String, Vec<NodeId>)> = cat
        .query_all_opts("//item[@id = $id]", &EvalOptions::new().bindings(&b))
        .unwrap()
        .into_iter()
        .map(|m| (m.doc, m.nodes))
        .collect();
    assert_eq!(cl.query_all("//item[@id = $id]", Some(&b)).unwrap(), direct);
    // Collection targeting (explicit document list, reversed order).
    let names = vec![DOCS[1].to_string(), DOCS[0].to_string()];
    let direct: Vec<(String, Vec<NodeId>)> = cat
        .query_collection(&names, "//item")
        .unwrap()
        .into_iter()
        .map(|m| (m.doc, m.nodes))
        .collect();
    assert_eq!(cl.query_collection(&names, "//item", None).unwrap(), direct);
    drop(cl);
    server.shutdown();
}

/// Cursor mechanics: fixed-size pages, early close, exhaustion.
#[test]
fn cursors_page_in_fixed_frames() {
    let cat = xmark_catalog();
    let server = Server::start(cat.clone(), ServerConfig::default()).unwrap();
    let mut cl = Client::connect(server.addr()).unwrap();

    let direct = cat.query_nodes(DOCS[0], "//item").unwrap();
    assert!(direct.len() > 3, "need multiple pages");
    let mut spec = QuerySpec::new(QueryTarget::Doc(DOCS[0].to_string()), "//item");
    spec.page_size = 3;
    let cur = match cl.query_spec(spec).unwrap() {
        QueryReply::Cursor(c) => c,
        other => panic!("expected cursor, got {other:?}"),
    };
    assert_eq!(cur.docs, [DOCS[0]]);
    assert_eq!(cur.total, direct.len() as u64);
    let mut rows = Vec::new();
    let mut pages = 0;
    loop {
        let (done, page) = cl.fetch(cur.id).unwrap();
        assert!(page.len() <= 3, "page overflows requested size");
        pages += 1;
        rows.extend(page.into_iter().map(|(_, n)| n));
        if done {
            break;
        }
    }
    assert_eq!(rows, direct, "reassembled pages equal the direct result");
    assert_eq!(pages, direct.len().div_ceil(3));
    // The cursor closed itself on the final page.
    assert!(cl.fetch(cur.id).is_err());

    // Two interleaved cursors; one closed early.
    let open = |cl: &mut Client| {
        let mut spec = QuerySpec::new(QueryTarget::Doc(DOCS[0].to_string()), "//item");
        spec.page_size = 2;
        match cl.query_spec(spec).unwrap() {
            QueryReply::Cursor(c) => c,
            other => panic!("expected cursor, got {other:?}"),
        }
    };
    let a = open(&mut cl);
    let b = open(&mut cl);
    assert_ne!(a.id, b.id);
    let (_, pa) = cl.fetch(a.id).unwrap();
    let (_, pb) = cl.fetch(b.id).unwrap();
    assert_eq!(pa, pb, "independent cursors over the same result");
    cl.close_cursor(a.id).unwrap();
    assert!(cl.fetch(a.id).is_err(), "closed cursor is gone");
    let (_, pb2) = cl.fetch(b.id).unwrap();
    assert_eq!(pb2.len(), 2, "sibling cursor unaffected by the close");
    cl.close_cursor(b.id).unwrap();

    // Scalars bypass the cursor machinery entirely.
    match cl.query(DOCS[0], "count(//item)", None).unwrap() {
        QueryReply::Scalar(Value::Number(n)) => assert_eq!(n as usize, direct.len()),
        other => panic!("expected a number, got {other:?}"),
    }
}

/// Session-pinned snapshots: repeatable reads across requests while
/// other sessions commit, and survival of a concurrent drop.
#[test]
fn pinned_sessions_serve_repeatable_reads() {
    let cat = Arc::new(Catalog::in_memory(config()));
    cat.create_doc("a", "<r><x/></r>").unwrap();
    cat.create_doc("b", "<r><y/></r>").unwrap();
    let server = Server::start(cat.clone(), ServerConfig::default()).unwrap();
    let mut reader = Client::connect(server.addr()).unwrap();
    let mut writer = Client::connect(server.addr()).unwrap();

    assert_eq!(reader.pin(&[]).unwrap(), 2, "empty pin list = all docs");
    let before = reader.query_nodes("a", "//x", None).unwrap();
    assert_eq!(before.len(), 1);

    // Another session commits; the catalog sees it, the pin does not.
    writer
        .xupdate(
            "a",
            r#"<xupdate:modifications version="1.0">
                 <xupdate:append select="/r"><x/></xupdate:append>
               </xupdate:modifications>"#,
        )
        .unwrap();
    assert_eq!(cat.query_nodes("a", "//x").unwrap().len(), 2);
    assert_eq!(
        reader.query_nodes("a", "//x", None).unwrap(),
        before,
        "pinned single-doc read is repeatable"
    );
    let all = reader.query_all("//x", None).unwrap();
    assert_eq!(
        all, // pinned fan-out serves the pinned snapshots
        vec![("a".to_string(), before.clone()), ("b".to_string(), vec![])],
    );

    // Unpin: fresh snapshots again.
    reader.unpin().unwrap();
    assert_eq!(reader.query_nodes("a", "//x", None).unwrap().len(), 2);

    // Re-pin, then drop the document out from under the session: the
    // pin holds the shard alive and keeps answering; a fresh client
    // gets UnknownDocument.
    assert_eq!(reader.pin(&["a".to_string()]).unwrap(), 1);
    let pinned = reader.query_nodes("a", "//x", None).unwrap();
    assert_eq!(pinned.len(), 2);
    writer.drop_doc("a").unwrap();
    assert!(!cat.contains("a"));
    assert_eq!(reader.query_nodes("a", "//x", None).unwrap(), pinned);
    let mut fresh = Client::connect(server.addr()).unwrap();
    assert!(fresh.query_nodes("a", "//x", None).is_err());
}

/// The create/drop/list surface over the wire, including the catalog's
/// plain-name validation answering with a structured error.
#[test]
fn document_lifecycle_over_the_wire() {
    let cat = Arc::new(Catalog::in_memory(config()));
    let server = Server::start(cat.clone(), ServerConfig::default()).unwrap();
    let mut cl = Client::connect(server.addr()).unwrap();

    cl.ping().unwrap();
    cl.create_doc("one", "<r><x/></r>").unwrap();
    cl.create_doc("two", "<r/>").unwrap();
    assert_eq!(cl.list_docs().unwrap(), ["one", "two"]);
    assert!(cl.create_doc("one", "<r/>").is_err(), "duplicate rejected");
    assert!(
        cl.create_doc("bad#name", "<r/>").is_err(),
        "partition namespace rejected over the wire too"
    );
    assert!(cl.create_doc("nl\nname", "<r/>").is_err());
    cl.drop_doc("two").unwrap();
    assert_eq!(cl.list_docs().unwrap(), ["one"]);
    assert!(cl.drop_doc("two").is_err());
    assert_eq!(cl.query_nodes("one", "//x", None).unwrap().len(), 1);
}

/// The Stats opcode: server-wide plan-cache, pool and kernel counters
/// over the wire. The counters are cumulative across every session, so
/// the test asserts monotonic growth and internal consistency rather
/// than absolute values.
#[test]
fn stats_opcode_reports_pool_and_kernel_counters() {
    let cat = xmark_catalog();
    let server = Server::start(cat.clone(), ServerConfig::default()).unwrap();
    let mut cl = Client::connect(server.addr()).unwrap();

    let st0 = cl.stats().unwrap();
    assert_eq!(st0.pool_threads, 4, "catalog config width on the wire");
    assert_eq!(
        st0.simd_compiled,
        mbxq_axes::simd_compiled(),
        "the server must report the kernel arm it was actually built with"
    );

    // A full-document element scan: no name index serves `//*`, so the
    // executor takes the staircase scan the chunk kernels back — and
    // repeating it must hit the shard's plan cache.
    let first = cl.query_nodes(DOCS[0], "//*", None).unwrap();
    assert!(!first.is_empty());
    assert_eq!(cl.query_nodes(DOCS[0], "//*", None).unwrap(), first);

    let st1 = cl.stats().unwrap();
    assert!(st1.plan_entries >= 1, "the scan's plan must be cached");
    assert!(
        st1.plan_hits > st0.plan_hits,
        "repeating a query must hit the plan cache ({} -> {})",
        st0.plan_hits,
        st1.plan_hits
    );
    if mbxq_axes::simd_compiled() {
        assert!(
            st1.simd_steps > st0.simd_steps,
            "a staircase scan on a simd build must count vector dispatches"
        );
    } else {
        assert_eq!(st1.simd_steps, 0, "nothing forces the simd arm here");
    }
    if st1.pool_spawned {
        assert!(
            st1.morsel_overhead_ns > 0,
            "a spawned pool must report its calibrated per-morsel overhead"
        );
    }
    // Cumulative counters never go backwards.
    assert!(st1.plan_misses >= st0.plan_misses);
    assert!(st1.par_steps >= st0.par_steps && st1.morsels >= st0.morsels);
    assert!(st1.pred_par_steps >= st0.pred_par_steps);

    // A multi-predicate step over the wire: the auto and probe-forced
    // arms must agree, and the cumulative multi-step / intersection
    // counters must grow (value=ForceProbe forces the intersect arm of
    // a multi-predicate step, so the kernel really runs).
    let mq = "//item[quantity > 0][quantity < 7]";
    let auto = cl.query_nodes(DOCS[0], mq, None).unwrap();
    assert!(!auto.is_empty(), "every item carries a quantity");
    let mut spec = QuerySpec::new(QueryTarget::Doc(DOCS[0].to_string()), mq);
    spec.value = mbxq_xpath::ValueChoice::ForceProbe;
    let forced = match cl.query_spec(spec).unwrap() {
        QueryReply::Cursor(cur) => {
            let mut per_doc = cl.drain(&cur).unwrap();
            per_doc.pop().map(|(_, nodes)| nodes).unwrap_or_default()
        }
        QueryReply::Scalar(v) => panic!("expected a node set, got {v:?}"),
    };
    assert_eq!(auto, forced, "multi-predicate arms diverged over the wire");
    let st2 = cl.stats().unwrap();
    assert!(
        st2.multi_probe_steps >= st1.multi_probe_steps + 2,
        "both evaluations must count their multi-predicate step ({} -> {})",
        st1.multi_probe_steps,
        st2.multi_probe_steps
    );
    assert!(
        st2.intersect_rows > st1.intersect_rows,
        "the forced intersection produced rows that must be counted"
    );
    assert!(st2.replans >= st1.replans, "replans are cumulative");
    cl.goodbye().unwrap();
}
