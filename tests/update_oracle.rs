//! Randomized update-sequence oracle: apply the same random sequence of
//! structural and value updates to the paged store and to the naive
//! shifting store; after every step both must serialize to the same
//! document, the paged store must pass the deep invariant checker, and
//! the claimed cost bounds must hold (paged inserts never touch more
//! pre-existing tuples than one page can hold).

mod common;

use common::{rand_name, rand_text, rand_tree, TestRng};
use mbxq::{InsertPosition, NaiveDoc, Node, PageConfig, PagedDoc, QName, TreeView};
use mbxq_storage::serialize::to_xml;

/// One random update operation, in terms of *dense node ranks* so the
/// same op addresses the same logical node in both stores.
#[derive(Debug, Clone)]
enum RandomOp {
    InsertBefore(usize, Node),
    InsertAfter(usize, Node),
    AppendChild(usize, Node),
    Delete(usize),
    SetAttr(usize, String, String),
    Rename(usize, String),
}

fn random_op(rng: &mut TestRng) -> RandomOp {
    let rank = rng.below(1 << 16);
    match rng.below(6) {
        0 => RandomOp::InsertBefore(rank, rand_tree(rng, 2, 3)),
        1 => RandomOp::InsertAfter(rank, rand_tree(rng, 2, 3)),
        2 => RandomOp::AppendChild(rank, rand_tree(rng, 2, 3)),
        3 => RandomOp::Delete(rank),
        4 => RandomOp::SetAttr(rank, rand_name(rng), rand_text(rng)),
        _ => RandomOp::Rename(rank, rand_name(rng)),
    }
}

/// The node id at dense rank `rank` (mod the current node count) in the
/// paged store — node ids agree across stores because both allocate in
/// document order and replay identical operations.
fn nth_node(up: &PagedDoc, rank: usize) -> Option<mbxq::NodeId> {
    let used = up.used_count() as usize;
    if used == 0 {
        return None;
    }
    let want = rank % used;
    let mut seen = 0;
    let mut p = 0;
    while let Some(q) = up.next_used_at_or_after(p) {
        if seen == want {
            return up.pre_to_node(q).ok();
        }
        seen += 1;
        p = q + 1;
    }
    None
}

#[test]
fn paged_equals_naive_under_random_updates() {
    for case in 0..32u64 {
        let mut rng = TestRng::new(0x0E5A + case);
        let tree = rand_tree(&mut rng, 3, 4);
        let n_ops = 1 + rng.below(11);
        let ops: Vec<RandomOp> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let cfg = [
            PageConfig::new(4, 50).unwrap(),
            PageConfig::new(8, 75).unwrap(),
            PageConfig::new(64, 80).unwrap(),
        ][rng.below(3)];
        let mut up = PagedDoc::from_tree(&tree, cfg).expect("shred paged");
        let mut nv = NaiveDoc::from_tree(&tree).expect("shred naive");

        for op in &ops {
            // Resolve the target in the paged store, mirror by node id.
            match op {
                RandomOp::InsertBefore(rank, sub) => {
                    let Some(t) = nth_node(&up, *rank) else {
                        continue;
                    };
                    let a = up.insert(InsertPosition::Before(t), sub);
                    let b = nv.insert(InsertPosition::Before(t), sub);
                    assert_eq!(a.is_ok(), b.is_ok(), "insert-before disagree");
                    if let Ok(r) = a {
                        // Cost bound: moved tuples never exceed one page.
                        assert!(r.moved <= cfg.page_size as u64);
                    }
                }
                RandomOp::InsertAfter(rank, sub) => {
                    let Some(t) = nth_node(&up, *rank) else {
                        continue;
                    };
                    let a = up.insert(InsertPosition::After(t), sub);
                    let b = nv.insert(InsertPosition::After(t), sub);
                    assert_eq!(a.is_ok(), b.is_ok(), "insert-after disagree");
                    if let Ok(r) = a {
                        assert!(r.moved <= cfg.page_size as u64);
                    }
                }
                RandomOp::AppendChild(rank, sub) => {
                    let Some(t) = nth_node(&up, *rank) else {
                        continue;
                    };
                    let a = up.insert(InsertPosition::LastChildOf(t), sub);
                    let b = nv.insert(InsertPosition::LastChildOf(t), sub);
                    assert_eq!(a.is_ok(), b.is_ok(), "append disagree");
                    if let Ok(r) = a {
                        assert!(r.moved <= cfg.page_size as u64);
                    }
                }
                RandomOp::Delete(rank) => {
                    let Some(t) = nth_node(&up, *rank) else {
                        continue;
                    };
                    let a = up.delete(t);
                    let b = nv.delete(t);
                    assert_eq!(a.is_ok(), b.is_ok(), "delete disagree");
                    if let Ok(r) = a {
                        // Deletes never shift pre-existing tuples.
                        assert!(r.deleted > 0);
                    }
                }
                RandomOp::SetAttr(rank, name, value) => {
                    let Some(t) = nth_node(&up, *rank) else {
                        continue;
                    };
                    let q = QName::local(name.clone());
                    let a = up.set_attribute(t, &q, value);
                    let b = nv.set_attribute(t, &q, value);
                    assert_eq!(a.is_ok(), b.is_ok(), "set-attr disagree");
                }
                RandomOp::Rename(rank, name) => {
                    let Some(t) = nth_node(&up, *rank) else {
                        continue;
                    };
                    let q = QName::local(name.clone());
                    let a = up.rename(t, &q);
                    let b = nv.rename(t, &q);
                    assert_eq!(a.is_ok(), b.is_ok(), "rename disagree");
                }
            }
            mbxq_storage::invariants::check_paged(&up).expect("invariants hold");
            assert_eq!(
                to_xml(&up).unwrap(),
                to_xml(&nv).unwrap(),
                "case {case}: documents diverged after {op:?}"
            );
        }
        // Final occupancy accounting.
        assert_eq!(up.used_count(), nv.used_count());
    }
}
