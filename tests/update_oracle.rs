//! Randomized update-sequence oracle: apply the same random sequence of
//! structural and value updates to the paged store and to the naive
//! shifting store; after every step both must serialize to the same
//! document, the paged store must pass the deep invariant checker, and
//! the claimed cost bounds must hold (paged inserts never touch more
//! pre-existing tuples than one page can hold).

mod common;

use common::tree_strategy;
use mbxq::{
    InsertPosition, NaiveDoc, Node, PageConfig, PagedDoc, QName, TreeView,
};
use mbxq_storage::serialize::to_xml;
use proptest::prelude::*;

/// One random update operation, in terms of *dense node ranks* so the
/// same op addresses the same logical node in both stores.
#[derive(Debug, Clone)]
enum RandomOp {
    InsertBefore(usize, Node),
    InsertAfter(usize, Node),
    AppendChild(usize, Node),
    Delete(usize),
    SetAttr(usize, String, String),
    Rename(usize, String),
}

fn op_strategy() -> impl Strategy<Value = RandomOp> {
    prop_oneof![
        (any::<prop::sample::Index>(), tree_strategy(2, 3))
            .prop_map(|(i, t)| RandomOp::InsertBefore(i.index(1 << 16), t)),
        (any::<prop::sample::Index>(), tree_strategy(2, 3))
            .prop_map(|(i, t)| RandomOp::InsertAfter(i.index(1 << 16), t)),
        (any::<prop::sample::Index>(), tree_strategy(2, 3))
            .prop_map(|(i, t)| RandomOp::AppendChild(i.index(1 << 16), t)),
        any::<prop::sample::Index>().prop_map(|i| RandomOp::Delete(i.index(1 << 16))),
        (any::<prop::sample::Index>(), common::name_strategy(), common::text_strategy())
            .prop_map(|(i, n, v)| RandomOp::SetAttr(i.index(1 << 16), n, v)),
        (any::<prop::sample::Index>(), common::name_strategy())
            .prop_map(|(i, n)| RandomOp::Rename(i.index(1 << 16), n)),
    ]
}

/// The node id at dense rank `rank` (mod the current node count) in the
/// paged store — node ids agree across stores because both allocate in
/// document order and replay identical operations.
fn nth_node(up: &PagedDoc, rank: usize) -> Option<mbxq::NodeId> {
    let used = up.used_count() as usize;
    if used == 0 {
        return None;
    }
    let want = rank % used;
    let mut seen = 0;
    let mut p = 0;
    while let Some(q) = up.next_used_at_or_after(p) {
        if seen == want {
            return up.pre_to_node(q).ok();
        }
        seen += 1;
        p = q + 1;
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn paged_equals_naive_under_random_updates(
        tree in tree_strategy(3, 4),
        ops in prop::collection::vec(op_strategy(), 1..12),
        cfg_idx in 0usize..3,
    ) {
        let cfg = [
            PageConfig::new(4, 50).unwrap(),
            PageConfig::new(8, 75).unwrap(),
            PageConfig::new(64, 80).unwrap(),
        ][cfg_idx];
        let mut up = PagedDoc::from_tree(&tree, cfg).expect("shred paged");
        let mut nv = NaiveDoc::from_tree(&tree).expect("shred naive");

        for op in &ops {
            // Resolve the target in the paged store, mirror by node id.
            let apply = |up: &mut PagedDoc, nv: &mut NaiveDoc| -> Result<bool, TestCaseError> {
                match op {
                    RandomOp::InsertBefore(rank, sub) => {
                        let Some(t) = nth_node(up, *rank) else { return Ok(false) };
                        let a = up.insert(InsertPosition::Before(t), sub);
                        let b = nv.insert(InsertPosition::Before(t), sub);
                        prop_assert_eq!(a.is_ok(), b.is_ok(), "insert-before disagree");
                        if let Ok(r) = a {
                            // Cost bound: moved tuples never exceed one page.
                            prop_assert!(r.moved <= cfg.page_size as u64);
                        }
                    }
                    RandomOp::InsertAfter(rank, sub) => {
                        let Some(t) = nth_node(up, *rank) else { return Ok(false) };
                        let a = up.insert(InsertPosition::After(t), sub);
                        let b = nv.insert(InsertPosition::After(t), sub);
                        prop_assert_eq!(a.is_ok(), b.is_ok(), "insert-after disagree");
                        if let Ok(r) = a {
                            prop_assert!(r.moved <= cfg.page_size as u64);
                        }
                    }
                    RandomOp::AppendChild(rank, sub) => {
                        let Some(t) = nth_node(up, *rank) else { return Ok(false) };
                        let a = up.insert(InsertPosition::LastChildOf(t), sub);
                        let b = nv.insert(InsertPosition::LastChildOf(t), sub);
                        prop_assert_eq!(a.is_ok(), b.is_ok(), "append disagree");
                        if let Ok(r) = a {
                            prop_assert!(r.moved <= cfg.page_size as u64);
                        }
                    }
                    RandomOp::Delete(rank) => {
                        let Some(t) = nth_node(up, *rank) else { return Ok(false) };
                        let a = up.delete(t);
                        let b = nv.delete(t);
                        prop_assert_eq!(a.is_ok(), b.is_ok(), "delete disagree");
                        if let Ok(r) = a {
                            // Deletes never shift pre-existing tuples.
                            prop_assert!(r.deleted > 0);
                        }
                    }
                    RandomOp::SetAttr(rank, name, value) => {
                        let Some(t) = nth_node(up, *rank) else { return Ok(false) };
                        let q = QName::local(name.clone());
                        let a = up.set_attribute(t, &q, value);
                        let b = nv.set_attribute(t, &q, value);
                        prop_assert_eq!(a.is_ok(), b.is_ok(), "set-attr disagree");
                    }
                    RandomOp::Rename(rank, name) => {
                        let Some(t) = nth_node(up, *rank) else { return Ok(false) };
                        let q = QName::local(name.clone());
                        let a = up.rename(t, &q);
                        let b = nv.rename(t, &q);
                        prop_assert_eq!(a.is_ok(), b.is_ok(), "rename disagree");
                    }
                }
                Ok(true)
            };
            apply(&mut up, &mut nv)?;
            mbxq_storage::invariants::check_paged(&up).expect("invariants hold");
            prop_assert_eq!(
                to_xml(&up).unwrap(),
                to_xml(&nv).unwrap(),
                "documents diverged after {:?}", op
            );
        }
        // Final occupancy accounting.
        prop_assert_eq!(up.used_count(), nv.used_count());
    }
}
