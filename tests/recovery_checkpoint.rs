//! Crash-injection property test for recovery across a checkpoint
//! boundary (seeded-loop style, like the rest of the suite).
//!
//! Each seed drives a deterministic random workload — batches of
//! inserts, deletes and attribute writes, with a WAL checkpoint taken at
//! a random point in the middle — twice: once intact, once with a crash
//! budget armed at a random cumulative-I/O offset. Whatever the crash
//! tears (a trailing commit record, or the checkpoint rewrite itself),
//! recovery from the surviving log bytes must reproduce exactly the last
//! successfully committed state: commits before the checkpoint, the
//! checkpoint truncation, and commits after it all have to line up,
//! including post-checkpoint deletes of pre-checkpoint nodes (which only
//! work if checkpoints preserve node ids).

mod common;

use common::TestRng;
use mbxq::{
    AncestorLockMode, InsertPosition, PageConfig, PagedDoc, Store, StoreConfig, TreeView, XPath,
};
use mbxq_txn::recover::recover;
use mbxq_txn::wal::Wal;
use mbxq_xml::Document;
use std::time::Duration;

const GENESIS: &str = "<root>\
    <s0><p id=\"a0\"/><p id=\"a1\"/></s0>\
    <s1><p id=\"b0\"/><p id=\"b1\"/></s1>\
    <s2><p id=\"c0\"/><p id=\"c1\"/></s2>\
    </root>";

fn cfg() -> PageConfig {
    PageConfig::new(16, 75).unwrap()
}

fn open_store(crash_at: Option<usize>) -> Store {
    let doc = PagedDoc::parse_str(GENESIS, cfg()).unwrap();
    let mut wal = Wal::in_memory();
    if let Some(limit) = crash_at {
        wal.crash_after_bytes(limit);
    }
    Store::open(
        doc,
        wal,
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(500),
            validate_on_commit: true,
            ..StoreConfig::default()
        },
    )
}

/// Runs the seed's workload until completion or the injected crash.
/// Returns the XML of the last successfully committed state and the raw
/// WAL bytes a recovery process would find.
fn run_workload(seed: u64, crash_at: Option<usize>) -> (String, Vec<u8>) {
    let mut rng = TestRng::new(seed);
    let store = open_store(crash_at);
    let batches = 6 + rng.below(4);
    let checkpoint_at = 1 + rng.below(batches - 1);
    let mut last_committed = mbxq_storage::serialize::to_xml(store.snapshot().as_ref()).unwrap();
    let all_p = XPath::parse("//p").unwrap();

    'work: for batch in 0..batches {
        if batch == checkpoint_at && store.checkpoint().is_err() {
            break 'work; // crash while writing the checkpoint
        }
        let mut t = store.begin();
        let n_ops = 1 + rng.below(3);
        for op in 0..n_ops {
            match rng.below(4) {
                // Insert a fresh paragraph under a random section.
                0 | 1 => {
                    let section = rng.below(3);
                    let path = XPath::parse(&format!("/root/s{section}")).unwrap();
                    let target = t.select(&path).unwrap()[0];
                    let frag = Document::parse_fragment(&format!(
                        "<p id=\"g{seed}x{batch}x{op}\"><t>v</t></p>"
                    ))
                    .unwrap();
                    t.insert(InsertPosition::LastChildOf(target), &frag)
                        .unwrap();
                }
                // Delete a random paragraph — possibly one created (or
                // checkpointed) many batches ago.
                2 => {
                    let victims = t.select(&all_p).unwrap();
                    if !victims.is_empty() {
                        let v = victims[rng.below(victims.len())];
                        t.delete(v).unwrap();
                    }
                }
                // Rewrite an attribute on a random paragraph.
                _ => {
                    let targets = t.select(&all_p).unwrap();
                    if !targets.is_empty() {
                        let n = targets[rng.below(targets.len())];
                        t.set_attribute(
                            n,
                            &mbxq::QName::local("id"),
                            &format!("r{seed}x{batch}x{op}"),
                        )
                        .unwrap();
                    }
                }
            }
        }
        if t.commit().is_err() {
            break 'work; // crash during the commit I/O
        }
        last_committed = mbxq_storage::serialize::to_xml(store.snapshot().as_ref()).unwrap();
    }

    let raw = store.wal_raw().unwrap();
    (last_committed, raw)
}

#[test]
fn recovery_across_checkpoints_reproduces_the_committed_prefix() {
    for seed in 0..10u64 {
        // Intact run first: recovery must reproduce the final state, and
        // its log length bounds the crash offsets worth probing (the
        // cumulative I/O also covers bytes discarded by the checkpoint
        // truncation, hence the 3x headroom).
        let (final_xml, intact_raw) = run_workload(seed, None);
        let recovered = recover(GENESIS, cfg(), &intact_raw)
            .unwrap_or_else(|e| panic!("seed {seed}: intact recovery failed: {e}"));
        assert_eq!(
            mbxq_storage::serialize::to_xml(&recovered).unwrap(),
            final_xml,
            "seed {seed}: intact recovery diverged"
        );

        let mut rng = TestRng::new(seed ^ 0xdead_beef);
        let upper = intact_raw.len() * 3 + 64;
        for probe in 0..6 {
            let crash_at = rng.below(upper);
            let (expected, raw) = run_workload(seed, Some(crash_at));
            let recovered = recover(GENESIS, cfg(), &raw).unwrap_or_else(|e| {
                panic!("seed {seed} probe {probe} (crash at {crash_at}): recovery failed: {e}")
            });
            mbxq_storage::invariants::check_paged(&recovered).unwrap();
            assert_eq!(
                mbxq_storage::serialize::to_xml(&recovered).unwrap(),
                expected,
                "seed {seed} probe {probe}: crash at byte {crash_at} lost or invented a commit"
            );
        }
    }
}

/// Regression: deleting an element between two text runs leaves two
/// *adjacent* text tuples, which XML text would coalesce on reparse. A
/// checkpoint taken in that state must still be loadable (it truncated
/// the log — failure here means the store is permanently
/// unrecoverable), and both text tuples must keep their own node ids so
/// post-checkpoint records can address them.
#[test]
fn checkpoint_survives_adjacent_text_tuples() {
    let genesis = "<root><d>hello <kw/> world</d></root>";
    let store = Store::open(
        PagedDoc::parse_str(genesis, cfg()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(500),
            validate_on_commit: true,
            ..StoreConfig::default()
        },
    );
    let mut t = store.begin();
    let kw = t.select(&XPath::parse("//kw").unwrap()).unwrap();
    t.delete(kw[0]).unwrap();
    t.commit().unwrap();
    store.checkpoint().unwrap();

    // Address the SECOND of the now-adjacent text tuples by node id.
    let second_text = {
        let snap = store.snapshot();
        let d_pre = 1u64; // root=0, d=1, "hello "=2, " world"=3 (kw deleted)
        let end = snap.region_end(d_pre);
        let mut texts = Vec::new();
        let mut p = d_pre + 1;
        while let Some(q) = snap.next_used_at_or_after(p) {
            if q >= end {
                break;
            }
            texts.push(snap.pre_to_node(q).unwrap());
            p = q + 1;
        }
        assert_eq!(texts.len(), 2, "two separate text tuples must remain");
        texts[1]
    };
    let mut t = store.begin();
    t.update_value(second_text, " there").unwrap();
    t.commit().unwrap();

    let live = mbxq_storage::serialize::to_xml(store.snapshot().as_ref()).unwrap();
    assert_eq!(live, "<root><d>hello  there</d></root>");
    let recovered = recover(genesis, cfg(), &store.wal_raw().unwrap())
        .expect("checkpoint with adjacent text tuples must stay recoverable");
    mbxq_storage::invariants::check_paged(&recovered).unwrap();
    assert_eq!(mbxq_storage::serialize::to_xml(&recovered).unwrap(), live);
}

/// Crash injection landing *inside group-commit batches*: several
/// writers commit concurrently (so WAL flushes carry multi-record
/// batches whenever the race allows), with a crash budget armed at a
/// random cumulative-I/O offset. The boundary can cut anywhere — before
/// a batch, between two records of one batch, or mid-record. Required
/// outcome, for every seed and probe:
///
/// * **all-or-nothing per commit, even inside a batch** — recovery must
///   reproduce a state containing *exactly* the transactions whose
///   `commit()` reported success: a torn record never half-applies, a
///   fully-flushed record is never lost, and one batch member's crash
///   never takes down a batch sibling that was flushed before the cut;
/// * the recovered document passes the full invariant check.
#[test]
fn crash_inside_group_commit_batches_keeps_per_commit_atomicity() {
    const WRITERS: usize = 4;
    let genesis = common::sectioned_xml(WRITERS, 30, "");
    let cfg = PageConfig::new(32, 80).unwrap();

    // Calibrate the crash offsets against an intact concurrent run.
    let intact_len = {
        let store = Store::open(
            PagedDoc::parse_str(&genesis, cfg).unwrap(),
            Wal::in_memory(),
            StoreConfig {
                ancestor_mode: AncestorLockMode::Delta,
                lock_timeout: Duration::from_secs(5),
                validate_on_commit: false,
                ..StoreConfig::default()
            },
        );
        run_concurrent_writers(&store, WRITERS, 0);
        store.wal_raw().unwrap().len()
    };

    let mut rng = TestRng::new(0xba7c4);
    for probe in 0..8 {
        let crash_at = 1 + rng.below(intact_len);
        let store = Store::open(
            PagedDoc::parse_str(&genesis, cfg).unwrap(),
            {
                let mut wal = Wal::in_memory();
                wal.crash_after_bytes(crash_at);
                wal
            },
            StoreConfig {
                ancestor_mode: AncestorLockMode::Delta,
                lock_timeout: Duration::from_secs(5),
                validate_on_commit: false,
                ..StoreConfig::default()
            },
        );
        let succeeded = run_concurrent_writers(&store, WRITERS, probe);
        assert_eq!(store.locked_pages(), 0, "probe {probe}: stranded locks");
        let recovered = recover(&genesis, cfg, &store.wal_raw().unwrap()).unwrap_or_else(|e| {
            panic!("probe {probe} (crash at {crash_at}): recovery failed: {e}")
        });
        mbxq_storage::invariants::check_paged(&recovered).unwrap();
        let recovered_xml = mbxq_storage::serialize::to_xml(&recovered).unwrap();
        // Exactly the successful commits — no more, no fewer.
        for (id, ok) in &succeeded {
            assert_eq!(
                recovered_xml.contains(id.as_str()),
                *ok,
                "probe {probe} (crash at {crash_at}): commit {id} reported \
                 success={ok} but recovery says otherwise"
            );
        }
    }
}

/// Spawns `writers` threads, each committing a run of single-insert
/// transactions with globally unique ids into its own section. Returns
/// `(id, commit-reported-success)` for every attempted transaction.
fn run_concurrent_writers(store: &Store, writers: usize, tag: usize) -> Vec<(String, bool)> {
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..writers {
            let store = &store;
            let results = &results;
            scope.spawn(move || {
                let path = XPath::parse(&format!("/root/s{w}")).unwrap();
                for i in 0..10 {
                    let id = format!("b{tag}w{w}i{i}");
                    let mut t = store.begin();
                    let target = t.select(&path).unwrap()[0];
                    let frag = Document::parse_fragment(&format!("<p id=\"{id}\"/>")).unwrap();
                    t.insert(InsertPosition::LastChildOf(target), &frag)
                        .unwrap();
                    let ok = t.commit().is_ok();
                    results.lock().unwrap().push((id, ok));
                }
            });
        }
    });
    results.into_inner().unwrap()
}

#[test]
fn checkpoint_shrinks_the_log_and_preserves_pre_checkpoint_nodes() {
    let store = open_store(None);
    let people = XPath::parse("/root/s0").unwrap();
    for i in 0..5 {
        let mut t = store.begin();
        let target = t.select(&people).unwrap()[0];
        let frag = Document::parse_fragment(&format!(
            "<p id=\"pre{i}\"><t>some recorded payload {i}</t></p>"
        ))
        .unwrap();
        t.insert(InsertPosition::LastChildOf(target), &frag)
            .unwrap();
        t.commit().unwrap();
    }
    // A churny workload: the log records every overwrite, the state
    // keeps only the last — the case checkpointing exists for.
    for i in 0..25 {
        let mut t = store.begin();
        let target = t.select(&XPath::parse("//p[@id='pre0']").unwrap()).unwrap();
        t.set_attribute(
            target[0],
            &mbxq::QName::local("rev"),
            &format!("revision number {i}"),
        )
        .unwrap();
        t.commit().unwrap();
    }
    let info = store.checkpoint().unwrap();
    assert!(
        info.wal_bytes_after < info.wal_bytes_before,
        "thirty commits must outweigh one checkpoint of this small doc: {info:?}"
    );
    // Delete a node that only the checkpoint (not the genesis XML or any
    // surviving commit record) knows about.
    let mut t = store.begin();
    let victims = t.select(&XPath::parse("//p[@id='pre3']").unwrap()).unwrap();
    t.delete(victims[0]).unwrap();
    t.commit().unwrap();

    let live = mbxq_storage::serialize::to_xml(store.snapshot().as_ref()).unwrap();
    let recovered = recover(GENESIS, cfg(), &store.wal_raw().unwrap()).unwrap();
    assert_eq!(mbxq_storage::serialize::to_xml(&recovered).unwrap(), live);
    assert!(!live.contains("pre3"));
    assert!(live.contains("pre2") && live.contains("pre4"));
}

/// Multi-shard catalog crash property. Each seed opens a durable
/// catalog of three documents, arms a crash budget in one random
/// shard's WAL, and drives random op batches (inserts, deletes,
/// attribute rewrites, per-shard checkpoints) across all shards until
/// the injected crash fires — at which point the whole process is
/// treated as dead. On top of the torn WAL, the "crashed" directory
/// gets the residue of an interrupted create/drop: a stray
/// `manifest.tmp` and an orphan `shard-*.wal`. Reopening the catalog
/// must reproduce exactly the last committed state of every shard —
/// shards the crash never touched lose nothing, the torn shard recovers
/// its committed prefix, and the artifacts are swept away.
#[test]
fn catalog_recovery_reproduces_every_shard() {
    use mbxq::{Catalog, CatalogConfig};

    const SHARDS: usize = 3;
    let config = CatalogConfig {
        store: StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(500),
            validate_on_commit: true,
            ..StoreConfig::default()
        },
        page: cfg(),
    };
    let genesis = |d: usize| {
        format!(
            "<root><s0><p id=\"d{d}a\"/></s0><s1><p id=\"d{d}b\"/><p id=\"d{d}c\"/></s1></root>"
        )
    };

    // One intact run to bound the crash offsets worth probing (3x
    // headroom: the cumulative budget also counts checkpoint-discarded
    // bytes, as in the single-store test above).
    let run = |seed: u64, dir: &std::path::Path, crash_at: Option<usize>| -> (Vec<String>, usize) {
        let _ = std::fs::remove_dir_all(dir);
        let cat = Catalog::open(dir, config).unwrap();
        let mut rng = TestRng::new(seed ^ 0xca7a_1095);
        let shards: Vec<_> = (0..SHARDS)
            .map(|d| cat.create_doc(&format!("doc{d}"), &genesis(d)).unwrap())
            .collect();
        let victim = rng.below(SHARDS);
        if let Some(limit) = crash_at {
            shards[victim].wal_crash_after_bytes(limit);
        }
        let mut last: Vec<String> = shards
            .iter()
            .map(|s| mbxq_storage::serialize::to_xml(s.snapshot().as_ref()).unwrap())
            .collect();
        let mut wrote = 0usize;
        let all_p = XPath::parse("//p").unwrap();
        'work: for batch in 0..12 {
            let d = rng.below(SHARDS);
            let shard = &shards[d];
            if rng.below(5) == 0 {
                // Per-shard checkpoint: truncates THIS shard's log only.
                if shard.checkpoint().is_err() {
                    break 'work; // crash while rewriting the victim's log
                }
                continue;
            }
            let mut t = shard.begin();
            for op in 0..1 + rng.below(3) {
                match rng.below(4) {
                    0 | 1 => {
                        let section = rng.below(2);
                        let target = t
                            .select(&XPath::parse(&format!("/root/s{section}")).unwrap())
                            .unwrap()[0];
                        let frag = Document::parse_fragment(&format!(
                            "<p id=\"d{d}x{batch}x{op}\"><t>v</t></p>"
                        ))
                        .unwrap();
                        t.insert(InsertPosition::LastChildOf(target), &frag)
                            .unwrap();
                    }
                    2 => {
                        let victims = t.select(&all_p).unwrap();
                        if !victims.is_empty() {
                            t.delete(victims[rng.below(victims.len())]).unwrap();
                        }
                    }
                    _ => {
                        let targets = t.select(&all_p).unwrap();
                        if !targets.is_empty() {
                            let n = targets[rng.below(targets.len())];
                            t.set_attribute(
                                n,
                                &mbxq::QName::local("id"),
                                &format!("r{d}x{batch}x{op}"),
                            )
                            .unwrap();
                        }
                    }
                }
            }
            match t.commit() {
                Ok(_) => {
                    last[d] = mbxq_storage::serialize::to_xml(shard.snapshot().as_ref()).unwrap();
                    wrote += 1;
                }
                Err(_) => break 'work, // the armed shard's WAL tore
            }
        }
        let _ = wrote;
        let total: usize = shards
            .iter()
            .map(|s| s.wal_raw().map_or(0, |r| r.len()))
            .sum();
        (last, total)
    };

    for seed in 0..5u64 {
        let dir =
            std::env::temp_dir().join(format!("mbxq-catalog-crash-{}-{seed}", std::process::id()));
        let (_, intact_total) = run(seed, &dir, None);
        let mut rng = TestRng::new(seed ^ 0xdead_cafe);
        for probe in 0..4 {
            let crash_at = 1 + rng.below(intact_total * 3 + 64);
            let (expected, _) = run(seed, &dir, Some(crash_at));
            // Residue of an interrupted create/drop and manifest rewrite.
            std::fs::write(dir.join("manifest.tmp"), b"torn manifest rewrite").unwrap();
            std::fs::write(dir.join("shard-777.wal"), b"orphan of a crashed create").unwrap();

            let cat = Catalog::open(&dir, config).unwrap_or_else(|e| {
                panic!("seed {seed} probe {probe} (crash at {crash_at}): reopen failed: {e}")
            });
            assert_eq!(
                cat.doc_names(),
                (0..SHARDS).map(|d| format!("doc{d}")).collect::<Vec<_>>(),
                "seed {seed} probe {probe}: manifest lost a document"
            );
            for (d, want) in expected.iter().enumerate() {
                let shard = cat.shard(&format!("doc{d}")).unwrap();
                let got = mbxq_storage::serialize::to_xml(shard.snapshot().as_ref()).unwrap();
                assert_eq!(
                    &got, want,
                    "seed {seed} probe {probe}: doc{d} diverged after crash at {crash_at}"
                );
                mbxq_storage::invariants::check_paged(shard.snapshot().as_ref()).unwrap();
            }
            assert!(
                !dir.join("manifest.tmp").exists(),
                "reopen must discard the torn manifest rewrite"
            );
            assert!(
                !dir.join("shard-777.wal").exists(),
                "reopen must sweep orphan shard WALs"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A shard WAL moved under another document's slot must fail recovery
/// (the checkpoint dump carries the document identity), not silently
/// serve the wrong document.
#[test]
fn catalog_rejects_shuffled_shard_wals() {
    use mbxq::{Catalog, CatalogConfig};

    let dir = std::env::temp_dir().join(format!("mbxq-catalog-shuffle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = CatalogConfig {
        store: StoreConfig::default(),
        page: cfg(),
    };
    {
        let cat = Catalog::open(&dir, config).unwrap();
        cat.create_doc("alpha", "<root><p id=\"a\"/></root>")
            .unwrap();
        cat.create_doc("beta", "<root><p id=\"b\"/></root>")
            .unwrap();
    }
    // Swap the two shard WAL files behind the manifest's back.
    let a = dir.join("shard-0.wal");
    let b = dir.join("shard-1.wal");
    let tmp = dir.join("shard-swap.tmp");
    std::fs::rename(&a, &tmp).unwrap();
    std::fs::rename(&b, &a).unwrap();
    std::fs::rename(&tmp, &b).unwrap();
    let err = Catalog::open(&dir, config).unwrap_err();
    assert!(
        err.to_string().contains("belongs to document"),
        "expected an identity mismatch, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
