//! Oracle tests for the staircase-join axis engine: every axis result on
//! both relational schemas must equal a straightforward DOM evaluation
//! on the owned tree, for random documents — including documents whose
//! paged representation is riddled with holes from deletes.

mod common;

use common::{rand_tree, to_xml_string, TestRng};
use mbxq::{step, Axis, NaiveDoc, Node, NodeTest, PageConfig, PagedDoc, ReadOnlyDoc, TreeView};

/// DOM-side node identity: the index of the node in document order
/// (elements and leaves alike), which equals the read-only pre rank.
fn flatten<'a>(node: &'a Node, out: &mut Vec<&'a Node>) {
    out.push(node);
    for c in node.children() {
        flatten(c, out);
    }
}

/// DOM evaluation of one axis from the node at document-order index
/// `ctx`, returning document-order indexes.
fn dom_axis(root: &Node, ctx: usize, axis: Axis) -> Vec<usize> {
    let mut order = Vec::new();
    flatten(root, &mut order);
    // parent / child relations by index.
    let mut parent: Vec<Option<usize>> = vec![None; order.len()];
    {
        fn walk(node: &Node, my_idx: usize, next: &mut usize, parent: &mut Vec<Option<usize>>) {
            for c in node.children() {
                let c_idx = *next;
                *next += 1;
                parent[c_idx] = Some(my_idx);
                walk(c, c_idx, next, parent);
            }
        }
        let mut next = 1;
        walk(root, 0, &mut next, &mut parent);
    }
    let ancestors = |mut i: usize| {
        let mut out = Vec::new();
        while let Some(p) = parent[i] {
            out.push(p);
            i = p;
        }
        out
    };
    let in_subtree = |a: usize, mut b: usize| {
        // is b inside a's subtree (strictly below)?
        while let Some(p) = parent[b] {
            if p == a {
                return true;
            }
            b = p;
        }
        false
    };
    let mut out: Vec<usize> = match axis {
        Axis::SelfAxis => vec![ctx],
        Axis::Child => (0..order.len())
            .filter(|&i| parent[i] == Some(ctx))
            .collect(),
        Axis::Descendant => (0..order.len()).filter(|&i| in_subtree(ctx, i)).collect(),
        Axis::DescendantOrSelf => {
            let mut v = vec![ctx];
            v.extend((0..order.len()).filter(|&i| in_subtree(ctx, i)));
            v
        }
        Axis::Parent => parent[ctx].into_iter().collect(),
        Axis::Ancestor => ancestors(ctx),
        Axis::AncestorOrSelf => {
            let mut v = vec![ctx];
            v.extend(ancestors(ctx));
            v
        }
        Axis::FollowingSibling => (0..order.len())
            .filter(|&i| parent[i] == parent[ctx] && i > ctx && parent[ctx].is_some())
            .collect(),
        Axis::PrecedingSibling => (0..order.len())
            .filter(|&i| parent[i] == parent[ctx] && i < ctx && parent[ctx].is_some())
            .collect(),
        Axis::Following => (0..order.len())
            .filter(|&i| i > ctx && !in_subtree(ctx, i))
            .collect(),
        Axis::Preceding => (0..order.len())
            .filter(|&i| i < ctx && !ancestors(ctx).contains(&i))
            .collect(),
    };
    out.sort_unstable();
    out
}

const ALL_AXES: [Axis; 11] = [
    Axis::SelfAxis,
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
    Axis::Following,
    Axis::Preceding,
];

/// Maps a view's used pre ranks to dense document-order indexes.
fn dense_rank_map<V: TreeView>(view: &V) -> Vec<u64> {
    let mut map = Vec::new();
    let mut p = 0;
    while let Some(q) = view.next_used_at_or_after(p) {
        map.push(q);
        p = q + 1;
    }
    map
}

fn check_axes<V: TreeView>(view: &V, root: &Node, label: &str) {
    let pres = dense_rank_map(view);
    for (ctx_idx, &ctx_pre) in pres.iter().enumerate() {
        for axis in ALL_AXES {
            let got: Vec<u64> = step(view, &[ctx_pre], axis, &NodeTest::AnyNode);
            let got_idx: Vec<usize> = got
                .iter()
                .map(|g| pres.binary_search(g).expect("result is a used slot"))
                .collect();
            let want = dom_axis(root, ctx_idx, axis);
            assert_eq!(
                got_idx, want,
                "{label} axis {axis:?} from node {ctx_idx} diverged"
            );
        }
    }
}

#[test]
fn axes_match_dom_oracle() {
    for case in 0..24u64 {
        let mut rng = TestRng::new(0xA0E5 + case);
        let tree = rand_tree(&mut rng, 3, 4);
        let ro = ReadOnlyDoc::from_tree(&tree).expect("shred ro");
        check_axes(&ro, &tree, "readonly");
        let nv = NaiveDoc::from_tree(&tree).expect("shred naive");
        check_axes(&nv, &tree, "naive");
        for cfg in [
            PageConfig::new(4, 50).unwrap(),
            PageConfig::new(16, 75).unwrap(),
        ] {
            let up = PagedDoc::from_tree(&tree, cfg).expect("shred paged");
            check_axes(&up, &tree, "paged");
        }
    }
}

/// Same oracle after punching holes: delete a subtree from the paged
/// store, re-shred the expected tree, and compare every axis again.
#[test]
fn axes_match_dom_oracle_after_delete() {
    for case in 0..24u64 {
        let mut rng = TestRng::new(0xDE1E7E + case);
        let tree = rand_tree(&mut rng, 3, 4);
        let victim_seed = rng.below(32);
        let cfg = PageConfig::new(8, 75).unwrap();
        let mut up = PagedDoc::from_tree(&tree, cfg).expect("shred");
        // Pick a deletable node (any non-root).
        let pres = dense_rank_map(&up);
        if pres.len() <= 1 {
            continue;
        }
        let victim_pre = pres[1 + victim_seed % (pres.len() - 1)];
        let victim = up.pre_to_node(victim_pre).unwrap();
        up.delete(victim).expect("delete succeeds");
        mbxq_storage::invariants::check_paged(&up).expect("invariants after delete");
        // Build the expected tree by replaying on the DOM.
        let mut expected = tree.clone();
        {
            // victim's dense index:
            let mut order = Vec::new();
            flatten(&tree, &mut order);
            let victim_idx = pres.iter().position(|&p| p == victim_pre).unwrap();
            fn remove_at(node: &mut Node, target: usize, next: &mut usize) -> bool {
                let children = match node {
                    Node::Element { children, .. } => children,
                    _ => return false,
                };
                let mut i = 0;
                while i < children.len() {
                    *next += 1;
                    let this_idx = *next - 1;
                    if this_idx == target {
                        children.remove(i);
                        return true;
                    }
                    if remove_at(&mut children[i], target, next) {
                        return true;
                    }
                    i += 1;
                }
                false
            }
            let mut next = 1;
            assert!(remove_at(&mut expected, victim_idx, &mut next));
        }
        assert_eq!(
            mbxq_storage::serialize::to_xml(&up).unwrap(),
            to_xml_string(&expected)
        );
        check_axes(&up, &expected, "paged-after-delete");
    }
}
