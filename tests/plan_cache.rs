//! Regression tests for the per-store plan cache: one compile per
//! query text, invalidation across `layout_epoch` bumps (vacuum), and
//! correct results through cached plans before and after updates.

use mbxq::{PageConfig, PagedDoc, Store, StoreConfig, Wal, XPath};
use mbxq_xpath::Value;

const DOC: &str = r#"<site><people><person id="p0"><name>Ann</name></person><person id="p1"><name>Bob</name></person></people></site>"#;

fn store() -> Store {
    let doc = PagedDoc::parse_str(DOC, PageConfig::new(8, 75).unwrap()).unwrap();
    Store::open(doc, Wal::in_memory(), StoreConfig::default())
}

#[test]
fn same_query_twice_compiles_once() {
    let s = store();
    assert_eq!(s.query("count(//person)").unwrap(), Value::Number(2.0));
    assert_eq!(s.query("count(//person)").unwrap(), Value::Number(2.0));
    let stats = s.plan_cache_stats();
    assert_eq!(stats.misses, 1, "second use must hit the cache");
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.entries, 1);
    // A different text is its own entry.
    s.query("//person/name").unwrap();
    assert_eq!(s.plan_cache_stats().entries, 2);
}

#[test]
fn vacuum_bumps_the_epoch_and_invalidates() {
    let s = store();
    s.query("count(//person)").unwrap();
    let epoch_before = s.layout_epoch();
    s.vacuum().unwrap();
    assert!(
        s.layout_epoch() > epoch_before,
        "vacuum must bump the epoch"
    );
    assert_eq!(s.query("count(//person)").unwrap(), Value::Number(2.0));
    let stats = s.plan_cache_stats();
    assert_eq!(
        stats.misses, 2,
        "an epoch bump must force recompilation (got {stats:?})"
    );
    assert_eq!(stats.entries, 1, "the stale entry is replaced, not kept");
    // The recompiled entry is cached again.
    s.query("count(//person)").unwrap();
    assert_eq!(s.plan_cache_stats().hits, 1);
}

#[test]
fn cached_plans_see_fresh_snapshots() {
    // The cache stores *plans*, not results: a commit between two uses
    // of the same text must be visible to the second use.
    let s = store();
    assert_eq!(s.query("count(//person)").unwrap(), Value::Number(2.0));
    let mut t = s.begin();
    let people = t.select(&XPath::parse("/site/people").unwrap()).unwrap();
    let frag = mbxq::XmlDocument::parse_fragment("<person id=\"p2\"/>").unwrap();
    t.insert(mbxq::InsertPosition::LastChildOf(people[0]), &frag)
        .unwrap();
    t.commit().unwrap();
    assert_eq!(s.query("count(//person)").unwrap(), Value::Number(3.0));
    assert_eq!(s.plan_cache_stats().hits, 1, "still served from the cache");
}

/// At the capacity, the cache evicts single LRU entries — a hot query
/// used throughout an eviction storm of one-shot texts must never be
/// recompiled, and the evictions are counted.
#[test]
fn hot_query_survives_an_eviction_storm() {
    const CAP: usize = 1024; // Store::PLAN_CACHE_CAP
    let s = store();
    let hot = "count(//person)";
    assert_eq!(s.query(hot).unwrap(), Value::Number(2.0));
    // 1.5x the capacity of distinct one-shot texts, touching the hot
    // query between every few of them so it stays recently used.
    let storm = CAP + CAP / 2;
    for i in 0..storm {
        let cold = format!("count(//person[@id = \"nope{i}\"])");
        assert_eq!(s.query(&cold).unwrap(), Value::Number(0.0));
        if i % 3 == 0 {
            s.query(hot).unwrap();
        }
    }
    let stats = s.plan_cache_stats();
    assert_eq!(
        stats.misses,
        1 + storm as u64,
        "the hot query must compile exactly once: {stats:?}"
    );
    assert!(stats.hits >= (storm / 3) as u64, "{stats:?}");
    assert!(
        stats.evictions > 0 && stats.evictions as usize >= storm - CAP,
        "single-entry evictions must be counted: {stats:?}"
    );
    assert!(stats.entries <= CAP, "{stats:?}");
    // And it still answers from the cache afterwards.
    let hits_before = s.plan_cache_stats().hits;
    s.query(hot).unwrap();
    assert_eq!(s.plan_cache_stats().hits, hits_before + 1);
}

#[test]
fn query_nodes_pins_results_by_node_id() {
    let s = store();
    let nodes = s.query_nodes("//person").unwrap();
    assert_eq!(nodes.len(), 2);
    // Node ids stay valid across a vacuum (pre ranks may not).
    s.vacuum().unwrap();
    let snap = s.snapshot();
    for n in nodes {
        snap.node_to_pre(n).expect("node id survives vacuum");
    }
}
