//! Reader isolation under concurrent commits, checkpoints and vacuum.
//!
//! The tentpole guarantee of the short-publish pipeline: readers take
//! [`mbxq::Store::snapshot`] through a lock-free cell and keep a frozen,
//! fully consistent version for as long as they like — no commit,
//! checkpoint truncation, pool compaction or page reorganization may
//! ever show through a pinned snapshot, and every version the store
//! *publishes* must be invariant-clean the moment it appears.

mod common;

use common::sectioned_xml;
use mbxq::{
    AncestorLockMode, InsertPosition, PageConfig, PagedDoc, Store, StoreConfig, TxnError, Wal,
    XPath,
};
use mbxq_xml::Document;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

#[test]
fn pinned_snapshots_never_change_mid_query() {
    let store = Store::open(
        PagedDoc::parse_str(
            &sectioned_xml(4, 60, "<t>x</t>"),
            PageConfig::new(32, 75).unwrap(),
        )
        .unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_secs(5),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    );
    let stop = AtomicBool::new(false);
    let snapshots_checked = AtomicU64::new(0);
    let versions_checked = AtomicU64::new(0);
    let maintenance_runs = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Readers: pin a snapshot, remember its serialization and a
        // query answer, then re-ask both repeatedly while the world
        // churns. Any drift means a published version leaked into a
        // pinned one.
        for r in 0..3usize {
            let store = &store;
            let stop = &stop;
            let snapshots_checked = &snapshots_checked;
            s.spawn(move || {
                let count_p = XPath::parse("count(//p)").unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let snap = store.snapshot();
                    let frozen_xml = mbxq_storage::serialize::to_xml(snap.as_ref()).unwrap();
                    let frozen_count = count_p.eval(snap.as_ref(), &[0]).unwrap();
                    for _ in 0..10 {
                        assert_eq!(
                            count_p.eval(snap.as_ref(), &[0]).unwrap(),
                            frozen_count,
                            "reader {r}: query answer drifted inside one snapshot"
                        );
                    }
                    assert_eq!(
                        mbxq_storage::serialize::to_xml(snap.as_ref()).unwrap(),
                        frozen_xml,
                        "reader {r}: snapshot serialization drifted"
                    );
                    snapshots_checked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Version auditor: every published version must pass the full
        // structural invariant check the instant it is visible.
        {
            let store = &store;
            let stop = &stop;
            let versions_checked = &versions_checked;
            s.spawn(move || {
                let mut last_stamp = u64::MAX;
                while !stop.load(Ordering::Relaxed) {
                    let stamp = store.version_stamp();
                    if stamp != last_stamp {
                        last_stamp = stamp;
                        mbxq_storage::invariants::check_paged(store.snapshot().as_ref())
                            .unwrap_or_else(|e| panic!("published version {stamp} corrupt: {e}"));
                        versions_checked.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Maintenance: checkpoints (log truncation + pool compaction)
        // and vacuums (page reorganization) interleave with everything.
        {
            let store = &store;
            let stop = &stop;
            let maintenance_runs = &maintenance_runs;
            s.spawn(move || {
                let mut flip = false;
                while !stop.load(Ordering::Relaxed) {
                    flip = !flip;
                    let outcome = if flip {
                        store.checkpoint().map(|_| ())
                    } else {
                        match store.vacuum() {
                            // Writers in flight — fine, try again later.
                            Err(TxnError::Busy { .. }) => Ok(()),
                            other => other.map(|_| ()),
                        }
                    };
                    outcome.unwrap_or_else(|e| panic!("maintenance failed: {e}"));
                    maintenance_runs.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        // Writers: sectioned commit traffic (inserts + deletes), with
        // retries when a vacuum invalidates a stale transaction.
        let mut handles = Vec::new();
        for w in 0..2usize {
            let store = &store;
            handles.push(s.spawn(move || {
                let path = XPath::parse(&format!("/root/s{w}")).unwrap();
                let mine = XPath::parse(&format!("/root/s{w}/p[@w='{w}']")).unwrap();
                let mut i = 0usize;
                let mut committed = 0usize;
                while committed < 40 {
                    i += 1;
                    let mut t = store.begin();
                    let staged = (|| -> Result<(), TxnError> {
                        if i.is_multiple_of(5) {
                            let victims = t.select(&mine)?;
                            if let Some(&v) = victims.first() {
                                t.delete(v)?;
                                return Ok(());
                            }
                        }
                        let target = t.select(&path)?[0];
                        let frag = Document::parse_fragment(&format!(
                            "<p id=\"w{w}g{i}\" w=\"{w}\"><t>y</t></p>"
                        ))
                        .unwrap();
                        t.insert(InsertPosition::LastChildOf(target), &frag)?;
                        Ok(())
                    })();
                    match staged {
                        Ok(()) => {
                            if t.commit().is_ok() {
                                committed += 1;
                            }
                        }
                        // LayoutChanged (vacuum won the race) and lock
                        // timeouts: retry on a fresh snapshot.
                        Err(_) => t.abort(),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        snapshots_checked.load(Ordering::Relaxed) > 0,
        "readers must have validated at least one pinned snapshot"
    );
    assert!(
        versions_checked.load(Ordering::Relaxed) > 0,
        "the auditor must have checked at least one published version"
    );
    assert!(
        maintenance_runs.load(Ordering::Relaxed) > 0,
        "checkpoint/vacuum must have interleaved with the workload"
    );
    assert_eq!(store.locked_pages(), 0);
    mbxq_storage::invariants::check_paged(store.snapshot().as_ref()).unwrap();
}

/// A snapshot taken *before* a checkpoint and a vacuum still serializes
/// to the same bytes afterwards — structure-preserving maintenance can
/// never show through a pinned `Arc`.
#[test]
fn snapshots_survive_checkpoint_and_vacuum_exactly() {
    let store = Store::open(
        PagedDoc::parse_str(
            &sectioned_xml(2, 30, "<t>x</t>"),
            PageConfig::new(16, 75).unwrap(),
        )
        .unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(500),
            validate_on_commit: true,
            ..StoreConfig::default()
        },
    );
    // Fragment the store so the vacuum has real work.
    let mut t = store.begin();
    let victims = t.select(&XPath::parse("/root/s0/p").unwrap()).unwrap();
    for &v in victims.iter().take(10) {
        t.delete(v).unwrap();
    }
    t.commit().unwrap();

    let pinned = store.snapshot();
    let frozen = mbxq_storage::serialize::to_xml(pinned.as_ref()).unwrap();
    let stamp_before = store.version_stamp();

    store.checkpoint().unwrap();
    store.vacuum().unwrap();
    let mut t = store.begin();
    let target = t.select(&XPath::parse("/root/s1").unwrap()).unwrap()[0];
    let frag = Document::parse_fragment("<p id=\"after\"/>").unwrap();
    t.insert(InsertPosition::LastChildOf(target), &frag)
        .unwrap();
    t.commit().unwrap();

    assert_eq!(
        mbxq_storage::serialize::to_xml(pinned.as_ref()).unwrap(),
        frozen,
        "pinned snapshot changed across checkpoint + vacuum + commit"
    );
    assert!(
        store.version_stamp() >= stamp_before + 3,
        "checkpoint, vacuum and the commit each publish a new version"
    );
    assert!(!frozen.contains("after"));
    assert!(mbxq_storage::serialize::to_xml(store.snapshot().as_ref())
        .unwrap()
        .contains("after"));
}
