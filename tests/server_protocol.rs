//! Wire-protocol robustness: torn frames, oversized length prefixes,
//! unknown opcodes, bad handshakes and mid-stream disconnects must
//! error (or close) the **one** offending session — the accept loop
//! keeps serving, well-behaved sessions keep working, and no session
//! wreckage leaks a [`Shard`](mbxq::Shard) handle (proved by
//! [`Catalog::export`] succeeding after the storm: export requires the
//! catalog's `Arc` to be the last one standing).

use mbxq::{Catalog, CatalogConfig, PageConfig, StoreConfig, TreeView};
use mbxq_server::{Client, ErrorCode, NetError, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn config() -> CatalogConfig {
    CatalogConfig {
        store: StoreConfig {
            lock_timeout: Duration::from_millis(500),
            validate_on_commit: true,
            query_threads: 2,
            ..StoreConfig::default()
        },
        page: PageConfig::new(16, 75).unwrap(),
    }
}

/// A raw (non-[`Client`]) connection that has completed the handshake.
fn raw_handshaken(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"MBXQ\x01\x01\x00\x00\x00").unwrap();
    let mut reply = [0u8; 8];
    s.read_exact(&mut reply).unwrap();
    assert_eq!(&reply[..4], b"MBXQ");
    assert_eq!(u32::from_le_bytes(reply[4..].try_into().unwrap()), 1);
    s
}

/// Reads one reply frame from a raw stream.
fn raw_read_frame(s: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    s.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    s.read_exact(&mut payload).unwrap();
    payload
}

/// Expects the peer to close: reads must hit EOF (within the read
/// timeout set on the stream).
fn expect_eof(s: &mut TcpStream) {
    use std::io::ErrorKind;
    let mut buf = [0u8; 64];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue, // drain whatever was in flight
            // A server that drops the socket with client bytes still
            // unread sends RST, which surfaces as a reset, not EOF —
            // either way the session is gone, which is what we assert.
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                return;
            }
            Err(e) => panic!("expected EOF, got error {e}"),
        }
    }
}

#[test]
fn malformed_traffic_storm_leaves_server_and_catalog_intact() {
    let cat = Arc::new(Catalog::in_memory(config()));
    cat.create_doc("doc", "<r><x/><x/></r>").unwrap();
    let server = Server::start(
        cat.clone(),
        ServerConfig {
            workers: 4,
            max_frame: 4096,
            frame_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // A well-behaved session that must survive the whole storm.
    let mut good = Client::connect(addr).unwrap();
    assert_eq!(good.query_nodes("doc", "//x", None).unwrap().len(), 2);

    // 1. Garbage handshake magic: closed without a frame.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"HTTP/1.1 GET /\r\n").unwrap();
        expect_eof(&mut s);
    }

    // 2. Version negotiation with no overlap: answered `0`, closed.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"MBXQ\x01\x63\x00\x00\x00").unwrap(); // v99 only
        let mut reply = [0u8; 8];
        s.read_exact(&mut reply).unwrap();
        assert_eq!(&reply[..4], b"MBXQ");
        assert_eq!(u32::from_le_bytes(reply[4..].try_into().unwrap()), 0);
        expect_eof(&mut s);
    }

    // 3. Oversized length prefix: a structured FrameTooLarge error,
    //    then the session is closed.
    {
        let mut s = raw_handshaken(addr);
        s.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
        let payload = raw_read_frame(&mut s);
        assert_eq!(payload[0], 0x81, "error response");
        assert_eq!(u16::from_le_bytes(payload[1..3].try_into().unwrap()), 8);
        expect_eof(&mut s);
    }

    // 4. Torn frame: a length prefix promising 100 bytes, 10 delivered,
    //    connection held open. The frame timeout reaps the session.
    {
        let mut s = raw_handshaken(addr);
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[0u8; 10]).unwrap();
        expect_eof(&mut s); // no reply owed for an unfinished frame
    }

    // 5. Truncated length prefix itself (2 of 4 bytes), held open.
    {
        let mut s = raw_handshaken(addr);
        s.write_all(&[7u8, 0]).unwrap();
        expect_eof(&mut s);
    }

    // 6. Unknown opcode in a well-formed frame: structured error, close.
    {
        let mut s = raw_handshaken(addr);
        s.write_all(&1u32.to_le_bytes()).unwrap();
        s.write_all(&[0x7f]).unwrap();
        let payload = raw_read_frame(&mut s);
        assert_eq!(payload[0], 0x81);
        assert_eq!(u16::from_le_bytes(payload[1..3].try_into().unwrap()), 2);
        expect_eof(&mut s);
    }

    // 7. Well-formed frame, garbage fields (a CreateDoc cut short):
    //    protocol error, close.
    {
        let mut s = raw_handshaken(addr);
        let truncated = [0x02u8, 0xff, 0xff, 0xff]; // opcode + 3 length bytes
        s.write_all(&(truncated.len() as u32).to_le_bytes())
            .unwrap();
        s.write_all(&truncated).unwrap();
        let payload = raw_read_frame(&mut s);
        assert_eq!(payload[0], 0x81);
        assert_eq!(u16::from_le_bytes(payload[1..3].try_into().unwrap()), 1);
        expect_eof(&mut s);
    }

    // 8. Mid-stream disconnects at every rude moment, some while the
    //    session holds an open cursor (whose Shard snapshot must not
    //    leak).
    for cut in 0..3 {
        let mut s = raw_handshaken(addr);
        // Open a cursor so the session has state to clean up.
        let q = mbxq_server::Request::Query(mbxq_server::QuerySpec::new(
            mbxq_server::QueryTarget::Doc("doc".to_string()),
            "//x",
        ));
        let enc = q.encode();
        s.write_all(&(enc.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&enc).unwrap();
        let header = raw_read_frame(&mut s);
        assert_eq!(header[0], 0x85, "cursor header");
        match cut {
            0 => {}                                          // vanish with the cursor open
            1 => s.write_all(&50u32.to_le_bytes()).unwrap(), // torn next frame
            2 => s.write_all(&[1, 0]).unwrap(),              // torn prefix
            _ => unreachable!(),
        }
        drop(s); // rude disconnect
    }

    // The well-behaved session never noticed.
    assert_eq!(good.query_nodes("doc", "//x", None).unwrap().len(), 2);
    // And the accept loop still takes new connections.
    let mut fresh = Client::connect(addr).unwrap();
    fresh.ping().unwrap();
    match fresh.query_nodes("missing", "//x", None) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownDocument),
        other => panic!("expected UnknownDocument, got {other:?}"),
    }

    // No leaked Shard handles: once our sessions are gone, the catalog
    // holds the only Arc and export succeeds. Sessions die
    // asynchronously (torn frames only reap at the frame timeout), so
    // poll briefly.
    drop(good);
    drop(fresh);
    let mut exported = None;
    for _ in 0..200 {
        match cat.export("doc") {
            Ok(parts) => {
                exported = Some(parts);
                break;
            }
            Err(mbxq::TxnError::DocumentInUse { .. }) => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(other) => panic!("unexpected export error: {other}"),
        }
    }
    let (doc, _wal) = exported.expect("storm leaked a Shard handle: export kept failing");
    assert_eq!(doc.used_count(), 3, "r + two x elements");
    server.shutdown();
}

/// A slow-loris client (bytes trickling in under the frame timeout)
/// must not wedge the worker pool for everyone else.
#[test]
fn torn_frames_do_not_block_other_sessions() {
    let cat = Arc::new(Catalog::in_memory(config()));
    cat.create_doc("doc", "<r><x/></r>").unwrap();
    let server = Server::start(
        cat.clone(),
        ServerConfig {
            workers: 2,
            frame_timeout: Duration::from_millis(250),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Two lorises occupy both workers with unfinished frames…
    let mut lorises: Vec<TcpStream> = (0..2).map(|_| raw_handshaken(server.addr())).collect();
    for s in &mut lorises {
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(&[0u8; 4]).unwrap();
    }
    // …but the frame timeout reaps them, so a real client (queued until
    // a worker frees up) gets served.
    let mut cl = Client::connect(server.addr()).unwrap();
    cl.ping().unwrap();
    assert_eq!(cl.query_nodes("doc", "//x", None).unwrap().len(), 1);
    server.shutdown();
}
