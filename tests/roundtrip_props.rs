//! Property tests on the storage substrate:
//!
//! * `serialize ∘ parse = id` for the XML layer on random trees;
//! * shredding any tree into any schema and serializing it back yields
//!   the same document;
//! * the classic pre/post invariants of Figure 2 hold on the dense
//!   encoding (`post = pre + size - level` is a permutation of ranks);
//! * the paged store passes the deep invariant checker for every page
//!   configuration.

mod common;

use common::{page_configs, to_xml_string, tree_strategy};
use mbxq::{NaiveDoc, PagedDoc, ReadOnlyDoc, TreeView};
use mbxq_xml::Document;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_parse_serialize_round_trip(tree in tree_strategy(4, 4)) {
        let xml = to_xml_string(&tree);
        let parsed = Document::parse(&xml).expect("serializer output parses");
        prop_assert_eq!(&parsed.root, &tree);
        // And a second round trip is byte-stable.
        let xml2 = to_xml_string(&parsed.root);
        prop_assert_eq!(xml, xml2);
    }

    #[test]
    fn shred_serialize_round_trip_all_schemas(tree in tree_strategy(4, 4)) {
        let xml = to_xml_string(&tree);
        let ro = ReadOnlyDoc::from_tree(&tree).expect("shred ro");
        prop_assert_eq!(mbxq_storage::serialize::to_xml(&ro).unwrap(), xml.clone());
        let nv = NaiveDoc::from_tree(&tree).expect("shred naive");
        prop_assert_eq!(mbxq_storage::serialize::to_xml(&nv).unwrap(), xml.clone());
        for cfg in page_configs() {
            let up = PagedDoc::from_tree(&tree, cfg).expect("shred paged");
            mbxq_storage::invariants::check_paged(&up).expect("fresh invariants");
            prop_assert_eq!(
                mbxq_storage::serialize::to_xml(&up).unwrap(),
                xml.clone(),
                "page config {:?}", cfg
            );
        }
    }

    #[test]
    fn pre_post_plane_invariants(tree in tree_strategy(4, 4)) {
        let ro = ReadOnlyDoc::from_tree(&tree).expect("shred");
        let n = ro.len() as u64;
        // post = pre + size - level is a permutation of 0..n (each tag
        // closes exactly once).
        let mut posts: Vec<u64> = (0..n).map(|p| ro.post(p).unwrap()).collect();
        posts.sort_unstable();
        prop_assert_eq!(posts, (0..n).collect::<Vec<_>>());
        // Region nesting: a child's region lies inside its parent's.
        for pre in 0..n {
            if let Some(parent) = ro.parent_of(pre) {
                prop_assert!(ro.region_end(pre) <= ro.region_end(parent));
                prop_assert!(parent < pre);
            }
            // size counts exactly the tuples of the region.
            let end = ro.region_end(pre);
            prop_assert_eq!(end - pre - 1, TreeView::size(&ro, pre));
        }
    }

    #[test]
    fn node_pre_translation_is_bijective(tree in tree_strategy(4, 4)) {
        for cfg in page_configs() {
            let up = PagedDoc::from_tree(&tree, cfg).expect("shred");
            let mut p = 0;
            while let Some(q) = up.next_used_at_or_after(p) {
                let node = up.pre_to_node(q).expect("used slot has a node");
                prop_assert_eq!(up.node_to_pre(node).unwrap(), q);
                p = q + 1;
            }
        }
    }

    #[test]
    fn string_values_match_across_schemas(tree in tree_strategy(3, 3)) {
        let ro = ReadOnlyDoc::from_tree(&tree).expect("shred ro");
        let up = PagedDoc::from_tree(&tree, mbxq::PageConfig::new(8, 75).unwrap()).unwrap();
        prop_assert_eq!(ro.string_value(0), up.string_value(up.root_pre().unwrap()));
    }
}
