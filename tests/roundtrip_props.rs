//! Property tests on the storage substrate:
//!
//! * `serialize ∘ parse = id` for the XML layer on random trees;
//! * shredding any tree into any schema and serializing it back yields
//!   the same document;
//! * the classic pre/post invariants of Figure 2 hold on the dense
//!   encoding (`post = pre + size - level` is a permutation of ranks);
//! * the paged store passes the deep invariant checker for every page
//!   configuration.

mod common;

use common::{page_configs, rand_tree, to_xml_string, TestRng};
use mbxq::{NaiveDoc, PagedDoc, ReadOnlyDoc, TreeView};
use mbxq_xml::Document;

#[test]
fn xml_parse_serialize_round_trip() {
    for case in 0..64u64 {
        let tree = rand_tree(&mut TestRng::new(0x1001 + case), 4, 4);
        let xml = to_xml_string(&tree);
        let parsed = Document::parse(&xml).expect("serializer output parses");
        assert_eq!(parsed.root, tree, "case {case}");
        // And a second round trip is byte-stable.
        let xml2 = to_xml_string(&parsed.root);
        assert_eq!(xml, xml2, "case {case}");
    }
}

#[test]
fn shred_serialize_round_trip_all_schemas() {
    for case in 0..64u64 {
        let tree = rand_tree(&mut TestRng::new(0x2002 + case), 4, 4);
        let xml = to_xml_string(&tree);
        let ro = ReadOnlyDoc::from_tree(&tree).expect("shred ro");
        assert_eq!(mbxq_storage::serialize::to_xml(&ro).unwrap(), xml);
        let nv = NaiveDoc::from_tree(&tree).expect("shred naive");
        assert_eq!(mbxq_storage::serialize::to_xml(&nv).unwrap(), xml);
        for cfg in page_configs() {
            let up = PagedDoc::from_tree(&tree, cfg).expect("shred paged");
            mbxq_storage::invariants::check_paged(&up).expect("fresh invariants");
            assert_eq!(
                mbxq_storage::serialize::to_xml(&up).unwrap(),
                xml,
                "page config {cfg:?}"
            );
        }
    }
}

#[test]
fn pre_post_plane_invariants() {
    for case in 0..64u64 {
        let tree = rand_tree(&mut TestRng::new(0x3003 + case), 4, 4);
        let ro = ReadOnlyDoc::from_tree(&tree).expect("shred");
        let n = ro.len() as u64;
        // post = pre + size - level is a permutation of 0..n (each tag
        // closes exactly once).
        let mut posts: Vec<u64> = (0..n).map(|p| ro.post(p).unwrap()).collect();
        posts.sort_unstable();
        assert_eq!(posts, (0..n).collect::<Vec<_>>());
        // Region nesting: a child's region lies inside its parent's.
        for pre in 0..n {
            if let Some(parent) = ro.parent_of(pre) {
                assert!(ro.region_end(pre) <= ro.region_end(parent));
                assert!(parent < pre);
            }
            // size counts exactly the tuples of the region.
            let end = ro.region_end(pre);
            assert_eq!(end - pre - 1, TreeView::size(&ro, pre));
        }
    }
}

#[test]
fn node_pre_translation_is_bijective() {
    for case in 0..64u64 {
        let tree = rand_tree(&mut TestRng::new(0x4004 + case), 4, 4);
        for cfg in page_configs() {
            let up = PagedDoc::from_tree(&tree, cfg).expect("shred");
            let mut p = 0;
            while let Some(q) = up.next_used_at_or_after(p) {
                let node = up.pre_to_node(q).expect("used slot has a node");
                assert_eq!(up.node_to_pre(node).unwrap(), q);
                p = q + 1;
            }
        }
    }
}

#[test]
fn string_values_match_across_schemas() {
    for case in 0..64u64 {
        let tree = rand_tree(&mut TestRng::new(0x5005 + case), 3, 3);
        let ro = ReadOnlyDoc::from_tree(&tree).expect("shred ro");
        let up = PagedDoc::from_tree(&tree, mbxq::PageConfig::new(8, 75).unwrap()).unwrap();
        assert_eq!(ro.string_value(0), up.string_value(up.root_pre().unwrap()));
    }
}
