//! Serializability oracle for the short-publish commit pipeline
//! (seeded-loop style, like the rest of the suite).
//!
//! Each seed drives several writer threads through a deterministic
//! per-thread schedule of insert/delete/attribute transactions over a
//! sectioned document — some seeds give every writer its own section
//! (disjoint page sets, all commits succeed), others make writers share
//! sections (overlapping page sets, so lock conflicts force timeouts and
//! retries). The actual thread interleaving is whatever the scheduler
//! produces; the property is interleaving-independent:
//!
//! **Whatever commit order the race decided, replaying the WAL's commit
//! records single-threaded on a clone of the genesis document must
//! reproduce the concurrent outcome exactly.** That is serializability
//! (the concurrent execution ≡ a serial one) and at the same time the
//! recovery contract (log order may differ from publish order for
//! concurrent page-disjoint commits; commutativity makes both converge).

mod common;

use common::{sectioned_xml, TestRng};
use mbxq::{
    AncestorLockMode, InsertPosition, PageConfig, PagedDoc, Store, StoreConfig, Wal, XPath,
};
use mbxq_txn::wal::WalRecord;
use mbxq_xml::Document;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn cfg() -> PageConfig {
    PageConfig::new(64, 80).unwrap()
}

/// One writer's deterministic schedule: `txns` transactions of 1–3 ops
/// against `section`, with ids derived from `(seed, writer)` so every
/// insert is globally unique and attributable.
#[allow(clippy::too_many_arguments)]
fn run_writer(store: &Store, seed: u64, writer: usize, section: usize, txns: usize) -> (u64, u64) {
    let mut rng = TestRng::new(seed ^ (writer as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let section_path = XPath::parse(&format!("/root/s{section}")).unwrap();
    let my_items = XPath::parse(&format!("/root/s{section}/p[@w='w{writer}']")).unwrap();
    let (mut committed, mut aborted) = (0u64, 0u64);
    for txn_no in 0..txns {
        let mut t = store.begin();
        let n_ops = 1 + rng.below(3);
        let mut ok = true;
        for op_no in 0..n_ops {
            let outcome = match rng.below(4) {
                0 | 1 => match t.select(&section_path) {
                    Ok(v) if !v.is_empty() => {
                        let frag = Document::parse_fragment(&format!(
                            "<p id=\"g{seed}w{writer}t{txn_no}o{op_no}\" w=\"w{writer}\"/>"
                        ))
                        .unwrap();
                        t.insert(InsertPosition::LastChildOf(v[0]), &frag)
                    }
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                },
                2 => match t.select(&my_items) {
                    // Delete one of this writer's own earlier inserts
                    // (never another writer's, so a successful commit
                    // can't invalidate a concurrent schedule's target).
                    Ok(v) if !v.is_empty() => t.delete(v[rng.below(v.len())]),
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                },
                _ => match t.select(&my_items) {
                    Ok(v) if !v.is_empty() => {
                        let victim = v[rng.below(v.len())];
                        t.set_attribute(victim, &mbxq::QName::local("rev"), &format!("r{txn_no}"))
                    }
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                },
            };
            if outcome.is_err() {
                ok = false;
                break;
            }
        }
        if !ok {
            t.abort();
            aborted += 1;
            continue;
        }
        // An all-no-op transaction (every op skipped on an empty
        // selection) commits without logging — don't count it against
        // the one-record-per-commit bookkeeping.
        let had_ops = t.staged_ops() > 0;
        match t.commit() {
            Ok(_) if had_ops => committed += 1,
            Ok(_) => {}
            Err(_) => aborted += 1,
        }
    }
    (committed, aborted)
}

/// Runs one seeded concurrent schedule and checks the oracle.
/// `sections < writers` makes writers share sections (overlapping page
/// sets → lock conflicts, timeouts, aborts); `sections == writers`
/// keeps them disjoint.
fn check_seed(seed: u64, writers: usize, sections: usize) {
    let overlapping = sections < writers;
    let genesis = sectioned_xml(sections, 40, "");
    let store = Store::open(
        PagedDoc::parse_str(&genesis, cfg()).unwrap(),
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_millis(if overlapping { 150 } else { 5000 }),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    );
    let committed = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..writers {
            let store = &store;
            let committed = &committed;
            let aborted = &aborted;
            scope.spawn(move || {
                let (c, a) = run_writer(store, seed, w, w % sections, 12);
                committed.fetch_add(c, Ordering::Relaxed);
                aborted.fetch_add(a, Ordering::Relaxed);
            });
        }
    });
    let committed = committed.load(Ordering::Relaxed);
    assert_eq!(
        store.locked_pages(),
        0,
        "seed {seed}: schedule must release every lock"
    );
    let live = mbxq_storage::serialize::to_xml(store.snapshot().as_ref()).unwrap();
    mbxq_storage::invariants::check_paged(store.snapshot().as_ref()).unwrap();

    // The oracle: replay the WAL's commit records single-threaded, in
    // log order, onto a fresh shredding of the genesis document.
    let records = mbxq_txn::wal::decode_log(&store.wal_raw().unwrap()).unwrap();
    assert_eq!(
        records.len() as u64,
        committed,
        "seed {seed}: every successful commit logs exactly one record"
    );
    let mut replay = PagedDoc::parse_str(&genesis, cfg()).unwrap();
    for record in &records {
        match record {
            WalRecord::Commit { ops, .. } => {
                for op in ops {
                    op.apply(&mut replay).unwrap_or_else(|e| {
                        panic!("seed {seed}: replayed op failed: {e}");
                    });
                }
            }
            other => panic!("seed {seed}: unexpected record {other:?}"),
        }
    }
    mbxq_storage::invariants::check_paged(&replay).unwrap();
    assert_eq!(
        mbxq_storage::serialize::to_xml(&replay).unwrap(),
        live,
        "seed {seed} (writers={writers}, overlapping={overlapping}): \
         single-threaded replay diverged from the concurrent outcome"
    );
}

#[test]
fn disjoint_schedules_replay_identically() {
    for seed in 0..6u64 {
        check_seed(seed, 4, 4);
    }
}

#[test]
fn overlapping_schedules_replay_identically() {
    // Two writers per section: timeouts and aborted transactions are
    // part of the schedule; only the committed survivors must replay.
    for seed in 0..6u64 {
        check_seed(seed, 4, 2);
    }
}

#[test]
fn many_writers_one_hot_section() {
    // Maximum contention: every writer fights over one section. Most
    // transactions time out; whatever commits must still replay exactly.
    for seed in 0..3u64 {
        check_seed(seed, 6, 1);
    }
}
