//! Robustness fuzzing: none of the parsers/decoders may panic on
//! arbitrary input — they either produce a value or a structured error.
//! (The storage engine is allowed to *reject* garbage, never to crash
//! on it.)

mod common;

use mbxq::XPath;
use mbxq_txn::wal::decode_log;
use mbxq_xml::Document;
use mbxq_xupdate::parse_modifications;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let _ = Document::parse(&input);
    }

    #[test]
    fn xml_parser_never_panics_on_taglike_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "<a>", "</a>", "<b x='1'>", "</b>", "text", "<!--", "-->",
                "<![CDATA[", "]]>", "&amp;", "&", "<?", "?>", "<!DOCTYPE",
                "\"", "'", "<", ">", "/", "=",
            ]),
            0..24,
        )
    ) {
        let input: String = parts.concat();
        let _ = Document::parse(&input);
    }

    #[test]
    fn xpath_parser_never_panics(input in ".{0,120}") {
        let _ = XPath::parse(&input);
    }

    #[test]
    fn xpath_parser_never_panics_on_tokeny_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "/", "//", "..", ".", "@", "*", "[", "]", "(", ")", "|",
                "and", "or", "not", "person", "text()", "::", "child",
                "=", "!=", "<", "1.5", "'lit'", ",", "-", "+",
            ]),
            0..16,
        )
    ) {
        let input: String = parts.join("");
        let _ = XPath::parse(&input);
    }

    #[test]
    fn wal_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_log(&bytes);
    }

    #[test]
    fn wal_decoder_never_panics_on_recordish_text(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "W ", "1 ", "2 ", "999 ", "\n", "I ", "D ", "V ", "before ",
                "lastchild ", "4:<x/>", "0:", "99:", "\u{1f}", "<x/>", ":",
            ]),
            0..20,
        )
    ) {
        let input: String = parts.concat();
        let _ = decode_log(input.as_bytes());
    }

    #[test]
    fn xupdate_parser_never_panics(input in ".{0,200}") {
        let _ = parse_modifications(&input);
    }

    /// Valid XML that is not XUpdate must yield errors, not panics.
    #[test]
    fn xupdate_parser_rejects_random_xml(tree in common::tree_strategy(3, 3)) {
        let xml = common::to_xml_string(&tree);
        let _ = parse_modifications(&xml);
    }

    /// Random but *valid* XPath-shaped expressions evaluated against a
    /// real document: evaluation must never panic.
    #[test]
    fn xpath_eval_never_panics_on_valid_parse(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "//a", "/a", "a", "*", "..", ".", "@x", "text()",
                "[1]", "[last()]", "[@x='1']", "[a]",
            ]),
            1..6,
        ),
        tree in common::tree_strategy(3, 3),
    ) {
        let expr: String = parts.concat();
        if let Ok(path) = XPath::parse(&expr) {
            let doc = mbxq::ReadOnlyDoc::from_tree(&tree).unwrap();
            let _ = path.select_from_root(&doc);
        }
    }
}
