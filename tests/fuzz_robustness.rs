//! Robustness fuzzing: none of the parsers/decoders may panic on
//! arbitrary input — they either produce a value or a structured error.
//! (The storage engine is allowed to *reject* garbage, never to crash
//! on it.)

mod common;

use common::TestRng;
use mbxq::XPath;
use mbxq_txn::wal::decode_log;
use mbxq_xml::Document;
use mbxq_xupdate::parse_modifications;

/// Random string over a deliberately hostile alphabet (ASCII
/// punctuation, control bytes, multi-byte unicode).
fn rand_string(rng: &mut TestRng, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a',
        'b',
        'z',
        '0',
        '9',
        ' ',
        '\t',
        '\n',
        '<',
        '>',
        '/',
        '\\',
        '&',
        ';',
        '"',
        '\'',
        '=',
        '[',
        ']',
        '(',
        ')',
        '!',
        '?',
        '-',
        '.',
        ':',
        '@',
        '*',
        '|',
        '#',
        '%',
        '\u{0}',
        '\u{1f}',
        '\u{7f}',
        'é',
        '—',
        '世',
        '\u{1F600}',
    ];
    let len = rng.below(max_len + 1);
    (0..len).map(|_| *rng.pick(POOL)).collect()
}

fn concat_parts(rng: &mut TestRng, parts: &[&str], max_parts: usize) -> String {
    let n = rng.below(max_parts + 1);
    (0..n).map(|_| *rng.pick(parts)).collect()
}

#[test]
fn xml_parser_never_panics() {
    for case in 0..256u64 {
        let input = rand_string(&mut TestRng::new(0xF_0001 + case), 200);
        let _ = Document::parse(&input);
    }
}

#[test]
fn xml_parser_never_panics_on_taglike_soup() {
    const PARTS: &[&str] = &[
        "<a>",
        "</a>",
        "<b x='1'>",
        "</b>",
        "text",
        "<!--",
        "-->",
        "<![CDATA[",
        "]]>",
        "&amp;",
        "&",
        "<?",
        "?>",
        "<!DOCTYPE",
        "\"",
        "'",
        "<",
        ">",
        "/",
        "=",
    ];
    for case in 0..256u64 {
        let input = concat_parts(&mut TestRng::new(0xF_1001 + case), PARTS, 24);
        let _ = Document::parse(&input);
    }
}

#[test]
fn xpath_parser_never_panics() {
    for case in 0..256u64 {
        let input = rand_string(&mut TestRng::new(0xF_2001 + case), 120);
        let _ = XPath::parse(&input);
    }
}

#[test]
fn xpath_parser_never_panics_on_tokeny_soup() {
    const PARTS: &[&str] = &[
        "/", "//", "..", ".", "@", "*", "[", "]", "(", ")", "|", "and", "or", "not", "person",
        "text()", "::", "child", "=", "!=", "<", "1.5", "'lit'", ",", "-", "+",
    ];
    for case in 0..256u64 {
        let input = concat_parts(&mut TestRng::new(0xF_3001 + case), PARTS, 16);
        let _ = XPath::parse(&input);
    }
}

#[test]
fn wal_decoder_never_panics() {
    for case in 0..256u64 {
        let mut rng = TestRng::new(0xF_4001 + case);
        let len = rng.below(300);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        let _ = decode_log(&bytes);
    }
}

#[test]
fn wal_decoder_never_panics_on_recordish_text() {
    const PARTS: &[&str] = &[
        "W ",
        "1 ",
        "2 ",
        "999 ",
        "\n",
        "I ",
        "D ",
        "V ",
        "before ",
        "lastchild ",
        "4:<x/>",
        "0:",
        "99:",
        "\u{1f}",
        "<x/>",
        ":",
    ];
    for case in 0..256u64 {
        let input = concat_parts(&mut TestRng::new(0xF_5001 + case), PARTS, 20);
        let _ = decode_log(input.as_bytes());
    }
}

#[test]
fn xupdate_parser_never_panics() {
    for case in 0..256u64 {
        let input = rand_string(&mut TestRng::new(0xF_6001 + case), 200);
        let _ = parse_modifications(&input);
    }
}

/// Valid XML that is not XUpdate must yield errors, not panics.
#[test]
fn xupdate_parser_rejects_random_xml() {
    for case in 0..256u64 {
        let tree = common::rand_tree(&mut TestRng::new(0xF_7001 + case), 3, 3);
        let xml = common::to_xml_string(&tree);
        let _ = parse_modifications(&xml);
    }
}

/// Random but *valid* XPath-shaped expressions evaluated against a real
/// document: evaluation must never panic.
#[test]
fn xpath_eval_never_panics_on_valid_parse() {
    const PARTS: &[&str] = &[
        "//a", "/a", "a", "*", "..", ".", "@x", "text()", "[1]", "[last()]", "[@x='1']", "[a]",
    ];
    for case in 0..256u64 {
        let mut rng = TestRng::new(0xF_8001 + case);
        let n = 1 + rng.below(5);
        let expr: String = (0..n).map(|_| *rng.pick(PARTS)).collect();
        let tree = common::rand_tree(&mut rng, 3, 3);
        if let Ok(path) = XPath::parse(&expr) {
            let doc = mbxq::ReadOnlyDoc::from_tree(&tree).unwrap();
            let _ = path.select_from_root(&doc);
        }
    }
}
