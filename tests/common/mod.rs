//! Shared helpers for the integration test suite.
//!
//! The container build has no access to crates.io, so instead of
//! proptest these tests use a small deterministic PRNG and hand-rolled
//! generators: every `#[test]` loops over a fixed number of seeded
//! cases, which keeps failures reproducible (the seed is part of the
//! panic message).
#![allow(dead_code)] // each test binary uses a subset

use mbxq::{Node, PageConfig};

/// Page configurations exercised by cross-schema tests: tiny pages force
/// many page boundaries; big pages exercise the single-page paths.
pub fn page_configs() -> Vec<PageConfig> {
    vec![
        PageConfig::new(4, 50).unwrap(),
        PageConfig::new(8, 88).unwrap(),
        PageConfig::new(16, 75).unwrap(),
        PageConfig::new(64, 80).unwrap(),
        PageConfig::new(1024, 100).unwrap(),
    ]
}

/// Deterministic test randomness — a thin convenience wrapper around
/// the engine's own seeded generator ([`mbxq_xmark::rng::StdRng`]), so
/// the workspace carries exactly one PRNG implementation.
#[derive(Debug, Clone)]
pub struct TestRng(mbxq_xmark::rng::StdRng);

impl TestRng {
    /// Creates a generator for `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng(mbxq_xmark::rng::StdRng::seed_from_u64(seed))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `0..n` (`n` > 0).
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    /// Uniform pick from a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }
}

/// Element/attribute names (small alphabet so random trees share names
/// and name tests actually select subsets).
pub fn rand_name(rng: &mut TestRng) -> String {
    (*rng.pick(&["a", "b", "c", "item", "name", "x"])).to_string()
}

/// Text content (includes XML-hostile characters).
pub fn rand_text(rng: &mut TestRng) -> String {
    (*rng.pick(&["t", "x < y", "a & b", "\"quoted\"", "uni—code", "  "])).to_string()
}

/// Random well-formed element tree of bounded depth and fan-out. Adjacent
/// text children are merged and attribute names deduplicated, matching
/// what the parser produces so round-trip comparisons see canonical
/// trees.
pub fn rand_tree(rng: &mut TestRng, max_depth: u32, max_children: usize) -> Node {
    fn element(rng: &mut TestRng, depth: u32, max_depth: u32, max_children: usize) -> Node {
        let name = rand_name(rng);
        let mut seen = std::collections::HashSet::new();
        let mut attributes = Vec::new();
        for _ in 0..rng.below(3) {
            let n = rand_name(rng);
            if seen.insert(n.clone()) {
                attributes.push((mbxq::QName::local(n), rand_text(rng)));
            }
        }
        let n_children = if depth >= max_depth {
            0
        } else {
            rng.below(max_children + 1)
        };
        let mut children: Vec<Node> = Vec::new();
        for _ in 0..n_children {
            let child = if depth + 1 >= max_depth || rng.chance(1, 3) {
                Node::text(rand_text(rng))
            } else {
                element(rng, depth + 1, max_depth, max_children)
            };
            match (children.last_mut(), child) {
                (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                (_, c) => children.push(c),
            }
        }
        Node::Element {
            name: mbxq::QName::local(name),
            attributes,
            children,
        }
    }
    element(rng, 0, max_depth, max_children)
}

/// Serializes a node to an XML string.
pub fn to_xml_string(node: &Node) -> String {
    let mut s = String::new();
    mbxq_xml::serialize_node(node, &mut s);
    s
}

/// Sectioned fixture document shared by the concurrency suites:
/// `<root><s0><p id="s0p0"/>…</s0><s1>…</s1>…</root>` with `per`
/// paragraphs per section. A non-empty `body` (e.g. `"<t>x</t>"`) is
/// placed inside each paragraph instead of self-closing it.
pub fn sectioned_xml(sections: usize, per: usize, body: &str) -> String {
    let mut xml = String::from("<root>");
    for s in 0..sections {
        xml.push_str(&format!("<s{s}>"));
        for i in 0..per {
            if body.is_empty() {
                xml.push_str(&format!("<p id=\"s{s}p{i}\"/>"));
            } else {
                xml.push_str(&format!("<p id=\"s{s}p{i}\">{body}</p>"));
            }
        }
        xml.push_str(&format!("</s{s}>"));
    }
    xml.push_str("</root>");
    xml
}
