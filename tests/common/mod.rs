//! Shared helpers for the integration test suite.
#![allow(dead_code)] // each test binary uses a subset

use mbxq::{Node, PageConfig};
use proptest::prelude::*;

/// Page configurations exercised by cross-schema tests: tiny pages force
/// many page boundaries; big pages exercise the single-page paths.
pub fn page_configs() -> Vec<PageConfig> {
    vec![
        PageConfig::new(4, 50).unwrap(),
        PageConfig::new(8, 88).unwrap(),
        PageConfig::new(16, 75).unwrap(),
        PageConfig::new(64, 80).unwrap(),
        PageConfig::new(1024, 100).unwrap(),
    ]
}

/// Strategy for element/attribute names (small alphabet so random trees
/// share names and name tests actually select subsets).
pub fn name_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "item", "name", "x"]).prop_map(str::to_string)
}

/// Strategy for text content (includes XML-hostile characters).
pub fn text_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["t", "x < y", "a & b", "\"quoted\"", "uni—code", "  "])
        .prop_map(str::to_string)
}

/// Strategy producing random well-formed element trees of bounded size.
pub fn tree_strategy(max_depth: u32, max_children: usize) -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        name_strategy().prop_map(Node::element),
        text_strategy().prop_map(Node::text),
    ];
    leaf.prop_recursive(max_depth, 64, max_children as u32, move |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), text_strategy()), 0..3),
            prop::collection::vec(inner, 0..max_children),
        )
            .prop_map(|(name, attrs, children)| {
                // Deduplicate attribute names (XML forbids repeats) and
                // merge adjacent text nodes (the parser coalesces them, so
                // round-trip comparisons need canonical trees).
                let mut seen = std::collections::HashSet::new();
                let attributes = attrs
                    .into_iter()
                    .filter(|(n, _)| seen.insert(n.clone()))
                    .map(|(n, v)| (mbxq::QName::local(n), v))
                    .collect();
                let mut merged: Vec<Node> = Vec::new();
                for c in children {
                    match (merged.last_mut(), c) {
                        (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                        (_, c) => merged.push(c),
                    }
                }
                Node::Element {
                    name: mbxq::QName::local(name),
                    attributes,
                    children: merged,
                }
            })
    })
    // The root must be an element.
    .prop_filter("root is an element", |n| matches!(n, Node::Element { .. }))
}

/// Serializes a node to an XML string.
pub fn to_xml_string(node: &Node) -> String {
    let mut s = String::new();
    mbxq_xml::serialize_node(node, &mut s);
    s
}
