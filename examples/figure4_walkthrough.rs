//! A guided replay of the paper's Figure 4: the example document
//! `<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>` is shredded
//! into logical pages of 8 tuples, then `<k><l/><m/></k>` is appended to
//! `g`, and the physical table + the pre/size/level view are dumped at
//! each step so the page splice and the automatic pre shifts are visible.
//!
//! Run with: `cargo run --example figure4_walkthrough`

use mbxq::{InsertPosition, PageConfig, PagedDoc, TreeView, XmlDocument};

const PAPER_DOC: &str = "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>";

fn main() {
    // Page size 8 with fill target 7 reproduces Figure 4's initial
    // layout: page 0 = a..g + one unused slot, page 1 = h,i,j + five.
    let cfg = PageConfig::new(8, 88).unwrap();
    let mut doc = PagedDoc::parse_str(PAPER_DOC, cfg).unwrap();

    println!("=== after shredding (Figure 4, left) ===\n");
    println!("{}", doc.dump_physical());

    // The paper's update: <xupdate:append select='/a/f/g'> <k><l/><m/></k>.
    let g = doc.pre_to_node(6).expect("g sits at pre 6");
    let subtree = XmlDocument::parse_fragment("<k><l/><m/></k>").unwrap();
    let report = doc
        .insert(InsertPosition::LastChildOf(g), &subtree)
        .unwrap();
    println!(
        "=== insert <k><l/><m/></k> under g: case {:?}, {} page(s) spliced ===\n",
        report.case, report.pages_added
    );

    println!("--- physical layout (page 2 is new, spliced at logical 1) ---\n");
    println!("{}", doc.dump_physical());

    println!("--- pre/size/level view (pre of h..j shifted automatically) ---\n");
    println!("{}", doc.dump_view());

    // The headline numbers of Figure 3/4: ancestor sizes grew by the
    // insert volume, nothing else was rewritten.
    let a_pre = doc.node_to_pre(doc.pre_to_node(0).unwrap()).unwrap();
    println!(
        "size(a) = {} (was 9, +3), size(f) = {}, size(g) = {}",
        TreeView::size(&doc, a_pre),
        TreeView::size(&doc, doc.node_to_pre(mbxq::NodeId(5)).unwrap()),
        TreeView::size(&doc, doc.node_to_pre(g).unwrap()),
    );
    println!(
        "k sits at pre {} (page 0's free slot), l at pre {} (the spliced page)",
        doc.node_to_pre(mbxq::NodeId(10)).unwrap(),
        doc.node_to_pre(mbxq::NodeId(11)).unwrap(),
    );
}
