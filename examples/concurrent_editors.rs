//! Concurrency demonstration (§3.2): several writer threads extend
//! disjoint subtrees of one document while reader threads continuously
//! query it — the scenario the commutative delta-increments make
//! possible without serializing every writer on the document root.
//!
//! The writers commit through the short-publish pipeline: validation and
//! COW page privatization happen *outside* the global lock, the WAL
//! appends ride group-commit batches (watch the batching counters in the
//! output), and the lock itself covers only the stamp-checked pointer
//! swap. The readers meanwhile take their snapshots from a lock-free
//! cell — they never block on the writers, no matter how hard the
//! writers hammer the store.
//!
//! Run with: `cargo run --release --example concurrent_editors`

use mbxq::{
    AncestorLockMode, InsertPosition, PageConfig, PagedDoc, Store, StoreConfig, TreeView, Wal,
    XPath,
};
use mbxq_xml::Document;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const WRITERS: usize = 4;
const TXNS_EACH: usize = 50;

fn main() {
    // One section per writer, each padded past a logical page so the
    // writers' target pages are disjoint.
    let mut xml = String::from("<wiki>");
    for w in 0..WRITERS {
        xml.push_str(&format!("<section{w}>"));
        for i in 0..300 {
            xml.push_str(&format!("<para id=\"s{w}p{i}\"/>"));
        }
        xml.push_str(&format!("</section{w}>"));
    }
    xml.push_str("</wiki>");

    let doc = PagedDoc::parse_str(&xml, PageConfig::new(256, 80).unwrap()).unwrap();
    let baseline = doc.used_count();
    let store = Store::open(
        doc,
        Wal::in_memory(),
        StoreConfig {
            ancestor_mode: AncestorLockMode::Delta,
            lock_timeout: Duration::from_secs(10),
            validate_on_commit: false,
            ..StoreConfig::default()
        },
    );

    let stop_readers = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Two readers hammer snapshots the whole time.
        for _ in 0..2 {
            let store = &store;
            let stop = &stop_readers;
            let reads = &reads;
            s.spawn(move || {
                let path = XPath::parse("//para").unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let snap = store.snapshot();
                    let n = path.select_from_root(snap.as_ref()).unwrap().len();
                    assert!(n >= WRITERS * 300);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Writers commit little paragraph inserts.
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let store = &store;
            handles.push(s.spawn(move || {
                let path = XPath::parse(&format!("/wiki/section{w}")).unwrap();
                for i in 0..TXNS_EACH {
                    let mut t = store.begin();
                    let section = t.select(&path).unwrap()[0];
                    let frag =
                        Document::parse_fragment(&format!("<para id=\"s{w}new{i}\">edit</para>"))
                            .unwrap();
                    t.insert(InsertPosition::LastChildOf(section), &frag)
                        .unwrap();
                    t.commit().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop_readers.store(true, Ordering::Relaxed);
    });

    let final_doc = store.snapshot();
    let expected = baseline + (WRITERS * TXNS_EACH * 2) as u64; // para + text each
    println!(
        "committed {} writer transactions across {WRITERS} threads",
        WRITERS * TXNS_EACH
    );
    println!(
        "document grew {} -> {} tuples (expected {expected})",
        baseline,
        final_doc.used_count()
    );
    assert_eq!(final_doc.used_count(), expected);
    // The root's size absorbed every delta exactly once, in whatever
    // order the commits interleaved — commutativity in action.
    assert_eq!(TreeView::size(final_doc.as_ref(), 0), expected - 1);
    println!(
        "root size = {} (all ancestor deltas applied, commutatively)",
        TreeView::size(final_doc.as_ref(), 0)
    );
    println!(
        "readers completed {} consistent snapshot queries meanwhile",
        reads.load(Ordering::Relaxed)
    );
    let stats = store.group_commit_stats();
    println!(
        "WAL: {} commit records flushed in {} group-commit batches \
         (largest batch: {})",
        stats.records, stats.batches, stats.max_batch
    );
    println!(
        "store published {} versions (commits publish under the short lock only)",
        store.version_stamp()
    );
    mbxq_storage::invariants::check_paged(final_doc.as_ref()).unwrap();
    println!("invariant check: ok");
}
