//! Point lookups by `@id` against a **live** transactional store:
//! readers resolve `//item[@id = "itemN"]` on lock-free snapshots while
//! writer threads keep committing attribute and text updates, and the
//! per-evaluation [`EvalStats`] counters show which arm — content-index
//! probe or scalar scan — each lookup actually took.
//!
//! Run with `cargo run --release --example value_lookup`.

use mbxq::{PageConfig, PagedDoc, Store, StoreConfig, TreeView, Wal};
use mbxq_xmark::{generate, XMarkConfig};
use mbxq_xpath::{EvalOptions, EvalStats, ValueChoice, XPath};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn main() {
    let xml = generate(&XMarkConfig::scaled(0.01, 7));
    let doc = PagedDoc::parse_str(&xml, PageConfig::new(1024, 80).unwrap()).expect("shred");
    println!(
        "XMark document: {} bytes, {} nodes",
        xml.len(),
        doc.used_count()
    );
    let store = Store::open(doc, Wal::in_memory(), StoreConfig::default());

    let total_items = match store.query("count(//item)").unwrap() {
        mbxq_xpath::Value::Number(n) => n as u64,
        other => panic!("unexpected {other:?}"),
    };
    println!("items: {total_items}\n");

    let stop = AtomicBool::new(false);
    let commits = AtomicU64::new(0);
    let lookups = AtomicU64::new(0);
    let probe_steps = AtomicU64::new(0);
    let scan_steps = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Two writers: one retags item ids — churn on the very
        // attribute key the readers probe, toggling `itemN` ↔
        // `itemN-alt` so lookups race genuine key movement — and one
        // sets unrelated attributes (posting-list churn next door).
        for writer in 0..2u64 {
            let store = &store;
            let stop = &stop;
            let commits = &commits;
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let item = (writer * 31 + round * 7) % total_items;
                    let mut txn = store.begin();
                    let primary = format!("item{item}");
                    let alt = format!("item{item}-alt");
                    // The id may currently be either spelling.
                    let (found, next) = {
                        let mut probe = |id: &str| {
                            txn.select(&XPath::parse(&format!("//item[@id = \"{id}\"]")).unwrap())
                        };
                        match probe(&primary) {
                            Ok(t) if !t.is_empty() => (Some(t[0]), alt),
                            Ok(_) => match probe(&alt) {
                                Ok(t) if !t.is_empty() => (Some(t[0]), primary),
                                _ => (None, primary),
                            },
                            Err(_) => (None, primary),
                        }
                    };
                    let Some(target) = found else {
                        txn.abort();
                        round += 1;
                        continue;
                    };
                    let ok = if writer == 0 {
                        txn.set_attribute(target, &mbxq::QName::local("id"), &next)
                            .is_ok()
                    } else {
                        txn.set_attribute(target, &mbxq::QName::local("hot"), "yes")
                            .is_ok()
                    };
                    if ok && txn.commit().is_ok() {
                        commits.fetch_add(1, Ordering::Relaxed);
                    }
                    round += 1;
                }
            });
        }

        // Readers: point lookups on snapshots, counting the strategy
        // decisions the cost model takes.
        for reader in 0..2u64 {
            let store = &store;
            let stop = &stop;
            let lookups = &lookups;
            let probe_steps = &probe_steps;
            let scan_steps = &scan_steps;
            scope.spawn(move || {
                let mut i = reader;
                while !stop.load(Ordering::Relaxed) {
                    let stats = EvalStats::default();
                    let opts = EvalOptions::new().stats(&stats);
                    let path = format!("//item[@id = \"item{}\"]", i % total_items);
                    let found = store.query_nodes_opts(&path, &opts).unwrap();
                    assert!(found.len() <= 1, "ids are unique");
                    lookups.fetch_add(1, Ordering::Relaxed);
                    probe_steps.fetch_add(stats.value_probe_steps.get(), Ordering::Relaxed);
                    scan_steps.fetch_add(stats.value_scan_steps.get(), Ordering::Relaxed);
                    i += 2;
                }
            });
        }

        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        let dt = t0.elapsed();
        println!(
            "after {dt:?} of concurrent load:\n  commits:              {}\n  \
             point lookups:        {}\n  probe-vs-scan chosen: {} probe / {} scan",
            commits.load(Ordering::Relaxed),
            lookups.load(Ordering::Relaxed),
            probe_steps.load(Ordering::Relaxed),
            scan_steps.load(Ordering::Relaxed),
        );
    });

    // The ablation view of one lookup, on the final committed state
    // (the id writer may have left item3 under either spelling).
    let target_id = if store
        .query_nodes("//item[@id = \"item3\"]")
        .unwrap()
        .is_empty()
    {
        "item3-alt"
    } else {
        "item3"
    };
    println!("\none lookup (@id = {target_id:?}), all three arms:");
    for value in [
        ValueChoice::ForceScan,
        ValueChoice::ForceProbe,
        ValueChoice::Auto,
    ] {
        let stats = EvalStats::default();
        let opts = EvalOptions::new().value(value).stats(&stats);
        let t0 = Instant::now();
        let rows = store
            .query_nodes_opts(&format!("//item[@id = \"{target_id}\"]"), &opts)
            .unwrap()
            .len();
        println!(
            "  {value:?}: {rows} row(s) in {:?} ({} probe / {} scan steps)",
            t0.elapsed(),
            stats.value_probe_steps.get(),
            stats.value_scan_steps.get()
        );
    }
    let cache = store.plan_cache_stats();
    println!(
        "\nplan cache: {} hits, {} misses, {} evictions, {} entries",
        cache.hits, cache.misses, cache.evictions, cache.entries
    );
}
