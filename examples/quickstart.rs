//! Quickstart: load an XML document into the updateable pre/post-plane
//! store, query it with XPath, change it with XUpdate, and serialize it
//! back.
//!
//! Run with: `cargo run --example quickstart`

use mbxq::{Database, StorageMode};

fn main() {
    let mut db = Database::new();

    // Shred a document into the paper's updateable schema: logical pages
    // with ~20 % unused tuples, pageOffset indirection, node→pos map.
    db.load(
        "library",
        r#"<library>
             <book year="2002"><title>Accelerating XPath Location Steps</title></book>
             <book year="2003"><title>Staircase Join</title></book>
             <book year="2005"><title>Updating the Pre/Post Plane</title></book>
           </library>"#,
        StorageMode::default_updatable(),
    )
    .expect("well-formed XML shreds");

    // XPath queries run via staircase join over the pre/size/level view.
    let titles = db
        .query("library", "/library/book[@year >= 2003]/title")
        .expect("query evaluates");
    println!("recent books:");
    for t in &titles.items {
        println!("  {t}");
    }

    // Structural updates are XUpdate scripts, executed as one ACID
    // transaction. No pre numbers are rewritten — the new tuples go into
    // page free space or freshly spliced pages.
    db.update(
        "library",
        r#"<xupdate:modifications version="1.0">
             <xupdate:append select="/library">
               <xupdate:element name="book">
                 <xupdate:attribute name="year">2006</xupdate:attribute>
                 <title>MonetDB/XQuery: A Fast XQuery Processor</title>
               </xupdate:element>
             </xupdate:append>
             <xupdate:remove select="/library/book[@year=2002]"/>
           </xupdate:modifications>"#,
    )
    .expect("update commits");

    println!(
        "\nafter update, count = {}",
        db.query("library", "count(/library/book)").unwrap().items[0]
    );
    println!(
        "\nserialized document:\n{}",
        db.serialize("library").unwrap()
    );

    // Storage statistics show the logical-page occupancy.
    let stats = db.stats("library").unwrap();
    println!(
        "\npages: {}, used tuples: {}, unused tuples: {}",
        stats.pages, stats.used, stats.unused
    );
}
