//! Durability demonstration (§3.2): commit through a file-backed WAL,
//! crash at an arbitrary byte position mid-commit, and recover.
//!
//! "Writing the WAL is the crucial stage in transaction commit, it
//! consists of a single I/O. … In case of a crash during commit … all
//! this information is present in the WAL, such that during recovery an
//! up-to-date version of the database can be restored."
//!
//! Run with: `cargo run --example crash_recovery`

use mbxq::{InsertPosition, PageConfig, PagedDoc, Store, StoreConfig, TreeView, Wal, XPath};
use mbxq_txn::recover::recover;
use mbxq_xml::Document;

const CHECKPOINT: &str =
    r#"<ledger><accounts><account id="a1"><balance>100</balance></account></accounts></ledger>"#;

fn main() {
    let dir = std::env::temp_dir().join(format!("mbxq-crash-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal_path = dir.join("ledger.wal");
    let _ = std::fs::remove_file(&wal_path);

    let cfg = PageConfig::new(64, 80).unwrap();

    // Phase 1: run transactions against a file-backed WAL; the third one
    // crashes mid-append (injected).
    {
        let doc = PagedDoc::parse_str(CHECKPOINT, cfg).unwrap();
        let wal = Wal::file(&wal_path).expect("open wal file");
        let store = Store::open(doc, wal, StoreConfig::default());

        for i in 0..2 {
            let mut t = store.begin();
            let accounts = t
                .select(&XPath::parse("/ledger/accounts").unwrap())
                .unwrap();
            let frag = Document::parse_fragment(&format!(
                "<account id=\"gen{i}\"><balance>{}</balance></account>",
                (i + 2) * 50
            ))
            .unwrap();
            t.insert(InsertPosition::LastChildOf(accounts[0]), &frag)
                .unwrap();
            t.commit().expect("commit lands in the WAL");
            println!("txn {} committed", i + 1);
        }

        // Arm the crash: the next commit record is torn after 25 bytes.
        let (doc, mut wal) = store.into_shard().into_parts();
        wal.crash_after_bytes(wal.len_bytes() + 25);
        let store = Store::open(doc, wal, StoreConfig::default());
        let mut t = store.begin();
        let accounts = t
            .select(&XPath::parse("/ledger/accounts").unwrap())
            .unwrap();
        let frag = Document::parse_fragment("<account id=\"doomed\"/>").unwrap();
        t.insert(InsertPosition::LastChildOf(accounts[0]), &frag)
            .unwrap();
        match t.commit() {
            Err(e) => println!("txn 3 crashed during the commit I/O: {e}"),
            Ok(_) => unreachable!("crash was injected"),
        }
        // Process "dies" here; the torn record sits in the file.
    }

    // Phase 2: recovery from checkpoint + WAL file.
    let wal_bytes = std::fs::read(&wal_path).expect("wal survives the crash");
    println!("\nrecovering from {} WAL bytes …", wal_bytes.len());
    let recovered = recover(CHECKPOINT, cfg, &wal_bytes).expect("recovery succeeds");
    mbxq_storage::invariants::check_paged(&recovered).expect("recovered store is consistent");

    let accounts = XPath::parse("//account/@id")
        .unwrap()
        .eval(&recovered, &[0])
        .unwrap();
    println!(
        "recovered document: {}",
        mbxq_storage::serialize::to_xml(&recovered).unwrap()
    );
    match accounts {
        mbxq::Value::Attrs(ids) => {
            println!(
                "accounts after recovery: {} (committed prefix only)",
                ids.len()
            );
            assert_eq!(ids.len(), 3, "a1 + two committed, no 'doomed'");
        }
        other => panic!("unexpected value {other:?}"),
    }
    assert_eq!(recovered.used_count(), 1 + 1 + 3 * 3);
    assert!(!mbxq_storage::serialize::to_xml(&recovered)
        .unwrap()
        .contains("doomed"));
    println!("the torn transaction left no trace — atomicity held.");

    // Phase 3: checkpoint. The WAL would otherwise grow (and recovery
    // replay) without bound; `Store::checkpoint` serializes the current
    // version into the log and truncates everything before it, and
    // recovery resumes from the checkpoint instead of genesis.
    {
        let wal = Wal::file(&wal_path).expect("reopen wal");
        let store = Store::open(recovered, wal, StoreConfig::default());
        let info = store.checkpoint().expect("checkpoint");
        println!(
            "\ncheckpoint: {} nodes captured, WAL {} → {} bytes",
            info.nodes, info.wal_bytes_before, info.wal_bytes_after
        );
        // Keep committing after the checkpoint; delete an account that
        // only the checkpoint knows about (node ids are preserved).
        let mut t = store.begin();
        let gen0 = t
            .select(&XPath::parse("//account[@id='gen0']").unwrap())
            .unwrap();
        t.delete(gen0[0]).unwrap();
        t.commit().expect("post-checkpoint commit");
        println!(
            "occupancy after delete: {:.2} (vacuum below {:.2} in production)",
            store.occupancy(),
            0.5
        );
    }
    let wal_bytes = std::fs::read(&wal_path).expect("wal survives");
    let recovered = recover(CHECKPOINT, cfg, &wal_bytes).expect("recovery from checkpoint");
    mbxq_storage::invariants::check_paged(&recovered).expect("consistent after checkpoint");
    let xml = mbxq_storage::serialize::to_xml(&recovered).unwrap();
    assert!(!xml.contains("gen0") && xml.contains("gen1"));
    println!("recovery resumed from the checkpoint: {xml}");

    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_dir(&dir);
}
