//! The paper's motivating workload: an XMark auction site under
//! concurrent-style query + update load.
//!
//! Generates an XMark-shaped document, runs a few of the benchmark
//! queries, then plays an auction day: new bids arrive (structural
//! inserts of `<bidder>` subtrees), an item is withdrawn (structural
//! delete), an auction closes (delete from `open_auctions` + insert into
//! `closed_auctions`) — all as ACID XUpdate transactions on the paged
//! schema, while a pinned snapshot proves readers are never disturbed.
//!
//! Run with: `cargo run --release --example auction_site`

use mbxq::{Database, StorageMode, TreeView};
use mbxq_xmark::{generate, run_query, XMarkConfig};

fn main() {
    let xml = generate(&XMarkConfig::scaled(0.002, 42));
    println!("generated XMark document: {:.1} KB", xml.len() as f64 / 1e3);

    let mut db = Database::new();
    db.load("auctions", &xml, StorageMode::default_updatable())
        .expect("XMark document shreds");

    // A few benchmark queries through the engine API.
    db.with_view("auctions", |view| {
        for (q, label) in [
            (1, "Q1  name of person0"),
            (6, "Q6  items per region"),
            (8, "Q8  purchases per person"),
            (14, "Q14 items mentioning 'gold'"),
        ] {
            let r = run_query_dyn(view, q);
            println!("{label}: {} rows", r);
        }
    })
    .unwrap();

    // Pin a snapshot: whatever the updates below do, this reader's view
    // of the document stays frozen (multi-version isolation).
    let store = db.store("auctions").unwrap();
    let snapshot = store.snapshot();
    let bids_before = count(&db, "//bidder");

    // --- a bid arrives on open_auction0 ---
    db.update(
        "auctions",
        r#"<xupdate:append select="//open_auction[@id='open_auction0']" child="1">
             <xupdate:element name="bidder">
               <date>06/13/2005</date>
               <time>11:30:00</time>
               <personref><xupdate:attribute name="person">person0</xupdate:attribute></personref>
               <increase>13.50</increase>
             </xupdate:element>
           </xupdate:append>"#,
    )
    .expect("bid commits");
    let bids_after_bid = count(&db, "//bidder");
    println!("\nbid placed: bidders {bids_before} -> {bids_after_bid}");

    // --- an item is withdrawn from africa ---
    db.update(
        "auctions",
        r#"<xupdate:remove select="/site/regions/africa/item[1]"/>"#,
    )
    .expect("withdrawal commits");

    // --- open_auction1 closes: copy its essence to closed_auctions ---
    db.update(
        "auctions",
        r#"<xupdate:modifications version="1.0">
             <xupdate:append select="/site/closed_auctions">
               <xupdate:element name="closed_auction">
                 <seller><xupdate:attribute name="person">person3</xupdate:attribute></seller>
                 <buyer><xupdate:attribute name="person">person0</xupdate:attribute></buyer>
                 <itemref><xupdate:attribute name="item">item2</xupdate:attribute></itemref>
                 <price>55.00</price><date>06/13/2005</date>
                 <quantity>1</quantity><type>Regular</type>
               </xupdate:element>
             </xupdate:append>
             <xupdate:remove select="//open_auction[@id='open_auction1']"/>
           </xupdate:modifications>"#,
    )
    .expect("auction close commits");

    println!("\nafter the auction day:");
    println!(
        "  bidders: {} (auction close removed open_auction1's bidders)",
        count(&db, "//bidder")
    );
    println!("  open auctions: {}", count(&db, "//open_auction"));
    println!("  closed auctions: {}", count(&db, "//closed_auction"));

    // The pinned snapshot never moved.
    let frozen_bidders = mbxq::step(
        snapshot.as_ref(),
        &snapshot.root_pre().into_iter().collect::<Vec<_>>(),
        mbxq::Axis::Descendant,
        &mbxq::NodeTest::Name(mbxq::QName::local("bidder")),
    )
    .len();
    println!("  pinned snapshot still sees {frozen_bidders} bidders (== {bids_before})");
    assert_eq!(frozen_bidders.to_string(), bids_before);

    let stats = db.stats("auctions").unwrap();
    println!(
        "\nstorage: {} pages, {} used / {} unused tuples",
        stats.pages, stats.used, stats.unused
    );
}

fn count(db: &Database, path: &str) -> String {
    db.query("auctions", &format!("count({path})"))
        .unwrap()
        .items[0]
        .clone()
}

fn run_query_dyn(view: &dyn TreeView, q: usize) -> usize {
    // The XMark plans are generic; dispatch through a small shim.
    struct Shim<'a>(&'a dyn TreeView);
    impl TreeView for Shim<'_> {
        fn pre_end(&self) -> u64 {
            self.0.pre_end()
        }
        fn level(&self, pre: u64) -> Option<u16> {
            self.0.level(pre)
        }
        fn size(&self, pre: u64) -> u64 {
            self.0.size(pre)
        }
        fn kind(&self, pre: u64) -> Option<mbxq::Kind> {
            self.0.kind(pre)
        }
        fn name_id(&self, pre: u64) -> Option<mbxq_storage::QnId> {
            self.0.name_id(pre)
        }
        fn value_ref(&self, pre: u64) -> Option<mbxq_storage::ValueRef> {
            self.0.value_ref(pre)
        }
        fn node_id(&self, pre: u64) -> Option<mbxq::NodeId> {
            self.0.node_id(pre)
        }
        fn back_run(&self, pre: u64) -> u64 {
            self.0.back_run(pre)
        }
        fn attributes(&self, pre: u64) -> Vec<(mbxq_storage::QnId, mbxq_storage::PropId)> {
            self.0.attributes(pre)
        }
        fn pool(&self) -> &mbxq_storage::ValuePool {
            self.0.pool()
        }
        fn used_count(&self) -> u64 {
            self.0.used_count()
        }
    }
    run_query(&Shim(view), q).expect("query runs").rows
}
