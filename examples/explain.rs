//! Walks the plan pipeline on two XMark queries: parse → logical plan
//! (rewritten) → physical plan (strategy slots) → execution under all
//! three axis-strategy arms, with the cost model's decisions shown.
//!
//! Run with `cargo run --example explain`.

use mbxq::TreeView;
use mbxq_storage::ReadOnlyDoc;
use mbxq_xmark::{generate, XMarkConfig};
use mbxq_xpath::{AxisChoice, EvalOptions, EvalStats, XPath};
use std::time::Instant;

fn show(doc: &ReadOnlyDoc, source: &str) {
    println!("═══ {source}");
    let xp = XPath::parse(source).expect("parse");
    println!("─── logical plan (after rewriting)\n{}", xp.explain());
    println!("─── physical plan\n{}", xp.explain_physical());
    for axis in [
        AxisChoice::ForceStaircase,
        AxisChoice::ForceIndex,
        AxisChoice::Auto,
    ] {
        let stats = EvalStats::default();
        let opts = EvalOptions::new().axis(axis).stats(&stats);
        let t0 = Instant::now();
        let rows = xp.select_from_root_opts(doc, &opts).expect("eval").len();
        let dt = t0.elapsed();
        println!(
            "─── {axis:?}: {rows} rows in {dt:?} ({} index / {} staircase steps)",
            stats.index_steps.get(),
            stats.staircase_steps.get()
        );
    }
    println!();
}

fn main() {
    let xml = generate(&XMarkConfig::scaled(0.01, 7));
    let doc = ReadOnlyDoc::parse_str(&xml).expect("shred");
    println!(
        "XMark document: {} bytes, {} nodes\n",
        xml.len(),
        doc.used_count()
    );

    // Q1: a selective lookup — the fused `//`-free path stays staircase
    // on the short hops, the predicate pushes down.
    show(&doc, "/site/people/person[@id=\"person0\"]/name");

    // Q7-style selective descendant probe: the cost model sends the
    // whole-document descendant step to the element-name index.
    show(&doc, "//emailaddress");

    // Bonus: every rewrite family in one query — fusion blocked by the
    // positional pick, existence conversion, invariant hoisting.
    show(&doc, "//person[profile][1]/name[count(//privacy) >= 0]");
}
