//! Multi-document catalog tour: create/drop documents, partition one
//! large document across shards, fan a query over every shard, recover
//! the whole catalog from its per-shard WALs, and export a document
//! back out.
//!
//! Every document is its own [`Shard`] — its own WAL, group-commit
//! pipeline, lock table and MVCC snapshot chain — so writers and
//! maintenance on one document never stall another. A manifest file in
//! the catalog directory is the commit point for create/drop.
//!
//! Run with: `cargo run --example catalog`

use mbxq::{Catalog, CatalogConfig, XPath};
use mbxq_xml::Document;

fn main() {
    let dir = std::env::temp_dir().join(format!("mbxq-catalog-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- create: each document gets its own shard + WAL file --------
    let cat = Catalog::open(&dir, CatalogConfig::default()).expect("open catalog");
    cat.create_doc("inventory", "<inv><item sku=\"a\"/><item sku=\"b\"/></inv>")
        .unwrap();
    cat.create_doc("staff", "<staff><person name=\"ada\"/></staff>")
        .unwrap();

    // One big document, explicitly range-partitioned across 2 shards:
    // the root's children are split into contiguous runs named base#k.
    let big = "<log><e day=\"mon\"/><e day=\"tue\"/><e day=\"wed\"/><e day=\"thu\"/></log>";
    let parts = cat.create_partitioned("log", big, 2).unwrap();
    println!("documents: {:?}", cat.doc_names());
    println!("log partitions: {parts:?}");

    // ---- per-document writes commit through that document's WAL -----
    let inventory = cat.shard("inventory").unwrap();
    let mut t = inventory.begin();
    let items = t.select(&XPath::parse("//item").unwrap()).unwrap();
    let frag = Document::parse_fragment("<item sku=\"c\"/>").unwrap();
    t.insert(mbxq::InsertPosition::After(items[1]), &frag)
        .unwrap();
    t.commit().unwrap();

    // ---- query_all: shard-local plans fanned over the shared pool,
    // merged deterministically in (document, document-order) ----------
    for m in cat.query_all("//*[@day]").unwrap() {
        println!("{}: {} day-stamped events", m.doc, m.nodes.len());
    }
    println!(
        "inventory items now: {}",
        cat.query_nodes("inventory", "//item").unwrap().len()
    );

    // ---- drop is manifest-first and crash-safe ----------------------
    cat.drop_doc("staff").unwrap();

    // ---- recovery: reopening replays every shard's WAL --------------
    drop(inventory);
    drop(cat);
    let cat = Catalog::open(&dir, CatalogConfig::default()).expect("recover catalog");
    println!("recovered documents: {:?}", cat.doc_names());
    assert_eq!(cat.query_nodes("inventory", "//item").unwrap().len(), 3);
    assert!(!cat.contains("staff"));

    // ---- export detaches a document as (PagedDoc, Wal) parts --------
    let (doc, _wal) = cat.export("log#0").unwrap();
    println!(
        "exported log#0: {} tuples, catalog now holds {:?}",
        mbxq::TreeView::used_count(&doc),
        cat.doc_names()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
